"""Machine-checkable invariants and the protocol registry behind them.

The paper's guarantees are adversarial: they must hold under *every*
schedule, not just benign ones.  This module turns each guarantee into a
named, machine-checkable :class:`Invariant` and maps every runnable
protocol (the real algorithms *and* the deliberately broken baselines)
to the invariant set it claims:

* ``unique_winner`` / ``winner_exists`` / ``election_linearizable`` —
  leader election's test-and-set specification (Lemmas A.1-A.3);
* ``at_least_one_survivor`` / ``no_false_death`` — PoisonPill and
  Heterogeneous PoisonPill safety (Claim 3.1 and the commit-before-flip
  survival rule of Figures 1-2);
* ``names_unique`` / ``names_in_range`` / ``renaming_terminates`` —
  strong renaming (Lemma A.6);
* ``sifting_effective`` — the *ensemble* guarantee that a sifter
  actually eliminates contenders in expectation (Claim 3.2 /
  Lemmas 3.6-3.7).  Per-schedule this is only an expectation, so it is
  evaluated over the whole exploration budget, grouped by adversary;
  the naive sifter of the paper's introduction fails it spectacularly
  under the coin-aware adversary (every run keeps ~100% of
  participants), which is exactly how ``repro check`` flags it.

Invariants come in two scopes:

* ``run`` — must hold on every single execution; a violation pinpoints
  one schedule, which the shrinker then minimizes.
* ``ensemble`` — a statistical property of many executions; a violation
  names a *witness* run (the worst offender) plus a per-run witness
  predicate that the shrinker can preserve while minimizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..analysis.linearizability import (
    READ,
    WRITE,
    RegisterOp,
    check_register_linearizable,
)
from ..core.protocol import HetStatus, Outcome
from ..obs.events import Event, EventType
from ..sim import pidset
from ..sim.runtime import SimulationResult

#: Response time assigned to operations that never responded (crashed or
#: undecided); effectively "+infinity" for interval comparisons.
PENDING_TIME = 2**62


# ---------------------------------------------------------------------------
# Protocol registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """One checkable protocol: how to run it and what it claims.

    ``task`` selects the harness runner (``elect`` / ``sift`` /
    ``rename``); ``algorithm`` is that runner's algorithm/kind argument.
    ``known_bad`` marks deliberately broken baselines kept as negative
    controls: the checker is expected to *fail* them.
    """

    name: str
    task: str
    algorithm: str
    claim: str
    known_bad: bool = False


#: Every protocol ``repro check`` can target, including the negative
#: controls (``known_bad=True``) that the checker must be able to fail.
PROTOCOLS: dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        ProtocolSpec(
            "leader_election", "elect", "poison_pill",
            "Figures 4-6: O(log* k) leader election",
        ),
        ProtocolSpec(
            "leader_election_basic", "elect", "poison_pill_basic",
            "Section 3.1: PoisonPill-round leader election",
        ),
        ProtocolSpec(
            "tournament", "elect", "tournament",
            "[AGTV92] tournament-tree baseline",
        ),
        ProtocolSpec(
            "poison_pill", "sift", "poison_pill",
            "Figure 1: PoisonPill sifting phase",
        ),
        ProtocolSpec(
            "heterogeneous", "sift", "heterogeneous",
            "Figure 2: Heterogeneous PoisonPill phase",
        ),
        ProtocolSpec(
            "naive_sifter", "sift", "naive",
            "Introduction: the broken flip-and-tell strawman",
            known_bad=True,
        ),
        ProtocolSpec(
            "renaming", "rename", "paper",
            "Figure 3: strong renaming via test-and-set grid",
        ),
        ProtocolSpec(
            "linear_renaming", "rename", "linear",
            "[AAG+10]-style linear-scan renaming baseline",
        ),
    )
}

#: The protocols the CI smoke budget sweeps (the real algorithms).
CORE_PROTOCOLS = ("leader_election", "poison_pill", "heterogeneous", "renaming")

#: The election service (``repro serve``).  Deliberately *not* in
#: :data:`PROTOCOLS`: the ``--protocol`` choices of ``repro check`` must
#: all be runnable through :func:`run_protocol`, while service runs are
#: produced live by :class:`~repro.net.service.ElectionService` and
#: checked through :func:`evaluate_service_run`.
SERVICE_SPEC = ProtocolSpec(
    "service", "serve", "lease",
    "Figure 3 / Theorem 4.2 generalized: one independent, epoch-fenced "
    "leader election per key in the service namespace",
)


def run_protocol(
    spec: ProtocolSpec,
    n: int,
    k: int | None,
    adversary,
    seed: int,
    pattern: str = "first",
    sink=None,
    simulation=None,
):
    """Run one unchecked execution of ``spec`` and return its Run object.

    Checking is disabled (``check=False``) so specification violations
    surface as invariant verdicts rather than raised exceptions — the
    explorer wants to *record* a violation, not die on it.  When
    ``simulation`` is given (a pre-built, possibly checkpoint-forked
    :class:`~repro.sim.runtime.Simulation`), it is run instead of
    constructing a fresh one.
    """
    from ..harness.runners import (
        run_leader_election,
        run_renaming,
        run_sifting_phase,
    )

    common = dict(
        n=n, k=k, adversary=adversary, seed=seed, pattern=pattern,
        check=False, sink=sink, simulation=simulation,
    )
    if spec.task == "elect":
        return run_leader_election(algorithm=spec.algorithm, **common)
    if spec.task == "sift":
        return run_sifting_phase(kind=spec.algorithm, **common)
    if spec.task == "rename":
        return run_renaming(algorithm=spec.algorithm, **common)
    raise ValueError(f"unknown task {spec.task!r} for protocol {spec.name!r}")


# ---------------------------------------------------------------------------
# Per-run evaluation context
# ---------------------------------------------------------------------------


class CheckContext:
    """Everything a per-run invariant may inspect about one execution.

    Wraps the Run object the harness produced, its
    :class:`~repro.sim.runtime.SimulationResult`, and (when available)
    the full structured event stream — which is how coin-flip-dependent
    invariants such as ``no_false_death`` see the flips.
    """

    __slots__ = ("spec", "run", "result", "events", "_last_coins")

    def __init__(
        self,
        spec: ProtocolSpec,
        run: Any,
        events: Sequence[Event] | None = None,
    ) -> None:
        self.spec = spec
        self.run = run
        self.result: SimulationResult = run.result
        self.events = list(events) if events is not None else None
        self._last_coins: dict[int, int] | None = None

    @property
    def k(self) -> int:
        """Number of participants in the execution."""
        return self.run.k

    @property
    def crash_free(self) -> bool:
        """True iff no processor crashed during the execution."""
        return not self.result.crashed

    @property
    def survivors(self) -> int:
        """Participants that returned SURVIVE (sifting tasks)."""
        return sum(
            1 for decision in self.result.decisions.values()
            if decision.result is Outcome.SURVIVE
        )

    @property
    def survivor_fraction(self) -> float:
        """Surviving fraction of the participant set (sifting tasks)."""
        return self.survivors / self.k if self.k else 0.0

    @property
    def winners(self) -> list[int]:
        """Pids that returned WIN (election tasks)."""
        return [
            pid for pid, decision in self.result.decisions.items()
            if decision.result is Outcome.WIN
        ]

    def last_coin(self, pid: int) -> int | None:
        """The final ``*.coin`` flip of ``pid``, from the event stream.

        Returns ``None`` when the stream was not captured or the
        processor never flipped a sifter coin.
        """
        if self.events is None:
            return None
        if self._last_coins is None:
            coins: dict[int, int] = {}
            for event in self.events:
                if event.etype == EventType.COIN_FLIP and str(
                    event.fields.get("label", "")
                ).endswith(".coin"):
                    coins[event.pid] = event.fields["value"]
            self._last_coins = coins
        return self._last_coins.get(pid)


# ---------------------------------------------------------------------------
# Ensemble statistics
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TrialStats:
    """Compact, picklable digest of one explored run.

    This is what crosses process boundaries from explorer workers and
    what ensemble invariants aggregate over.
    """

    index: int
    adversary: str
    mode: str
    seed: int
    n: int
    k: int
    terminated: bool
    crashed: int
    survivors: int
    winner_count: int
    decided: int

    @property
    def survivor_fraction(self) -> float:
        """Surviving fraction of the participant set."""
        return self.survivors / self.k if self.k else 0.0


@dataclass(frozen=True, slots=True)
class EnsembleVerdict:
    """An ensemble invariant's violation: message plus witness run."""

    message: str
    witness_index: int


# ---------------------------------------------------------------------------
# Invariant definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Invariant:
    """One named, machine-checkable property of a protocol.

    ``check`` (scope ``run``) maps a :class:`CheckContext` to a violation
    message or ``None``.  ``check_ensemble`` (scope ``ensemble``) maps
    the full :class:`TrialStats` list to an :class:`EnsembleVerdict` or
    ``None``.  ``witness`` is the per-run predicate the shrinker
    preserves while minimizing a violating schedule; for run-scope
    invariants it defaults to "``check`` still reports a violation".
    """

    name: str
    claim: str
    scope: str  # "run" | "ensemble"
    tasks: tuple[str, ...]
    description: str
    check: Callable[[CheckContext], str | None] | None = None
    check_ensemble: Callable[[Sequence[TrialStats]], EnsembleVerdict | None] | None = None
    witness: Callable[[CheckContext], bool] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.scope not in ("run", "ensemble"):
            raise ValueError(f"unknown invariant scope {self.scope!r}")
        if self.scope == "run" and self.check is None:
            raise ValueError(f"run-scope invariant {self.name!r} needs check()")
        if self.scope == "ensemble" and self.check_ensemble is None:
            raise ValueError(
                f"ensemble invariant {self.name!r} needs check_ensemble()"
            )
        if self.witness is None:
            if self.scope == "run":
                object.__setattr__(
                    self, "witness", lambda ctx: self.check(ctx) is not None
                )
            else:
                raise ValueError(
                    f"ensemble invariant {self.name!r} needs a witness predicate"
                )


def _valid_outcomes(ctx: CheckContext, allowed: tuple[Outcome, ...]) -> str | None:
    strays = [
        (pid, decision.result)
        for pid, decision in ctx.result.decisions.items()
        if decision.result not in allowed
    ]
    if strays:
        names = ", ".join(f"p{pid}={value!r}" for pid, value in strays)
        return f"outcomes outside {[o.value for o in allowed]}: {names}"
    return None


def _check_valid_election_outcomes(ctx: CheckContext) -> str | None:
    return _valid_outcomes(ctx, (Outcome.WIN, Outcome.LOSE))


def _check_unique_winner(ctx: CheckContext) -> str | None:
    winners = ctx.winners
    if len(winners) > 1:
        return f"multiple winners: {sorted(winners)}"
    return None


def _check_winner_exists(ctx: CheckContext) -> str | None:
    if (
        ctx.crash_free
        and ctx.result.terminated
        and ctx.result.decisions
        and not ctx.winners
    ):
        return "every participant returned LOSE in a crash-free execution"
    return None


def _election_ops(ctx: CheckContext, pending_pid: int | None) -> list[RegisterOp]:
    """The register-history encoding of a leader election execution.

    The winner's operation is a WRITE of ``"won"`` over its invocation
    interval; every LOSE is a READ that must return ``"won"``.  The
    history is linearizable as an atomic register initialized to ``None``
    iff every LOSE can be ordered after the (possibly pending) winning
    operation without violating real-time precedence — exactly the
    test-and-set linearizability condition of Lemma A.3.
    """
    ops: list[RegisterOp] = []
    for pid, decision in ctx.result.decisions.items():
        if decision.result is Outcome.WIN:
            ops.append(RegisterOp(
                pid, WRITE, "won", decision.start_time, decision.decide_time
            ))
        elif decision.result is Outcome.LOSE:
            ops.append(RegisterOp(
                pid, READ, "won", decision.start_time, decision.decide_time
            ))
    if pending_pid is not None:
        ops.append(RegisterOp(
            pending_pid, WRITE, "won",
            ctx.result.start_times[pending_pid], PENDING_TIME,
        ))
    return ops


def _check_election_linearizable(ctx: CheckContext) -> str | None:
    losers = [
        pid for pid, decision in ctx.result.decisions.items()
        if decision.result is Outcome.LOSE
    ]
    if not losers:
        return None
    if ctx.winners:
        if check_register_linearizable(_election_ops(ctx, None)) is not None:
            return None
        winner = ctx.winners[0]
        return (
            f"not linearizable: some LOSE responded before winner "
            f"p{winner}'s invocation at t="
            f"{ctx.result.decisions[winner].start_time}"
        )
    # No winner returned: some pending operation (crashed after invoking,
    # or still undecided) must be linearizable as the winner.
    pending = [
        pid for pid in ctx.result.start_times
        if pid in ctx.result.crashed or pid in ctx.result.undecided
    ]
    for pid in pending:
        if check_register_linearizable(_election_ops(ctx, pid)) is not None:
            return None
    return (
        "not linearizable: processors lost but no pending operation can "
        "be ordered as the winner before the first LOSE"
    )


def _check_valid_sift_outcomes(ctx: CheckContext) -> str | None:
    return _valid_outcomes(ctx, (Outcome.SURVIVE, Outcome.DIE))


def _check_at_least_one_survivor(ctx: CheckContext) -> str | None:
    if (
        ctx.crash_free
        and ctx.result.terminated
        and ctx.result.decisions
        and ctx.survivors == 0
    ):
        return (
            f"all {len(ctx.result.decisions)} participants died in a "
            f"crash-free sifting phase"
        )
    return None


def _check_no_false_death(ctx: CheckContext) -> str | None:
    if ctx.crash_free and ctx.k == 1 and ctx.result.terminated:
        decision = next(iter(ctx.result.decisions.values()), None)
        if decision is not None and decision.result is Outcome.DIE:
            return "the sole participant died"
    for pid, decision in ctx.result.decisions.items():
        if decision.result is Outcome.DIE and ctx.last_coin(pid) == 1:
            return f"p{pid} flipped 1 (high priority) but returned DIE"
    return None


def _check_learned_closure(ctx: CheckContext) -> str | None:
    """Claim 3.3 bookkeeping: each announced ``L`` set contains its
    announcer and the announcer's own observed list.

    Both sets travel as :mod:`repro.sim.pidset` bitmask ints, so
    membership and containment are single bit-ops.  Skipped (returns
    ``None``) when the event stream was not captured or the sifter is
    not the heterogeneous variant (no ``*.learned`` puts).
    """
    if ctx.events is None:
        return None
    learned_by: dict[int, int] = {}
    own_members: dict[int, int] = {}
    for event in ctx.events:
        if event.etype != EventType.REG_PUT:
            continue
        var = str(event.fields.get("var", ""))
        value = event.fields.get("value")
        if var.endswith(".learned") and isinstance(value, int):
            learned_by[event.pid] = value
        elif (
            var.endswith(".Status")
            and isinstance(value, HetStatus)
            and event.fields.get("key") == event.pid
        ):
            own_members[event.pid] = value.members
    if not learned_by:
        return None
    for pid, learned in sorted(learned_by.items()):
        if not pidset.contains(learned, pid):
            return f"p{pid} announced an L set that omits itself"
        members = own_members.get(pid, pidset.EMPTY)
        if not pidset.is_subset(members, learned):
            missing = pidset.to_frozenset(members & ~learned)
            return (
                f"p{pid}'s L set omits {sorted(missing)} from its own "
                f"observed list — the closure bookkeeping of Figure 2 "
                f"lines 26-27 was violated"
            )
    return None


def _check_names_unique(ctx: CheckContext) -> str | None:
    names: dict[Any, list[int]] = {}
    for pid, decision in ctx.result.decisions.items():
        names.setdefault(decision.result, []).append(pid)
    duplicates = {
        name: sorted(pids) for name, pids in names.items() if len(pids) > 1
    }
    if duplicates:
        return f"duplicate names assigned: {duplicates}"
    return None


def _check_names_in_range(ctx: CheckContext) -> str | None:
    bad = {
        pid: decision.result
        for pid, decision in ctx.result.decisions.items()
        if not isinstance(decision.result, int)
        or not 0 <= decision.result < ctx.result.n
    }
    if bad:
        return f"names outside [0, {ctx.result.n}): {bad}"
    return None


def _check_terminates(ctx: CheckContext) -> str | None:
    if ctx.crash_free and not ctx.result.terminated:
        return (
            f"crash-free execution left participants "
            f"{sorted(ctx.result.undecided)} undecided"
        )
    return None


#: A run qualifies for the sifting-effectiveness ensemble when it is a
#: full, crash-free phase over a non-trivial participant set.
SIFTING_MIN_K = 8
#: Minimum qualifying runs per adversary group before the mean is judged.
SIFTING_MIN_GROUP = 4
#: Maximum tolerated mean survivor fraction per adversary group.  The
#: real sifters stay under ~0.45 at simulation scale under every
#: adversary; the naive sifter under the coin-aware adversary sits at
#: ~0.95 (see docs/checking.md for the calibration data).
SIFTING_MAX_MEAN_FRACTION = 0.8
#: The per-run witness predicate threshold for shrinking.
SIFTING_WITNESS_FRACTION = 0.8


def _sifting_qualifies(stats: TrialStats) -> bool:
    return (
        stats.terminated
        and stats.crashed == 0
        and stats.k >= SIFTING_MIN_K
        and stats.decided == stats.k
    )


def _check_sifting_effective(
    trials: Sequence[TrialStats],
) -> EnsembleVerdict | None:
    groups: dict[str, list[TrialStats]] = {}
    for stats in trials:
        if _sifting_qualifies(stats):
            groups.setdefault(stats.adversary, []).append(stats)
    for adversary, group in sorted(groups.items()):
        if len(group) < SIFTING_MIN_GROUP:
            continue
        mean = sum(stats.survivor_fraction for stats in group) / len(group)
        if mean >= SIFTING_MAX_MEAN_FRACTION:
            witness = max(group, key=lambda stats: stats.survivor_fraction)
            return EnsembleVerdict(
                message=(
                    f"mean survivor fraction {mean:.2f} >= "
                    f"{SIFTING_MAX_MEAN_FRACTION} over {len(group)} runs "
                    f"under adversary {adversary!r}: the sifter fails to "
                    f"eliminate contenders (worst run kept "
                    f"{witness.survivors}/{witness.k})"
                ),
                witness_index=witness.index,
            )
    return None


def _sifting_witness(ctx: CheckContext) -> bool:
    return (
        ctx.crash_free
        and ctx.result.terminated
        and ctx.k >= SIFTING_MIN_K
        and ctx.survivor_fraction >= SIFTING_WITNESS_FRACTION
    )


def _check_lease_unique_holder(ctx: CheckContext) -> str | None:
    """At most one grant per ``(key, epoch)`` — the service's Lemma A.2."""
    seen: dict[tuple[str, int], str] = {}
    for record in ctx.run.history:
        slot = (record.key, record.epoch)
        if slot in seen and seen[slot] != record.holder:
            return (
                f"two holders for {record.key!r} epoch {record.epoch}: "
                f"{seen[slot]!r} and {record.holder!r}"
            )
        seen.setdefault(slot, record.holder)
    return None


def _check_lease_epoch_monotonic(ctx: CheckContext) -> str | None:
    """Per key, grant epochs strictly increase in grant order."""
    last: dict[str, int] = {}
    for record in ctx.run.history:
        previous = last.get(record.key)
        if previous is not None and record.epoch <= previous:
            return (
                f"{record.key!r} granted epoch {record.epoch} after epoch "
                f"{previous}: fencing tokens must strictly increase"
            )
        last[record.key] = record.epoch
    return None


def _check_lease_no_overlap(ctx: CheckContext) -> str | None:
    """Per key, grant intervals never overlap: one leader at a time.

    A still-open grant (``ended_ns is None``) is fine only as the *last*
    grant of its key; any grant that starts before its predecessor ended
    means two sessions simultaneously believed they held the key.
    """
    by_key: dict[str, list[Any]] = {}
    for record in ctx.run.history:
        by_key.setdefault(record.key, []).append(record)
    for key, records in by_key.items():
        records.sort(key=lambda record: record.granted_ns)
        for previous, current in zip(records, records[1:]):
            if previous.ended_ns is None:
                return (
                    f"{key!r} epoch {current.epoch} granted while epoch "
                    f"{previous.epoch} (holder {previous.holder!r}) was "
                    f"still open"
                )
            if current.granted_ns < previous.ended_ns:
                return (
                    f"{key!r} epoch {current.epoch} granted at "
                    f"t={current.granted_ns} before epoch {previous.epoch} "
                    f"ended at t={previous.ended_ns}"
                )
    return None


def evaluate_service_run(run: Any) -> list[tuple[str, str]]:
    """Check every serve-task invariant against one service history.

    ``run`` is a :class:`~repro.net.service.ServiceRun` digest.  Returns
    ``(invariant name, violation message)`` pairs, empty when the
    namespace kept at most one fenced leader per ``(key, epoch)``.
    """
    return evaluate_run(SERVICE_SPEC, run, None, invariants_for("serve"))


#: Registry of every invariant, keyed by name.
INVARIANTS: dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        Invariant(
            "valid_election_outcomes", "Section 2 (problem statement)",
            "run", ("elect",),
            "Every decided participant returns WIN or LOSE.",
            check=_check_valid_election_outcomes,
        ),
        Invariant(
            "unique_winner", "Lemma A.2",
            "run", ("elect",),
            "At most one participant returns WIN.",
            check=_check_unique_winner,
        ),
        Invariant(
            "winner_exists", "Lemma A.1",
            "run", ("elect",),
            "A crash-free, fully-decided election elects somebody.",
            check=_check_winner_exists,
        ),
        Invariant(
            "election_linearizable", "Lemma A.3",
            "run", ("elect",),
            "No LOSE responds before the (possibly pending) winner's "
            "invocation — checked by linearizing the execution as an "
            "atomic register history.",
            check=_check_election_linearizable,
        ),
        Invariant(
            "election_terminates", "Lemma A.1 (termination)",
            "run", ("elect",),
            "Crash-free executions decide every participant.",
            check=_check_terminates,
        ),
        Invariant(
            "valid_sift_outcomes", "Figures 1-2 (return values)",
            "run", ("sift",),
            "Every decided participant returns SURVIVE or DIE.",
            check=_check_valid_sift_outcomes,
        ),
        Invariant(
            "at_least_one_survivor", "Claim 3.1",
            "run", ("sift",),
            "If every participant returns, at least one survives.",
            check=_check_at_least_one_survivor,
        ),
        Invariant(
            "no_false_death", "Figures 1-2 (survival rule)",
            "run", ("sift",),
            "A participant that flipped high priority never dies, and a "
            "sole participant always survives.",
            check=_check_no_false_death,
        ),
        Invariant(
            "learned_closure", "Claim 3.3 (closure bookkeeping)",
            "run", ("sift",),
            "Every announced L set (a pidset bitmask) contains its "
            "announcer and the announcer's own observed list; skipped "
            "for non-heterogeneous sifters and uncaptured event streams.",
            check=_check_learned_closure,
        ),
        Invariant(
            "sifting_effective", "Claim 3.2 / Lemmas 3.6-3.7",
            "ensemble", ("sift",),
            "Across the exploration budget, no adversary holds the mean "
            "survivor fraction at ~1: a sifter must actually sift.",
            check_ensemble=_check_sifting_effective,
            witness=_sifting_witness,
        ),
        Invariant(
            "names_unique", "Lemma A.6 (uniqueness)",
            "run", ("rename",),
            "No two participants decide the same name.",
            check=_check_names_unique,
        ),
        Invariant(
            "names_in_range", "Lemma A.6 (namespace)",
            "run", ("rename",),
            "Every decided name is an integer in [0, n).",
            check=_check_names_in_range,
        ),
        Invariant(
            "renaming_terminates", "Lemma A.6 (termination)",
            "run", ("rename",),
            "Crash-free executions decide every participant.",
            check=_check_terminates,
        ),
        Invariant(
            "lease_unique_holder", "Theorem 4.2 per name (service)",
            "run", ("serve",),
            "At most one holder is ever granted a given (key, epoch).",
            check=_check_lease_unique_holder,
        ),
        Invariant(
            "lease_epoch_monotonic", "epoch fencing (service)",
            "run", ("serve",),
            "Per key, grant epochs strictly increase: a stale fencing "
            "token can never win a later election.",
            check=_check_lease_epoch_monotonic,
        ),
        Invariant(
            "lease_no_overlap", "mutual exclusion (service)",
            "run", ("serve",),
            "Per key, grant intervals never overlap: successive leaders "
            "hand off, they do not coexist.",
            check=_check_lease_no_overlap,
        ),
    )
}


def invariants_for(
    task: str, names: Sequence[str] | None = None
) -> list[Invariant]:
    """The invariants applicable to ``task``, optionally filtered by name.

    Unknown names raise ``ValueError`` so CLI typos fail loudly rather
    than silently checking nothing.
    """
    if names is not None:
        unknown = sorted(set(names) - set(INVARIANTS))
        if unknown:
            raise ValueError(
                f"unknown invariants {unknown}; known: {sorted(INVARIANTS)}"
            )
    selected = [
        inv for inv in INVARIANTS.values()
        if task in inv.tasks and (names is None or inv.name in names)
    ]
    return selected


def evaluate_run(
    spec: ProtocolSpec,
    run: Any,
    events: Sequence[Event] | None,
    invariants: Sequence[Invariant],
) -> list[tuple[str, str]]:
    """Evaluate every run-scope invariant against one execution.

    Returns ``(invariant name, violation message)`` pairs; an empty list
    means the run satisfied all of them.
    """
    ctx = CheckContext(spec, run, events)
    violations: list[tuple[str, str]] = []
    for invariant in invariants:
        if invariant.scope != "run":
            continue
        message = invariant.check(ctx)
        if message is not None:
            violations.append((invariant.name, message))
    return violations


def stats_for(
    spec: ProtocolSpec,
    run: Any,
    index: int,
    adversary: str,
    mode: str,
    seed: int,
) -> TrialStats:
    """Build the compact :class:`TrialStats` digest of one execution."""
    ctx = CheckContext(spec, run)
    return TrialStats(
        index=index,
        adversary=adversary,
        mode=mode,
        seed=seed,
        n=run.n,
        k=run.k,
        terminated=ctx.result.terminated,
        crashed=len(ctx.result.crashed),
        survivors=ctx.survivors,
        winner_count=len(ctx.winners),
        decided=len(ctx.result.decisions),
    )
