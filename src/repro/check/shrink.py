"""Schedule minimization and replayable violation artifacts.

When the explorer finds an invariant violation it has a *schedule*: the
ordered ``sched.step`` / ``sched.crash`` / ``msg.deliver`` subsequence of
the run's event stream, which — together with the run's seed — fully
determines the execution (the determinism contract of
:mod:`repro.obs.replay`).  This module minimizes that schedule while the
violation persists and packages the result:

* :func:`shrink_schedule` — prefix truncation followed by ddmin-style
  chunk removal.  Candidate schedules are re-executed through
  :class:`SchedulePrefixAdversary`, which tolerates dropped entries
  (skipping any that no longer match an in-flight message) and completes
  the run deterministically past the prefix, so every candidate is a
  complete, evaluable execution.
* :func:`write_artifact` / :func:`replay_artifact` — a violation
  artifact is a single JSON file carrying the protocol configuration,
  the minimized schedule, the violation, and a SHA-256 digest of the
  minimized run's full event stream.  Replaying re-executes the schedule
  and verifies the digest, so "the artifact reproduces the violation"
  is a byte-level statement, not a vibe.
* :func:`write_repro_script` — a human-readable companion describing
  what was violated and the exact commands that reproduce it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..adversary.base import Adversary, fallback_action
from ..obs.events import Event, EventType, ListSink
from ..obs.jsonl import JsonlSink, TRACE_FORMAT_VERSION, event_line
from ..sim.runtime import Action, Crash, Deliver, Simulation, Step
from ..sim.snapshot import SimulationCheckpoint, capture, enable_recording
from .invariants import CheckContext, Invariant, ProtocolSpec, run_protocol

#: Bumped when the artifact schema changes incompatibly.
ARTIFACT_FORMAT_VERSION = 1

#: Default cap on candidate executions during one shrink.
DEFAULT_MAX_EVALS = 400

#: Cap on checkpoints retained per shrink/exploration store (each holds a
#: deep copy of the simulation state at one schedule prefix).
MAX_STORED_CHECKPOINTS = 256


class SchedulePrefixAdversary(Adversary):
    """Re-drive a run through a schedule, tolerantly, then fall back.

    Unlike the strict :class:`~repro.obs.replay.ScriptedAdversary`, this
    wrapper is built for *candidate* schedules produced by shrinking:
    entries that no longer resolve (a delivery whose message was never
    sent because an earlier entry was removed, a step of a crashed
    processor) are skipped rather than failing the replay, and once the
    schedule is exhausted the run is completed by the deterministic
    :func:`~repro.adversary.base.fallback_action`.  Every candidate
    therefore yields a complete execution that is a pure function of
    ``(seed, schedule)``.
    """

    name = "schedule_prefix"

    def __init__(self, schedule: Sequence[Mapping[str, Any]]) -> None:
        self._schedule = list(schedule)
        self._cursor = 0
        #: Entries that failed to resolve against the live run.
        self.skipped = 0

    def setup(self, sim: Simulation) -> None:
        """Reset cursor and skip count (adversary reuse contract)."""
        self._cursor = 0
        self.skipped = 0

    def _resolve(self, entry: Mapping[str, Any], sim: Simulation) -> Action | None:
        etype = entry["e"]
        pid = entry["p"]
        if etype == EventType.SCHED_STEP:
            if pid not in sim.crashed:
                return Step(pid)
            return None
        if etype == EventType.SCHED_CRASH:
            if pid not in sim.crashed and sim.crashes_remaining > 0:
                return Crash(pid)
            return None
        if etype == EventType.MSG_DELIVER:
            fields = entry["f"]
            for message in sim.in_flight.addressed_to(pid):
                if (
                    message.sender == fields["src"]
                    and message.call_id == fields["call"]
                    and message.kind.value == fields["kind"]
                ):
                    return Deliver(message)
            return None
        raise ValueError(f"unknown schedule entry type {etype!r}")

    def choose(self, sim: Simulation) -> Action | None:
        """Next resolvable schedule entry, else the deterministic fallback."""
        while self._cursor < len(self._schedule):
            entry = self._schedule[self._cursor]
            self._cursor += 1
            action = self._resolve(entry, sim)
            if action is not None:
                return action
            self.skipped += 1
        return fallback_action(sim)


def run_schedule(
    spec: ProtocolSpec,
    schedule: Sequence[Mapping[str, Any]],
    n: int,
    k: int | None,
    seed: int,
    pattern: str = "first",
) -> CheckContext:
    """Execute one candidate schedule and return its evaluation context."""
    sink = ListSink()
    run = run_protocol(
        spec, n, k, SchedulePrefixAdversary(schedule), seed,
        pattern=pattern, sink=sink,
    )
    return CheckContext(spec, run, sink.events)


class CheckpointingPrefixAdversary(SchedulePrefixAdversary):
    """A :class:`SchedulePrefixAdversary` that snapshots at entry boundaries.

    ``on_boundary(consumed, sim)`` fires from inside :meth:`choose` — an
    action boundary by construction — whenever the absolute number of
    consumed schedule entries (``offset`` + local cursor) first reaches a
    multiple of ``every``.  The simulation state at that moment is a pure
    function of ``(seed, consumed entries)``, which is what makes the
    captured checkpoints reusable across shrink candidates sharing an
    index prefix.
    """

    name = "schedule_prefix_checkpointing"

    def __init__(
        self,
        schedule: Sequence[Mapping[str, Any]],
        every: int,
        offset: int,
        on_boundary: Callable[[int, Simulation], None],
    ) -> None:
        super().__init__(schedule)
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self._every = every
        self._offset = offset
        self._on_boundary = on_boundary
        self._total = offset + len(self._schedule)
        # First boundary strictly past the fork point (the fork itself
        # already is a stored checkpoint) and past the empty prefix.
        self._next = (offset // every + 1) * every

    def choose(self, sim: Simulation) -> Action | None:
        """Capture at due boundaries, then delegate to the parent replay."""
        consumed = self._offset + self._cursor
        if self._next <= consumed < self._total:
            self._on_boundary(consumed, sim)
            while self._next <= consumed:
                self._next += self._every
        return super().choose(sim)


def _run_schedule_checkpointed(
    spec: ProtocolSpec,
    candidate: list[Mapping[str, Any]],
    key: tuple[int, ...],
    n: int,
    k: int | None,
    seed: int,
    pattern: str,
    every: int,
    store: dict[tuple[int, ...], tuple[SimulationCheckpoint, list[Event]]],
) -> tuple[CheckContext, int]:
    """Evaluate one candidate, forking from the longest stored prefix.

    Returns the evaluation context plus the number of actions actually
    executed (the uncheckpointed cost minus the skipped prefix).  New
    checkpoints observed along the way are added to ``store``, keyed by
    the tuple of original schedule indices consumed so far — the same
    keys the shrinker's verdict cache uses.
    """
    from ..harness.runners import build_task_simulation

    best: tuple[SimulationCheckpoint, list[Event]] | None = None
    best_c = 0
    for length in sorted({len(prefix) for prefix in store}, reverse=True):
        if 0 < length <= len(key):
            entry = store.get(key[:length])
            if entry is not None:
                best, best_c = entry, length
                break
    sink = ListSink()
    prefix_events: list[Event] = [] if best is None else list(best[1])

    def on_boundary(consumed: int, sim: Simulation) -> None:
        prefix = key[:consumed]
        if prefix not in store and len(store) < MAX_STORED_CHECKPOINTS:
            store[prefix] = (capture(sim), prefix_events + list(sink.events))

    adversary = CheckpointingPrefixAdversary(
        candidate[best_c:], every, best_c, on_boundary
    )
    if best is None:
        sim = build_task_simulation(
            spec.task, spec.algorithm, n, k=k, adversary=adversary,
            seed=seed, pattern=pattern, sink=sink,
        )
        enable_recording(sim)
        replayed_base = 0
    else:
        sim = best[0].fork(adversary, sink=sink)
        replayed_base = best[0].events_executed
    run = run_protocol(
        spec, n, k, adversary, seed, pattern=pattern, simulation=sim,
    )
    ticks = run.result.metrics.events_executed - replayed_base
    return CheckContext(spec, run, prefix_events + sink.events), ticks


def stream_digest(ctx: CheckContext) -> str:
    """SHA-256 over the canonical JSONL lines of a run's event stream."""
    digest = hashlib.sha256()
    for event in ctx.events or ():
        digest.update(event_line(event).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(slots=True)
class ShrinkResult:
    """Outcome of one schedule minimization."""

    schedule: list[Mapping[str, Any]]
    original_len: int
    shrunk_len: int
    evaluations: int
    #: Actions actually executed across all candidate evaluations.  With
    #: checkpointing, forked evaluations skip their shared prefix, so this
    #: is strictly smaller than the uncheckpointed cost of the same
    #: shrink — the measurable win of ``checkpoint_every``.
    ticks_replayed: int = 0

    @property
    def reduction(self) -> float:
        """Fraction of schedule entries removed."""
        if not self.original_len:
            return 0.0
        return 1.0 - self.shrunk_len / self.original_len


def shrink_schedule(
    spec: ProtocolSpec,
    schedule: Sequence[Mapping[str, Any]],
    predicate: Callable[[CheckContext], bool],
    n: int,
    k: int | None,
    seed: int,
    pattern: str = "first",
    max_evals: int = DEFAULT_MAX_EVALS,
    checkpoint_every: int | None = None,
) -> ShrinkResult:
    """Minimize ``schedule`` while ``predicate`` keeps holding.

    Two passes: a binary search for the shortest violating prefix (the
    big win — most violations are determined early and the tolerant
    replayer completes the suffix deterministically), then ddmin-style
    chunk removal inside the surviving prefix.  ``max_evals`` bounds the
    number of candidate executions, so shrinking cost is predictable.

    ``checkpoint_every`` enables mid-schedule checkpoint reuse: every
    that-many consumed entries the candidate's simulation state is
    snapshotted (:mod:`repro.sim.snapshot`), and later candidates sharing
    an index prefix fork from the snapshot instead of re-executing from
    tick 0.  Verdicts are identical either way (forks are byte-identical);
    only :attr:`ShrinkResult.ticks_replayed` shrinks.
    """
    schedule = list(schedule)
    evaluations = 0
    ticks_replayed = 0
    cache: dict[tuple[int, ...], bool] = {}
    store: dict[tuple[int, ...], tuple[SimulationCheckpoint, list[Event]]] = {}

    def holds(candidate: list[Mapping[str, Any]], key: tuple[int, ...]) -> bool:
        nonlocal evaluations, ticks_replayed
        if key in cache:
            return cache[key]
        if evaluations >= max_evals:
            return False
        evaluations += 1
        if checkpoint_every is None:
            ctx = run_schedule(spec, candidate, n, k, seed, pattern)
            ticks_replayed += ctx.result.metrics.events_executed
        else:
            ctx, ticks = _run_schedule_checkpointed(
                spec, candidate, key, n, k, seed, pattern,
                checkpoint_every, store,
            )
            ticks_replayed += ticks
        verdict = predicate(ctx)
        cache[key] = verdict
        return verdict

    indices = list(range(len(schedule)))

    def candidate_of(selected: list[int]) -> list[Mapping[str, Any]]:
        return [schedule[i] for i in selected]

    if not holds(candidate_of(indices), tuple(indices)):
        # The violation does not survive tolerant re-execution (it
        # depended on adversary state the schedule cannot express).
        # Report it unshrunk rather than failing the whole check.
        return ShrinkResult(
            schedule=schedule,
            original_len=len(schedule),
            shrunk_len=len(schedule),
            evaluations=evaluations,
            ticks_replayed=ticks_replayed,
        )

    # Pass 1: shortest violating prefix, by binary search.
    low, high = 0, len(indices)
    while low < high:
        mid = (low + high) // 2
        prefix = indices[:mid]
        if holds(candidate_of(prefix), tuple(prefix)):
            high = mid
        else:
            low = mid + 1
    indices = indices[:high]

    # Pass 2: ddmin-style chunk removal within the prefix.
    chunk = max(1, len(indices) // 2)
    while chunk >= 1:
        removed_any = False
        start = 0
        while start < len(indices):
            selected = indices[:start] + indices[start + chunk:]
            if holds(candidate_of(selected), tuple(selected)):
                indices = selected
                removed_any = True
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2) if not removed_any else max(1, chunk)
        if removed_any and chunk > len(indices):
            chunk = max(1, len(indices) // 2)
        if evaluations >= max_evals:
            break

    return ShrinkResult(
        schedule=candidate_of(indices),
        original_len=len(schedule),
        shrunk_len=len(indices),
        evaluations=evaluations,
        ticks_replayed=ticks_replayed,
    )


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


def artifact_obj(
    spec: ProtocolSpec,
    record,
    result: ShrinkResult,
    ctx: CheckContext,
    violation_message: str,
    n: int,
    k: int | None,
    pattern: str,
) -> dict[str, Any]:
    """The JSON object form of a violation artifact."""
    trial = record.trial
    return {
        "artifact_version": ARTIFACT_FORMAT_VERSION,
        "trace_version": TRACE_FORMAT_VERSION,
        "protocol": spec.name,
        "task": spec.task,
        "algorithm": spec.algorithm,
        "n": n,
        "k": k,
        "pattern": pattern,
        "seed": trial.seed,
        "invariant": record.invariant,
        "claim": record.claim,
        "scope": record.scope,
        "violation": violation_message,
        "trial": {
            "index": trial.index,
            "mode": trial.mode,
            "adversary": trial.adversary,
            "crash_rate": trial.crash_rate,
            "max_crashes": trial.max_crashes,
            "choices": list(trial.choices),
        },
        "original_schedule_len": result.original_len,
        "shrunk_schedule_len": result.shrunk_len,
        "stream_sha256": stream_digest(ctx),
        "schedule": list(result.schedule),
    }


def write_artifact(path: str, obj: Mapping[str, Any]) -> str:
    """Serialize a violation artifact canonically (sorted keys) to ``path``."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(obj, fp, sort_keys=True, indent=1)
        fp.write("\n")
    return path


def load_artifact(path: str) -> dict[str, Any]:
    """Load and minimally validate a violation artifact."""
    with open(path, "r", encoding="utf-8") as fp:
        obj = json.load(fp)
    if obj.get("artifact_version") != ARTIFACT_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported artifact version "
            f"{obj.get('artifact_version')!r} "
            f"(expected {ARTIFACT_FORMAT_VERSION})"
        )
    return obj


@dataclass(slots=True)
class ArtifactReplay:
    """Result of re-executing an artifact's minimized schedule."""

    path: str
    invariant: str
    expected_violation: str
    replayed_violation: str | None
    digest_matches: bool
    events: int

    @property
    def ok(self) -> bool:
        """True iff the violation and event stream reproduced exactly."""
        return (
            self.digest_matches
            and self.replayed_violation == self.expected_violation
        )

    def describe(self) -> str:
        """Human-readable verdict for the CLI."""
        if self.ok:
            return (
                f"artifact replay OK: {self.invariant} violated again "
                f"({self.events:,} events, stream digest matches)\n"
                f"  {self.expected_violation}"
            )
        lines = [f"artifact replay FAILED for {self.invariant}:"]
        if not self.digest_matches:
            lines.append("  event stream digest differs from the recording")
        if self.replayed_violation != self.expected_violation:
            lines.append(f"  expected: {self.expected_violation}")
            lines.append(f"  replayed: {self.replayed_violation!r}")
        return "\n".join(lines)


def replay_artifact(path: str) -> ArtifactReplay:
    """Re-execute an artifact's schedule and verify it byte-identically.

    The minimized schedule is re-driven through
    :class:`SchedulePrefixAdversary`; the replay is ``ok`` iff the full
    event stream's SHA-256 matches the recording *and* the named
    invariant reports the same violation (run scope) or the witness
    predicate holds again (ensemble scope).
    """
    from .invariants import INVARIANTS, PROTOCOLS

    obj = load_artifact(path)
    spec = PROTOCOLS[obj["protocol"]]
    invariant = INVARIANTS[obj["invariant"]]
    ctx = run_schedule(
        spec, obj["schedule"], obj["n"], obj["k"], obj["seed"], obj["pattern"]
    )
    replayed = _violation_message(invariant, ctx, obj["violation"])
    return ArtifactReplay(
        path=path,
        invariant=obj["invariant"],
        expected_violation=obj["violation"],
        replayed_violation=replayed,
        digest_matches=stream_digest(ctx) == obj["stream_sha256"],
        events=len(ctx.events or ()),
    )


def _violation_message(
    invariant: Invariant, ctx: CheckContext, ensemble_message: str
) -> str | None:
    """The violation a context exhibits, in artifact-comparable form.

    Run-scope invariants report their own message; ensemble invariants
    are witnessed per-run by their predicate, so the stored ensemble
    message is echoed back when the witness still holds.
    """
    if invariant.scope == "run":
        return invariant.check(ctx)
    return ensemble_message if invariant.witness(ctx) else None


def write_repro_script(
    path: str, obj: Mapping[str, Any], artifact_path: str, trace_path: str
) -> str:
    """Write the human-readable companion for a violation artifact."""
    trial = obj["trial"]
    lines = [
        f"# Invariant violation: `{obj['invariant']}` on `{obj['protocol']}`",
        "",
        f"* **claim:** {obj['claim']}",
        f"* **violation:** {obj['violation']}",
        f"* **configuration:** n={obj['n']} k={obj['k']} "
        f"pattern={obj['pattern']} seed={obj['seed']}",
        f"* **found by:** mode={trial['mode']} adversary={trial['adversary']}"
        + (f" crash_rate={trial['crash_rate']}" if trial["mode"] == "crash" else "")
        + (f" choices={trial['choices']}" if trial["mode"] == "systematic" else ""),
        f"* **schedule:** shrunk from {obj['original_schedule_len']} to "
        f"{obj['shrunk_schedule_len']} entries",
        "",
        "## Reproduce",
        "",
        "Re-execute the minimized schedule and verify the violation plus a",
        "byte-identical event stream:",
        "",
        "```bash",
        f"PYTHONPATH=src python -m repro check --replay {artifact_path}",
        "```",
        "",
        "Inspect the original (unshrunk) failing run:",
        "",
        "```bash",
        f"PYTHONPATH=src python -m repro report {trace_path}",
        f"PYTHONPATH=src python -m repro replay {trace_path}",
        "```",
        "",
    ]
    with open(path, "w", encoding="utf-8") as fp:
        fp.write("\n".join(lines))
    return path


def shrink_violation(
    spec: ProtocolSpec,
    record,
    invariant: Invariant,
    n: int,
    k: int | None,
    pattern: str = "first",
    out_dir: str = ".",
    max_evals: int = DEFAULT_MAX_EVALS,
    checkpoint_every: int | None = None,
) -> None:
    """Minimize one violation and write its artifacts into ``out_dir``.

    Mutates ``record`` (a
    :class:`~repro.check.explore.ViolationRecord`) in place with the
    artifact, trace, and repro-script paths plus the shrink sizes.
    ``checkpoint_every`` is forwarded to :func:`shrink_schedule`; the
    final artifact context is always produced by an uncheckpointed
    re-execution, so ``stream_sha256`` never depends on checkpointing.
    """
    from .explore import capture_run, schedule_of

    os.makedirs(out_dir, exist_ok=True)
    trial = record.trial
    run, events = capture_run(spec, trial, n, k, pattern)
    schedule = schedule_of(events)
    base = os.path.join(
        out_dir, f"violation-{spec.name}-{record.invariant}-t{trial.index}"
    )

    trace_path = f"{base}.trace.jsonl"
    meta = {
        "version": TRACE_FORMAT_VERSION,
        "task": spec.task,
        "n": n,
        "k": k,
        "algorithm": spec.algorithm,
        "adversary": trial.adversary,
        "seed": trial.seed,
        "pattern": pattern,
        "check": {
            "protocol": spec.name,
            "invariant": record.invariant,
            "mode": trial.mode,
            "crash_rate": trial.crash_rate,
            "choices": list(trial.choices),
        },
    }
    sink = JsonlSink(trace_path, meta=meta)
    for event in events:
        sink.emit(event)
    sink.close()

    result = shrink_schedule(
        spec, schedule, invariant.witness, n, k, trial.seed,
        pattern=pattern, max_evals=max_evals, checkpoint_every=checkpoint_every,
    )
    ctx = run_schedule(spec, result.schedule, n, k, trial.seed, pattern)
    message = _violation_message(invariant, ctx, record.message)
    if message is None:
        # Defensive: the minimized schedule no longer violates (should
        # not happen — shrink only accepts violating candidates).
        message = record.message
    obj = artifact_obj(
        spec, record, result, ctx, message, n, k, pattern
    )
    artifact_path = write_artifact(f"{base}.shrunk.json", obj)
    script_path = write_repro_script(
        f"{base}.repro.md", obj, artifact_path, trace_path
    )
    record.artifact_path = artifact_path
    record.trace_path = trace_path
    record.script_path = script_path
    record.original_schedule_len = result.original_len
    record.shrunk_schedule_len = result.shrunk_len
    record.ticks_replayed = result.ticks_replayed
