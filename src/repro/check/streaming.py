"""Streaming invariant checking: fail during the run, not after it.

:mod:`repro.check.invariants` evaluates a finished execution; the chaos
soak and election-as-a-service directions need violations surfaced
*while a run is in flight* — a multi-hour soak should die at the first
double-winner, not report it next morning.  This module re-expresses the
incremental-capable subset of the invariant registry as per-event
monitors and packages them behind :class:`StreamingChecker`, an
:class:`~repro.obs.events.EventSink` that raises
:class:`StreamingViolation` the moment a property breaks, pinpointing
the offending event id (its index in the stream) and logical timestamp.

Not every invariant can stream: linearizability and winner-existence
are properties of the *completed* history, and ``sifting_effective`` is
an ensemble statistic.  What does stream:

* ``unique_winner`` — the second WIN decision is already a violation;
* ``valid_election_outcomes`` / ``valid_sift_outcomes`` — each decision
  is checkable in isolation;
* ``no_false_death`` — a DIE from a processor whose last sifter coin
  was 1 violates the commit-before-flip rule the instant it decides;
* ``names_unique`` — the first duplicate name is a violation;
* ``sifting_witness`` — the streaming face of ``sifting_effective``:
  once a crash-free phase has ``ceil(0.8 * k)`` survivors (``k >= 8``),
  this run is already an ensemble witness.  The naive sifter under the
  coin-aware adversary trips it with participants still undecided —
  which is how CI verifies mid-run detection.

Monitors normalize decision values through ``getattr(v, "value", v)``,
so the same checker works on live streams (fields carry
:class:`~repro.core.protocol.Outcome` enums) and on replayed JSONL
traces (fields carry their serialized strings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..obs.events import Event, EventType
from .invariants import SIFTING_MIN_K, SIFTING_WITNESS_FRACTION

__all__ = [
    "STREAMING_INVARIANTS",
    "StreamError",
    "StreamingChecker",
    "StreamingInvariant",
    "StreamingViolation",
    "audit_trace",
    "streaming_invariants_for",
]


class StreamError(ValueError):
    """A trace stream is malformed: truncated, interleaved, or not JSONL.

    Raised by :func:`audit_trace` with a one-line message naming the
    file, the line number, and what was wrong — never a raw traceback
    from the JSON parser.
    """


class StreamingViolation(RuntimeError):
    """An invariant broke mid-stream; carries the offending event.

    ``event_index`` is the zero-based position of the event in the
    checked stream — the stable "event id" a recorded trace can be
    seeked to — and ``event`` is the event itself.
    """

    def __init__(
        self, invariant: str, message: str, event_index: int, event: Event
    ) -> None:
        super().__init__(
            f"[{invariant}] {message} (event #{event_index}, "
            f"t={event.time}, {event.etype})"
        )
        self.invariant = invariant
        self.violation_message = message
        self.event_index = event_index
        self.event = event


def _decision_value(event: Event):
    """The decision payload, enum-normalized (live Outcome or JSONL str)."""
    result = event.fields.get("result")
    return getattr(result, "value", result)


class _Monitor:
    """Base class: one stateful per-run instance of a streaming invariant."""

    __slots__ = ()

    def observe(self, event: Event) -> str | None:
        """Fold one event; return a violation message or ``None``."""
        raise NotImplementedError


class _UniqueWinner(_Monitor):
    __slots__ = ("_winner",)

    def __init__(self, checker: "StreamingChecker") -> None:
        self._winner: int | None = None

    def observe(self, event: Event) -> str | None:
        if event.etype != EventType.PROC_DECIDE:
            return None
        if _decision_value(event) != "win":
            return None
        if self._winner is not None:
            return f"second winner p{event.pid} after p{self._winner}"
        self._winner = event.pid
        return None


class _ValidOutcomes(_Monitor):
    __slots__ = ("_allowed",)

    def __init__(self, allowed: tuple[str, ...]) -> None:
        self._allowed = allowed

    def observe(self, event: Event) -> str | None:
        if event.etype != EventType.PROC_DECIDE:
            return None
        value = _decision_value(event)
        if value not in self._allowed:
            return f"p{event.pid} decided {value!r}, outside {list(self._allowed)}"
        return None


class _NoFalseDeath(_Monitor):
    __slots__ = ("_last_coin",)

    def __init__(self, checker: "StreamingChecker") -> None:
        self._last_coin: dict[int, int] = {}

    def observe(self, event: Event) -> str | None:
        if event.etype == EventType.COIN_FLIP:
            if str(event.fields.get("label", "")).endswith(".coin"):
                self._last_coin[event.pid] = event.fields.get("value")
            return None
        if event.etype != EventType.PROC_DECIDE:
            return None
        if _decision_value(event) == "die" and self._last_coin.get(event.pid) == 1:
            return f"p{event.pid} flipped 1 (high priority) but returned DIE"
        return None


class _NamesUnique(_Monitor):
    __slots__ = ("_claimed",)

    def __init__(self, checker: "StreamingChecker") -> None:
        self._claimed: dict = {}

    def observe(self, event: Event) -> str | None:
        if event.etype != EventType.PROC_DECIDE:
            return None
        name = _decision_value(event)
        previous = self._claimed.get(name)
        if previous is not None:
            return f"p{event.pid} decided name {name!r}, already taken by p{previous}"
        self._claimed[name] = event.pid
        return None


class _SiftingWitness(_Monitor):
    """Streaming witness for ``sifting_effective`` (Claim 3.2).

    Counts SURVIVE decisions in a crash-free phase; once the survivor
    count reaches ``ceil(SIFTING_WITNESS_FRACTION * k)`` with
    ``k >= SIFTING_MIN_K``, this single run already satisfies the
    ensemble invariant's witness predicate — no need to wait for the
    rest to decide, let alone for more runs.  Disarmed by the first
    crash (the ensemble only judges crash-free phases).
    """

    __slots__ = ("_k", "_survivors", "_armed", "_threshold", "_fired")

    def __init__(self, checker: "StreamingChecker") -> None:
        self._k = checker.k
        self._survivors = 0
        self._armed = self._k is not None and self._k >= SIFTING_MIN_K
        self._threshold = (
            math.ceil(SIFTING_WITNESS_FRACTION * self._k) if self._k else 0
        )
        self._fired = False

    def observe(self, event: Event) -> str | None:
        if not self._armed or self._fired:
            return None
        if event.etype == EventType.SCHED_CRASH:
            self._armed = False
            return None
        if event.etype != EventType.PROC_DECIDE:
            return None
        if _decision_value(event) != "survive":
            return None
        self._survivors += 1
        if self._survivors >= self._threshold:
            self._fired = True
            return (
                f"{self._survivors}/{self._k} participants already survived "
                f"(>= {SIFTING_WITNESS_FRACTION:.0%} witness threshold) in a "
                f"crash-free phase: the sifter is not sifting"
            )
        return None


@dataclass(frozen=True, slots=True)
class StreamingInvariant:
    """One incrementally-checkable invariant: metadata plus a monitor factory.

    ``factory`` builds a fresh stateful :class:`_Monitor` per checker;
    it receives the checker so monitors can read run parameters (``k``).
    ``batch_name`` links back to the post-hoc invariant in
    :data:`repro.check.invariants.INVARIANTS` that this monitor streams.
    """

    name: str
    claim: str
    tasks: tuple[str, ...]
    description: str
    factory: Callable[["StreamingChecker"], _Monitor]
    batch_name: str


#: Registry of every streaming invariant, keyed by name.
STREAMING_INVARIANTS: dict[str, StreamingInvariant] = {
    inv.name: inv
    for inv in (
        StreamingInvariant(
            "unique_winner", "Lemma A.2", ("elect",),
            "The second WIN decision is flagged the instant it happens.",
            factory=_UniqueWinner, batch_name="unique_winner",
        ),
        StreamingInvariant(
            "valid_election_outcomes", "Section 2 (problem statement)",
            ("elect",),
            "Each decision must be WIN or LOSE, checked in isolation.",
            factory=lambda checker: _ValidOutcomes(("win", "lose")),
            batch_name="valid_election_outcomes",
        ),
        StreamingInvariant(
            "valid_sift_outcomes", "Figures 1-2 (return values)", ("sift",),
            "Each decision must be SURVIVE or DIE, checked in isolation.",
            factory=lambda checker: _ValidOutcomes(("survive", "die")),
            batch_name="valid_sift_outcomes",
        ),
        StreamingInvariant(
            "no_false_death", "Figures 1-2 (survival rule)", ("sift",),
            "A DIE from a processor whose last sifter coin was 1 is "
            "flagged at its decide event.",
            factory=_NoFalseDeath, batch_name="no_false_death",
        ),
        StreamingInvariant(
            "sifting_witness", "Claim 3.2 / Lemmas 3.6-3.7", ("sift",),
            "Fires once a crash-free phase accumulates the ensemble "
            "witness fraction of survivors — before the run completes.",
            factory=_SiftingWitness, batch_name="sifting_effective",
        ),
        StreamingInvariant(
            "names_unique", "Lemma A.6 (uniqueness)", ("rename",),
            "The first duplicate name is flagged at its decide event.",
            factory=_NamesUnique, batch_name="names_unique",
        ),
    )
}


def streaming_invariants_for(
    task: str, names: Sequence[str] | None = None
) -> list[StreamingInvariant]:
    """The streaming invariants applicable to ``task``, optionally filtered.

    Unknown names raise :class:`ValueError`, mirroring
    :func:`repro.check.invariants.invariants_for`.
    """
    if names is not None:
        unknown = sorted(set(names) - set(STREAMING_INVARIANTS))
        if unknown:
            raise ValueError(
                f"unknown streaming invariants {unknown}; "
                f"known: {sorted(STREAMING_INVARIANTS)}"
            )
    return [
        inv for inv in STREAMING_INVARIANTS.values()
        if task in inv.tasks and (names is None or inv.name in names)
    ]


class StreamingChecker:
    """EventSink that evaluates streaming invariants as events arrive.

    Attach alongside any other sink (the runtime fans out through
    :class:`~repro.obs.events.MultiSink`); each event is folded into
    every monitor for the chosen ``task``.  On a violation the default
    is to **fail fast**: raise :class:`StreamingViolation` out of the
    emitting call, aborting the run at the offending event.  With
    ``fail_fast=False`` violations accumulate in :attr:`violations`
    instead (one entry per invariant — monitors are dropped after their
    first finding) and the run continues, which is what trace auditing
    (``repro check``'s post-hoc mode and tests) wants.

    ``k`` is the participant count, needed by the sifting witness; pass
    it when checking ``sift`` runs, omit it otherwise.
    """

    __slots__ = ("task", "k", "fail_fast", "violations", "_monitors", "_index")

    def __init__(
        self,
        task: str,
        k: int | None = None,
        invariants: Sequence[str] | None = None,
        fail_fast: bool = True,
    ) -> None:
        self.task = task
        self.k = k
        self.fail_fast = fail_fast
        self.violations: list[StreamingViolation] = []
        self._monitors: list[tuple[str, _Monitor]] = [
            (inv.name, inv.factory(self))
            for inv in streaming_invariants_for(task, invariants)
        ]
        self._index = -1

    @property
    def events_checked(self) -> int:
        """How many events have been folded so far."""
        return self._index + 1

    def emit(self, event: Event) -> None:
        """Check one event against every active monitor.

        Raises :class:`StreamingViolation` in fail-fast mode; otherwise
        records the violation and deactivates that invariant's monitor.
        """
        self._index += 1
        tripped: list[int] = []
        for position, (name, monitor) in enumerate(self._monitors):
            message = monitor.observe(event)
            if message is None:
                continue
            violation = StreamingViolation(name, message, self._index, event)
            if self.fail_fast:
                raise violation
            self.violations.append(violation)
            tripped.append(position)
        for position in reversed(tripped):
            del self._monitors[position]

    def close(self) -> None:
        """No-op: recorded violations stay readable after the run."""
        pass

    def check_events(self, events) -> list[StreamingViolation]:
        """Audit a pre-recorded event sequence; returns the violations.

        Convenience for trace files: respects ``fail_fast`` (the first
        violation raises) and otherwise returns everything found.
        """
        for event in events:
            self.emit(event)
        return self.violations


def audit_trace(
    path: str,
    task: str,
    k: int | None = None,
    invariants: Sequence[str] | None = None,
    fail_fast: bool = True,
) -> StreamingChecker:
    """Stream a JSONL trace file through a fresh :class:`StreamingChecker`.

    Reads line by line (never the whole file), so a multi-gigabyte soak
    trace audits in constant memory.  Malformed input — a truncated last
    line, two writers' lines interleaved into broken JSON, an event
    object missing its ``t``/``e``/``p``/``f`` keys — raises
    :class:`StreamError` with a one-line diagnosis instead of leaking a
    parser traceback.  Invariant violations propagate per ``fail_fast``,
    exactly as :meth:`StreamingChecker.emit` does; the returned checker
    carries accumulated violations otherwise.
    """
    import json

    from ..obs.jsonl import iter_trace_lines, obj_to_event

    checker = StreamingChecker(task, k=k, invariants=invariants,
                               fail_fast=fail_fast)
    for number, line in enumerate(iter_trace_lines(path), start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise StreamError(
                f"{path}: line {number}: not valid JSON "
                f"({error.msg} at column {error.colno}) — stream truncated "
                "or interleaved?"
            ) from None
        if not isinstance(obj, dict):
            raise StreamError(
                f"{path}: line {number}: expected a JSON object, "
                f"got {type(obj).__name__}"
            )
        if number == 1 and "meta" in obj:
            continue
        missing = sorted({"t", "e", "p", "f"} - set(obj))
        if missing:
            raise StreamError(
                f"{path}: line {number}: event object missing "
                f"key(s) {missing} — not a repro trace line?"
            )
        checker.emit(obj_to_event(obj))
    return checker
