"""Schedule exploration: drive a protocol through many interleavings.

The explorer turns an invariant set into a search problem: run the
target protocol under a *budget* of executions whose schedules are
chosen three ways, evaluate every run-scope invariant on each run, and
every ensemble invariant on the whole batch.

* ``random`` — randomized schedule search: the registry adversaries
  (fair, eager, sequential, coin-aware, quorum-split, ...) each drive
  runs under many per-run seeds.  This is the workhorse mode; the
  attack adversaries bias the search toward the schedules the paper's
  proofs actually fight.
* ``crash`` — crash-storm composition: every registry adversary is
  wrapped in :class:`~repro.adversary.crash.RandomCrashAdversary` at a
  rotating rate, exercising the safety claims under failures.
* ``systematic`` — bounded systematic search: delivery-order choice
  prefixes are enumerated breadth-first up to a depth budget, with the
  remainder of each run completed by the deterministic fallback.  Depth
  and branching are configurable; the mode guarantees coverage of every
  early interleaving up to the budget rather than sampling.

Trials fan out over the process-parallel harness
(:mod:`repro.harness.parallel`) and are bit-reproducible: a trial's
entire behaviour is a pure function of its :class:`TrialSpec`, so any
violation can be re-run locally — which is how the shrinker gets the
failing schedule without shipping event streams across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..adversary import ADVERSARY_FACTORIES, RandomCrashAdversary
from ..adversary.base import Adversary, fallback_action
from ..obs.events import Event, ListSink, SCHEDULE_EVENT_TYPES
from ..obs.jsonl import event_to_obj
from ..sim.rng import derive_seed
from ..sim.runtime import Action, Deliver, Simulation, Step
from .invariants import (
    PROTOCOLS,
    Invariant,
    ProtocolSpec,
    TrialStats,
    evaluate_run,
    invariants_for,
    run_protocol,
    stats_for,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..sim.snapshot import SimulationCheckpoint

#: Scheduling strategies the explorer rotates through by default.  The
#: "bubble" adversary is excluded: it exists to *prove a lower bound* by
#: stalling progress as long as the model permits, which makes it
#: disproportionately slow as a search vehicle.
DEFAULT_ADVERSARIES = (
    "random",
    "eager",
    "round_robin",
    "oblivious",
    "sequential",
    "coin_aware",
    "quorum_split",
)

#: Crash-storm rates the ``crash`` mode rotates through.
CRASH_RATES = (0.002, 0.01, 0.05)

#: All exploration modes, in planning order.
MODES = ("random", "crash", "systematic")


def enumerate_enabled(sim: Simulation) -> list[Action]:
    """The enabled actions of ``sim`` in a deterministic order.

    Deliveries come first, ordered by message uid (send order), then
    computation steps ordered by pid.  Crash actions are deliberately
    excluded — the systematic mode explores delivery orders; crash
    coverage comes from the ``crash`` mode.
    """
    actions: list[Action] = [
        Deliver(message)
        for message in sorted(sim.in_flight.messages, key=lambda m: m.uid)
    ]
    actions.extend(Step(pid) for pid in sorted(sim.steppable))
    return actions


class SystematicAdversary(Adversary):
    """Follow an explicit choice prefix over the enabled-action list.

    ``choices`` is a tuple of indices; choice ``c`` at a decision point
    with ``m`` enabled actions selects action ``c % m`` of
    :func:`enumerate_enabled`.  Once the prefix is exhausted the run is
    completed by :func:`~repro.adversary.base.fallback_action`, so every
    prefix yields a complete, deterministic execution.
    """

    name = "systematic"

    def __init__(self, choices: Sequence[int]) -> None:
        self._choices = tuple(choices)
        self._cursor = 0

    def setup(self, sim: Simulation) -> None:
        """Reset the prefix cursor (adversary reuse contract)."""
        self._cursor = 0

    def choose(self, sim: Simulation) -> Action | None:
        """Apply the next prefix choice, or fall back past the prefix."""
        if self._cursor < len(self._choices):
            actions = enumerate_enabled(sim)
            if actions:
                index = self._choices[self._cursor] % len(actions)
                self._cursor += 1
                return actions[index]
        return fallback_action(sim)


def choice_prefixes(branching: int, depth: int) -> Iterable[tuple[int, ...]]:
    """Yield choice prefixes breadth-first: (), (0,), (1,), ..., (0,0), ...

    Enumerates ``branching**d`` prefixes at each depth ``d`` up to
    ``depth``; callers truncate to their trial budget.
    """
    if branching < 1 or depth < 0:
        raise ValueError("branching must be >= 1 and depth >= 0")
    frontier: list[tuple[int, ...]] = [()]
    yield ()
    for _ in range(depth):
        next_frontier: list[tuple[int, ...]] = []
        for prefix in frontier:
            for choice in range(branching):
                extended = prefix + (choice,)
                yield extended
                next_frontier.append(extended)
        frontier = next_frontier


@dataclass(frozen=True, slots=True)
class TrialSpec:
    """A fully reproducible description of one explored run.

    Everything a trial does — adversary construction, crash storm
    parameters, systematic choice prefix, per-run seed — lives here, so
    a trial can be re-executed bit-identically in any process.
    """

    index: int
    mode: str  # "random" | "crash" | "systematic"
    adversary: str  # registry name of the (inner) scheduler
    seed: int
    crash_rate: float = 0.0
    max_crashes: int | None = None
    choices: tuple[int, ...] = ()

    def build_adversary(self) -> Adversary:
        """Construct a fresh adversary realizing this trial's schedule."""
        if self.mode == "systematic":
            return SystematicAdversary(self.choices)
        inner = ADVERSARY_FACTORIES[self.adversary](seed=self.seed)
        if self.mode == "crash":
            return RandomCrashAdversary(
                inner,
                rate=self.crash_rate,
                seed=self.seed,
                max_crashes=self.max_crashes,
            )
        return inner

    def describe(self) -> str:
        """One-line human-readable rendering for reports."""
        if self.mode == "systematic":
            return f"systematic prefix={list(self.choices)} seed={self.seed}"
        if self.mode == "crash":
            return (
                f"crash storm rate={self.crash_rate} over "
                f"{self.adversary} seed={self.seed}"
            )
        return f"{self.adversary} seed={self.seed}"


def plan_trials(
    budget: int,
    seed: int,
    adversaries: Sequence[str] = DEFAULT_ADVERSARIES,
    modes: Sequence[str] = MODES,
    branching: int = 4,
    depth: int = 4,
) -> list[TrialSpec]:
    """Allocate ``budget`` trials across the selected exploration modes.

    Random search gets half the budget (it hosts the ensemble
    invariants' per-adversary groups); crash storms and systematic
    enumeration split the rest.  Seeds are derived positionally from the
    master seed, so the plan — and every trial in it — is a pure
    function of the arguments.
    """
    if budget < 1:
        raise ValueError("budget must be at least 1")
    unknown = sorted(set(modes) - set(MODES))
    if unknown:
        raise ValueError(f"unknown modes {unknown}; known: {list(MODES)}")
    unknown = sorted(set(adversaries) - set(ADVERSARY_FACTORIES))
    if unknown:
        raise ValueError(
            f"unknown adversaries {unknown}; known: {sorted(ADVERSARY_FACTORIES)}"
        )
    modes = [mode for mode in MODES if mode in modes]
    shares = {mode: 0 for mode in modes}
    if "random" in shares:
        shares["random"] = budget // 2 if len(modes) > 1 else budget
    others = [mode for mode in modes if mode != "random"]
    remaining = budget - sum(shares.values())
    for position, mode in enumerate(others):
        shares[mode] = remaining // len(others) + (
            1 if position < remaining % len(others) else 0
        )
    trials: list[TrialSpec] = []
    prefixes = list(choice_prefixes(branching, depth))
    for mode in modes:
        for i in range(shares[mode]):
            adversary = adversaries[i % len(adversaries)]
            trial_seed = derive_seed(seed, f"check/{mode}/{i}")
            if mode == "systematic":
                trials.append(TrialSpec(
                    index=len(trials), mode=mode, adversary="systematic",
                    seed=trial_seed,
                    choices=prefixes[i % len(prefixes)],
                ))
            elif mode == "crash":
                trials.append(TrialSpec(
                    index=len(trials), mode=mode, adversary=adversary,
                    seed=trial_seed,
                    crash_rate=CRASH_RATES[i % len(CRASH_RATES)],
                ))
            else:
                trials.append(TrialSpec(
                    index=len(trials), mode=mode, adversary=adversary,
                    seed=trial_seed,
                ))
    return trials


@dataclass(slots=True)
class TrialOutcome:
    """What one explored run produced: a stats digest plus violations."""

    spec: TrialSpec
    stats: TrialStats
    violations: list[tuple[str, str]]


def run_trial(
    protocol: ProtocolSpec,
    trial: TrialSpec,
    n: int,
    k: int | None,
    invariants: Sequence[Invariant],
    pattern: str = "first",
) -> TrialOutcome:
    """Execute one trial and evaluate its run-scope invariants."""
    sink = ListSink()
    run = run_protocol(
        protocol, n, k, trial.build_adversary(), trial.seed,
        pattern=pattern, sink=sink,
    )
    violations = evaluate_run(protocol, run, sink.events, invariants)
    stats = stats_for(
        protocol, run, trial.index, trial.adversary, trial.mode, trial.seed
    )
    return TrialOutcome(spec=trial, stats=stats, violations=violations)


class _CheckpointingSystematic(SystematicAdversary):
    """A :class:`SystematicAdversary` that snapshots when its prefix ends.

    ``on_exhausted(sim)`` fires from inside :meth:`choose` — an action
    boundary — the first time the choice prefix is fully consumed.  With
    a seed shared across the systematic tree, the simulation state at
    that moment is a pure function of the consumed choices, so the
    captured checkpoint is exactly the fork point for every descendant
    prefix.
    """

    name = "systematic_checkpointing"

    def __init__(
        self,
        choices: Sequence[int],
        on_exhausted: "Callable[[Simulation], None]",
    ) -> None:
        super().__init__(choices)
        self._on_exhausted = on_exhausted
        self._captured = False

    def setup(self, sim: Simulation) -> None:
        """Reset cursor and the capture-once latch."""
        super().setup(sim)
        self._captured = False

    def choose(self, sim: Simulation) -> Action | None:
        """Snapshot once at prefix exhaustion, then choose as the parent."""
        if not self._captured and self._cursor == len(self._choices):
            self._captured = True
            self._on_exhausted(sim)
        return super().choose(sim)


def run_trial_checkpointed(
    protocol: ProtocolSpec,
    trial: TrialSpec,
    n: int,
    k: int | None,
    invariants: Sequence[Invariant],
    pattern: str,
    store: "dict[tuple[int, ...], tuple[SimulationCheckpoint, list[Event]]]",
) -> TrialOutcome:
    """Execute one systematic trial, forking from the deepest stored ancestor.

    Requires every systematic trial in the batch to share one seed (the
    explorer rewrites them to a common tree seed before calling this):
    the state after consuming a choice prefix is then a pure function of
    that prefix, so a trial with choices ``p + q`` can resume from the
    checkpoint another trial captured when it exhausted prefix ``p``
    instead of re-executing from tick 0.  Checkpoints are stored keyed by
    the exhausted choice prefix, capped at
    :data:`~repro.check.shrink.MAX_STORED_CHECKPOINTS`.
    """
    from ..harness.runners import build_task_simulation
    from ..sim.snapshot import capture, enable_recording
    from .shrink import MAX_STORED_CHECKPOINTS

    choices = trial.choices
    best: tuple[SimulationCheckpoint, list[Event]] | None = None
    best_depth = 0
    for depth in range(len(choices), 0, -1):
        entry = store.get(choices[:depth])
        if entry is not None:
            best, best_depth = entry, depth
            break
    sink = ListSink()
    prefix_events: list[Event] = [] if best is None else list(best[1])

    def on_exhausted(sim: Simulation) -> None:
        if choices not in store and len(store) < MAX_STORED_CHECKPOINTS:
            store[choices] = (capture(sim), prefix_events + list(sink.events))

    adversary = _CheckpointingSystematic(choices[best_depth:], on_exhausted)
    if best is None:
        sim = build_task_simulation(
            protocol.task, protocol.algorithm, n, k=k, adversary=adversary,
            seed=trial.seed, pattern=pattern, sink=sink,
        )
        enable_recording(sim)
    else:
        sim = best[0].fork(adversary, sink=sink)
    run = run_protocol(
        protocol, n, k, adversary, trial.seed,
        pattern=pattern, simulation=sim,
    )
    events = prefix_events + sink.events
    violations = evaluate_run(protocol, run, events, invariants)
    stats = stats_for(
        protocol, run, trial.index, trial.adversary, trial.mode, trial.seed
    )
    return TrialOutcome(spec=trial, stats=stats, violations=violations)


def capture_run(
    protocol: ProtocolSpec,
    trial: TrialSpec,
    n: int,
    k: int | None,
    pattern: str = "first",
) -> tuple[Any, list[Event]]:
    """Re-execute a trial, returning its Run object and full event stream.

    Trials are pure functions of their spec, so this reproduces the
    original execution exactly — the cheap way to recover a violating
    schedule without shipping event streams between worker processes.
    """
    sink = ListSink()
    run = run_protocol(
        protocol, n, k, trial.build_adversary(), trial.seed,
        pattern=pattern, sink=sink,
    )
    return run, sink.events


def schedule_of(events: Sequence[Event]) -> list[dict[str, Any]]:
    """The serializable scheduling subsequence of an event stream.

    Entries use the same object form as recorded traces
    (``{"t":..., "e":..., "p":..., "f":...}``), so they are interchangeable
    with :func:`repro.obs.replay.extract_schedule` output.
    """
    return [
        event_to_obj(event)
        for event in events
        if event.etype in SCHEDULE_EVENT_TYPES
    ]


@dataclass(slots=True)
class ViolationRecord:
    """One reported invariant violation, with its artifacts when shrunk."""

    invariant: str
    claim: str
    message: str
    trial: TrialSpec
    scope: str
    artifact_path: str | None = None
    trace_path: str | None = None
    script_path: str | None = None
    original_schedule_len: int | None = None
    shrunk_schedule_len: int | None = None
    ticks_replayed: int | None = None

    def describe(self) -> str:
        """Multi-line human-readable rendering for the CLI report."""
        lines = [
            f"VIOLATION {self.invariant} ({self.claim})",
            f"  {self.message}",
            f"  trial: {self.trial.describe()}",
        ]
        if self.shrunk_schedule_len is not None:
            lines.append(
                f"  schedule shrunk {self.original_schedule_len} -> "
                f"{self.shrunk_schedule_len} entries"
            )
        if self.ticks_replayed is not None:
            lines.append(
                f"  shrink cost: {self.ticks_replayed} ticks re-executed"
            )
        if self.artifact_path:
            lines.append(f"  artifact: {self.artifact_path}")
        if self.trace_path:
            lines.append(f"  trace:    {self.trace_path}")
        if self.script_path:
            lines.append(f"  repro:    {self.script_path}")
        return "\n".join(lines)


@dataclass(slots=True)
class CheckReport:
    """The full result of one ``explore`` invocation."""

    protocol: str
    n: int
    k: int | None
    seed: int
    budget: int
    invariant_names: list[str]
    outcomes: list[TrialOutcome] = field(default_factory=list)
    violations: list[ViolationRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no invariant was violated anywhere in the budget."""
        return not self.violations

    def mode_counts(self) -> dict[str, int]:
        """Trials executed per exploration mode."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.spec.mode] = counts.get(outcome.spec.mode, 0) + 1
        return counts

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        modes = ", ".join(
            f"{mode}={count}" for mode, count in sorted(self.mode_counts().items())
        )
        lines = [
            f"checked {self.protocol}: {len(self.outcomes)} runs "
            f"(n={self.n}, seed={self.seed}; {modes})",
            f"invariants: {', '.join(self.invariant_names)}",
        ]
        if self.ok:
            lines.append("result: OK — no invariant violated")
        else:
            lines.append(f"result: {len(self.violations)} violation(s)")
            for record in self.violations:
                lines.append(record.describe())
        return "\n".join(lines)


#: Cap on how many distinct violations get the full shrink-and-artifact
#: treatment per invocation; later duplicates are still reported.
MAX_SHRUNK_VIOLATIONS = 3


def explore(
    protocol: str | ProtocolSpec,
    n: int = 16,
    k: int | None = None,
    budget: int = 200,
    seed: int = 0,
    workers: int = 1,
    invariants: Sequence[str] | None = None,
    adversaries: Sequence[str] = DEFAULT_ADVERSARIES,
    modes: Sequence[str] = MODES,
    branching: int = 4,
    depth: int = 4,
    pattern: str = "first",
    shrink: bool = True,
    out_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> CheckReport:
    """Explore ``budget`` schedules of ``protocol`` and check invariants.

    Returns a :class:`CheckReport`; when ``shrink`` is set, each of the
    first :data:`MAX_SHRUNK_VIOLATIONS` violations is minimized with
    :func:`repro.check.shrink.shrink_schedule` and written to ``out_dir``
    (default: the working directory) as a replayable artifact, a full
    event trace, and a human-readable repro script.

    ``checkpoint_every`` opts into simulation checkpointing
    (:mod:`repro.sim.snapshot`): shrinking forks candidates from
    mid-schedule snapshots taken every that-many entries, and — when
    ``workers == 1`` — the systematic trials share one tree seed so each
    prefix resumes from the checkpoint its parent prefix captured,
    instead of re-executing from tick 0.  The seed rewrite is confined
    to this opt-in; default exploration is unchanged.
    """
    from ..harness.parallel import run_seeded_tasks
    from .shrink import shrink_violation

    spec = PROTOCOLS[protocol] if isinstance(protocol, str) else protocol
    selected = invariants_for(spec.task, invariants)
    trials = plan_trials(
        budget, seed, adversaries=adversaries, modes=modes,
        branching=branching, depth=depth,
    )
    checkpointed_tree = checkpoint_every is not None and workers == 1
    if checkpointed_tree:
        # Cross-trial checkpoint sharing needs a seed shared across the
        # systematic tree (per-trial seeds would make states diverge).
        tree_seed = derive_seed(seed, "check/systematic/tree")
        trials = [
            replace(trial, seed=tree_seed)
            if trial.mode == "systematic" else trial
            for trial in trials
        ]
    run_invariants = [inv for inv in selected if inv.scope == "run"]

    def execute(index: int, _seed: int) -> TrialOutcome:
        return run_trial(spec, trials[index], n, k, run_invariants, pattern)

    if checkpointed_tree:
        store: dict[tuple[int, ...], Any] = {}
        fanout = [trial for trial in trials if trial.mode != "systematic"]
        outcomes = list(run_seeded_tasks(
            execute,
            [(trial.index, trial.seed) for trial in fanout],
            workers=workers,
        ))
        outcomes.extend(
            run_trial_checkpointed(
                spec, trial, n, k, run_invariants, pattern, store
            )
            for trial in trials
            if trial.mode == "systematic"
        )
        outcomes.sort(key=lambda outcome: outcome.spec.index)
    else:
        outcomes = run_seeded_tasks(
            execute,
            [(trial.index, trial.seed) for trial in trials],
            workers=workers,
        )
    report = CheckReport(
        protocol=spec.name, n=n, k=k, seed=seed, budget=budget,
        invariant_names=[inv.name for inv in selected],
        outcomes=list(outcomes),
    )
    by_name = {inv.name: inv for inv in selected}
    for outcome in outcomes:
        for name, message in outcome.violations:
            report.violations.append(ViolationRecord(
                invariant=name,
                claim=by_name[name].claim,
                message=message,
                trial=outcome.spec,
                scope="run",
            ))
    all_stats = [outcome.stats for outcome in outcomes]
    for invariant in selected:
        if invariant.scope != "ensemble":
            continue
        verdict = invariant.check_ensemble(all_stats)
        if verdict is not None:
            report.violations.append(ViolationRecord(
                invariant=invariant.name,
                claim=invariant.claim,
                message=verdict.message,
                trial=trials[verdict.witness_index],
                scope="ensemble",
            ))
    if shrink:
        for record in report.violations[:MAX_SHRUNK_VIOLATIONS]:
            shrink_violation(
                spec, record, by_name[record.invariant], n, k,
                pattern=pattern, out_dir=out_dir or ".",
                checkpoint_every=checkpoint_every,
            )
    return report
