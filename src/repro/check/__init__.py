"""Schedule exploration and invariant checking for the paper's claims.

``repro.check`` turns the paper's adversarial guarantees into
machine-checked properties:

* :mod:`repro.check.invariants` — the registry of named invariants
  (unique winner, at-least-one-survivor, linearizability, name
  uniqueness, ...) mapped to the claims and lemmas they reproduce, plus
  the protocol registry ``repro check`` can target.
* :mod:`repro.check.streaming` — the streaming face of the registry: a
  :class:`~repro.check.streaming.StreamingChecker` event sink that
  evaluates incremental-capable invariants *during* a run and fails
  fast with the offending event id.
* :mod:`repro.check.explore` — the explorer: randomized, crash-storm,
  and bounded-systematic schedule search over a trial budget, fanned
  out across worker processes.
* :mod:`repro.check.shrink` — schedule minimization for violations and
  the replayable artifact / repro-script machinery.

Entry point: :func:`repro.check.explore.explore`, surfaced on the CLI
as ``repro check``.
"""

from .explore import (
    CheckReport,
    DEFAULT_ADVERSARIES,
    MODES,
    TrialOutcome,
    TrialSpec,
    ViolationRecord,
    explore,
    plan_trials,
    run_trial,
)
from .invariants import (
    CORE_PROTOCOLS,
    INVARIANTS,
    PROTOCOLS,
    CheckContext,
    Invariant,
    ProtocolSpec,
    TrialStats,
    invariants_for,
)
from .streaming import (
    STREAMING_INVARIANTS,
    StreamError,
    StreamingChecker,
    StreamingInvariant,
    StreamingViolation,
    audit_trace,
    streaming_invariants_for,
)
from .shrink import (
    ArtifactReplay,
    SchedulePrefixAdversary,
    ShrinkResult,
    load_artifact,
    replay_artifact,
    shrink_schedule,
    shrink_violation,
)

__all__ = [
    "ArtifactReplay",
    "CheckContext",
    "CheckReport",
    "CORE_PROTOCOLS",
    "DEFAULT_ADVERSARIES",
    "INVARIANTS",
    "Invariant",
    "MODES",
    "PROTOCOLS",
    "ProtocolSpec",
    "STREAMING_INVARIANTS",
    "SchedulePrefixAdversary",
    "ShrinkResult",
    "StreamError",
    "StreamingChecker",
    "StreamingInvariant",
    "StreamingViolation",
    "TrialOutcome",
    "TrialSpec",
    "TrialStats",
    "ViolationRecord",
    "audit_trace",
    "explore",
    "invariants_for",
    "streaming_invariants_for",
    "load_artifact",
    "plan_trials",
    "replay_artifact",
    "run_trial",
    "shrink_schedule",
    "shrink_violation",
]
