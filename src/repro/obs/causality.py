"""Happens-before reconstruction and message-lineage analysis of traces.

The paper measures time in ``communicate`` quorums, but the *reason* a
schedule is slow or fast lives one level deeper: the longest chain of
causally-ordered messages any decision depends on.  This module rebuilds
the happens-before relation of a recorded (or in-memory) event stream —
program order within each processor, plus a send→deliver edge for every
matched message — and reduces it to the two quantities the algorithm
shootout needs:

* **critical-path depth** per decision: the length, in messages, of the
  longest causal chain ending at that processor's decide event.  A
  tournament's winner sits at depth Θ(log n · quorum-round-trips); the
  paper's election should beat it — now measurable per run.
* **lineage** per processor: the actual chain of message hops behind
  its current state, oldest first — the "why did p7 decide that"
  debugging view, surfaced as ``repro report --lineage 7``.

Send and deliver events are matched FIFO per ``(src, dst, kind, call)``
channel, which is exact for the simulator (per-call messages are
delivered at most once) and degrades gracefully on net traces where
chaos duplication can replay a frame: a duplicate deliver with no
waiting send is counted in :attr:`CausalReport.unmatched_delivers`
rather than corrupting depths.

The analysis is a single forward pass, O(events) time and O(pids +
in-flight messages) state, so it handles arbitrarily long streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .events import Event, EventType

__all__ = [
    "CausalReport",
    "MessageHop",
    "analyze_events",
    "analyze_trace",
    "critical_path_report",
    "lineage_report",
]


@dataclass(frozen=True, slots=True)
class MessageHop:
    """One send→deliver edge on a causal chain.

    ``depth`` is the hop's position on its chain (1-based: the first
    message ever to influence a processor is depth 1).  ``parent`` links
    to the previous hop on the same chain, forming the lineage spine.
    """

    src: int
    dst: int
    kind: str
    call: int
    send_index: int
    send_time: int
    deliver_index: int
    deliver_time: int
    depth: int
    parent: "MessageHop | None" = field(repr=False, default=None)


@dataclass(slots=True)
class _PendingSend:
    """A sent-but-not-yet-delivered message: its causal context at send."""

    send_index: int
    send_time: int
    sender_depth: int
    sender_hop: MessageHop | None


class CausalReport:
    """The result of a happens-before pass over one event stream."""

    __slots__ = (
        "depth_by_pid",
        "last_hop_by_pid",
        "decision_depths",
        "decision_hops",
        "decide_times",
        "events_seen",
        "matched_messages",
        "unmatched_delivers",
    )

    def __init__(self) -> None:
        #: Current causal message-depth of each processor's state.
        self.depth_by_pid: dict[int, int] = {}
        #: Deepest hop currently influencing each processor.
        self.last_hop_by_pid: dict[int, MessageHop | None] = {}
        #: Critical-path depth (in messages) at each decide event.
        self.decision_depths: dict[int, int] = {}
        #: The hop terminating each decision's critical path.
        self.decision_hops: dict[int, MessageHop | None] = {}
        #: Logical decide time per pid.
        self.decide_times: dict[int, int] = {}
        self.events_seen = 0
        self.matched_messages = 0
        self.unmatched_delivers = 0

    @property
    def max_decision_depth(self) -> int:
        """The deepest critical path over all decisions (0 when none)."""
        return max(self.decision_depths.values(), default=0)

    def lineage(self, pid: int) -> list[MessageHop]:
        """The message chain behind ``pid``'s state, oldest hop first.

        Uses the decision-time hop when ``pid`` decided, else the live
        one; empty when no message ever influenced the processor.
        """
        hop = self.decision_hops.get(pid, self.last_hop_by_pid.get(pid))
        chain: list[MessageHop] = []
        while hop is not None:
            chain.append(hop)
            hop = hop.parent
        chain.reverse()
        return chain


def analyze_events(events: Iterable[Event]) -> CausalReport:
    """Single forward pass: rebuild happens-before, track chain depths.

    Per processor, ``depth_by_pid`` holds the length of the longest
    message chain that happens-before its current state.  A send stamps
    the message with the sender's depth; the matching deliver extends
    the chain by one hop and raises the recipient's depth if the new
    chain is longer.  ``proc.decide`` freezes the recipient's depth as
    that decision's critical path.
    """
    report = CausalReport()
    pending: dict[tuple[int, int, str, int], list[_PendingSend]] = {}
    depth = report.depth_by_pid
    last_hop = report.last_hop_by_pid
    for index, event in enumerate(events):
        report.events_seen += 1
        etype = event.etype
        if etype == EventType.MSG_SEND:
            fields = event.fields
            src = fields["src"]
            key = (src, fields["dst"], fields["kind"], fields.get("call", 0))
            pending.setdefault(key, []).append(_PendingSend(
                send_index=index,
                send_time=event.time,
                sender_depth=depth.get(src, 0),
                sender_hop=last_hop.get(src),
            ))
        elif etype == EventType.MSG_DELIVER:
            fields = event.fields
            src = fields["src"]
            dst = fields["dst"]
            key = (src, dst, fields["kind"], fields.get("call", 0))
            queue = pending.get(key)
            if not queue:
                # Net chaos can duplicate a frame: the second delivery has
                # no waiting send.  Count it; the first matched delivery
                # already carried the causal edge.
                report.unmatched_delivers += 1
                continue
            send = queue.pop(0)
            if not queue:
                del pending[key]
            report.matched_messages += 1
            hop_depth = send.sender_depth + 1
            if hop_depth > depth.get(dst, 0):
                hop = MessageHop(
                    src=src,
                    dst=dst,
                    kind=fields["kind"],
                    call=fields.get("call", 0),
                    send_index=send.send_index,
                    send_time=send.send_time,
                    deliver_index=index,
                    deliver_time=event.time,
                    depth=hop_depth,
                    parent=send.sender_hop,
                )
                depth[dst] = hop_depth
                last_hop[dst] = hop
        elif etype == EventType.PROC_DECIDE:
            pid = event.pid
            report.decision_depths[pid] = depth.get(pid, 0)
            report.decision_hops[pid] = last_hop.get(pid)
            report.decide_times[pid] = event.time
    return report


def analyze_trace(path: str) -> CausalReport:
    """Happens-before analysis of a recorded JSONL trace file."""
    from .jsonl import read_events

    return analyze_events(read_events(path))


def _outcome_label(outcome: Any) -> str:
    return str(getattr(outcome, "value", outcome))


def critical_path_report(
    report: CausalReport,
    outcomes: Mapping[int, Any] | None = None,
    title: str = "critical paths",
) -> str:
    """Render per-decision critical-path depths as a table.

    ``outcomes`` (pid → decided value), when given, adds an outcome
    column so depth can be compared between winners and losers.
    """
    from ..harness.tables import Table

    headers = ["pid", "depth (msgs)", "decided at"]
    if outcomes is not None:
        headers.append("outcome")
    table = Table(title, headers)
    for pid in sorted(report.decision_depths):
        row: list[Any] = [
            pid,
            report.decision_depths[pid],
            report.decide_times.get(pid, 0),
        ]
        if outcomes is not None:
            row.append(_outcome_label(outcomes.get(pid, "?")))
        table.add_row(*row)
    table.add_note(
        f"max depth {report.max_decision_depth}; "
        f"{report.matched_messages:,} matched messages, "
        f"{report.unmatched_delivers} unmatched delivers"
    )
    return table.render()


def lineage_report(report: CausalReport, pid: int) -> str:
    """Render the message lineage behind ``pid``'s state as a table."""
    from ..harness.tables import Table

    chain = report.lineage(pid)
    table = Table(
        f"message lineage of p{pid}",
        ["hop", "src", "dst", "kind", "call", "sent t", "delivered t"],
    )
    for hop in chain:
        table.add_row(
            hop.depth, hop.src, hop.dst, hop.kind, hop.call,
            hop.send_time, hop.deliver_time,
        )
    if not chain:
        table.add_note("no message ever influenced this processor")
    else:
        depth = report.decision_depths.get(pid)
        if depth is not None:
            table.add_note(f"decision critical-path depth {depth} messages")
    return table.render()
