"""Observability layer: structured events, export, aggregation, replay.

The simulator (:mod:`repro.sim`) emits a typed event stream describing
every scheduling action, message, ``communicate`` quorum, coin flip, and
protocol phase transition.  This package defines the schema and the
consumers:

* :mod:`repro.obs.events`    — the :class:`Event` schema and sinks
  (in-memory list, bounded ring buffer, multi-sink fan-out);
* :mod:`repro.obs.jsonl`     — byte-stable JSONL export/import;
* :mod:`repro.obs.aggregate` — streaming per-round survivor curves,
  message histograms, and communicate-call statistics;
* :mod:`repro.obs.metrics`   — live metrics registry: counters, gauges,
  log-bucketed histograms with p50/p90/p99, registry merge, and
  Prometheus-style exposition;
* :mod:`repro.obs.live`      — periodic snapshot streaming (JSONL) for
  in-flight telemetry, tailable by ``repro watch``;
* :mod:`repro.obs.causality` — happens-before reconstruction, critical-
  path depth per decision, and message lineage;
* :mod:`repro.obs.replay`    — deterministic re-execution of a recorded
  schedule with byte-identical stream verification;
* :mod:`repro.obs.profile`   — wall-clock span profiling of the runtime
  hot paths.

``repro.obs.replay`` is re-exported lazily: it sits above the harness
layer, which itself sits above :mod:`repro.sim`, and the runtime imports
this package from below.
"""

from __future__ import annotations

from .aggregate import PhaseStats, RoundStats, TraceAggregator, aggregate_events
from .causality import (
    CausalReport,
    MessageHop,
    analyze_events,
    analyze_trace,
    critical_path_report,
    lineage_report,
)
from .events import (
    CallbackSink,
    Event,
    EventSink,
    EventType,
    ListSink,
    MultiSink,
    RingBufferSink,
    SCHEDULE_EVENT_TYPES,
    combine_sinks,
    json_safe,
)
from .jsonl import (
    JsonlSink,
    TRACE_FORMAT_VERSION,
    event_line,
    read_events,
    read_trace,
    write_events,
)
from .live import (
    LiveTelemetry,
    SnapshotWriter,
    follow_snapshots,
    read_snapshots,
    render_snapshot,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    merge_snapshots,
    snapshot_to_prometheus,
)
from .profile import Profiler, SpanStats

_REPLAY_EXPORTS = {
    "RecordedTrace",
    "ReplayDivergenceError",
    "ReplayError",
    "ReplayReport",
    "ScriptedAdversary",
    "extract_schedule",
    "record_trace",
    "replay_trace",
}


def __getattr__(name: str):
    # Lazy: replay pulls in the harness, which pulls in the simulator,
    # which imports this package — eager import here would be circular.
    if name in _REPLAY_EXPORTS:
        from . import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CallbackSink",
    "CausalReport",
    "Counter",
    "Event",
    "EventSink",
    "EventType",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "LiveTelemetry",
    "MessageHop",
    "MetricsRegistry",
    "MetricsSink",
    "MultiSink",
    "PhaseStats",
    "Profiler",
    "RecordedTrace",
    "ReplayDivergenceError",
    "ReplayError",
    "ReplayReport",
    "RingBufferSink",
    "RoundStats",
    "SCHEDULE_EVENT_TYPES",
    "ScriptedAdversary",
    "SnapshotWriter",
    "SpanStats",
    "TRACE_FORMAT_VERSION",
    "TraceAggregator",
    "aggregate_events",
    "analyze_events",
    "analyze_trace",
    "combine_sinks",
    "critical_path_report",
    "event_line",
    "extract_schedule",
    "follow_snapshots",
    "json_safe",
    "lineage_report",
    "merge_snapshots",
    "read_events",
    "read_snapshots",
    "read_trace",
    "record_trace",
    "render_snapshot",
    "replay_trace",
    "snapshot_to_prometheus",
    "write_events",
]
