"""Observability layer: structured events, export, aggregation, replay.

The simulator (:mod:`repro.sim`) emits a typed event stream describing
every scheduling action, message, ``communicate`` quorum, coin flip, and
protocol phase transition.  This package defines the schema and the
consumers:

* :mod:`repro.obs.events`    — the :class:`Event` schema and sinks
  (in-memory list, bounded ring buffer, multi-sink fan-out);
* :mod:`repro.obs.jsonl`     — byte-stable JSONL export/import;
* :mod:`repro.obs.aggregate` — streaming per-round survivor curves,
  message histograms, and communicate-call statistics;
* :mod:`repro.obs.replay`    — deterministic re-execution of a recorded
  schedule with byte-identical stream verification;
* :mod:`repro.obs.profile`   — wall-clock span profiling of the runtime
  hot paths.

``repro.obs.replay`` is re-exported lazily: it sits above the harness
layer, which itself sits above :mod:`repro.sim`, and the runtime imports
this package from below.
"""

from __future__ import annotations

from .aggregate import PhaseStats, RoundStats, TraceAggregator, aggregate_events
from .events import (
    CallbackSink,
    Event,
    EventSink,
    EventType,
    ListSink,
    MultiSink,
    RingBufferSink,
    SCHEDULE_EVENT_TYPES,
    combine_sinks,
    json_safe,
)
from .jsonl import (
    JsonlSink,
    TRACE_FORMAT_VERSION,
    event_line,
    read_events,
    read_trace,
    write_events,
)
from .profile import Profiler, SpanStats

_REPLAY_EXPORTS = {
    "RecordedTrace",
    "ReplayDivergenceError",
    "ReplayError",
    "ReplayReport",
    "ScriptedAdversary",
    "extract_schedule",
    "record_trace",
    "replay_trace",
}


def __getattr__(name: str):
    # Lazy: replay pulls in the harness, which pulls in the simulator,
    # which imports this package — eager import here would be circular.
    if name in _REPLAY_EXPORTS:
        from . import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CallbackSink",
    "Event",
    "EventSink",
    "EventType",
    "JsonlSink",
    "ListSink",
    "MultiSink",
    "PhaseStats",
    "Profiler",
    "RecordedTrace",
    "ReplayDivergenceError",
    "ReplayError",
    "ReplayReport",
    "RingBufferSink",
    "RoundStats",
    "SCHEDULE_EVENT_TYPES",
    "ScriptedAdversary",
    "SpanStats",
    "TRACE_FORMAT_VERSION",
    "TraceAggregator",
    "aggregate_events",
    "combine_sinks",
    "event_line",
    "extract_schedule",
    "json_safe",
    "read_events",
    "read_trace",
    "record_trace",
    "replay_trace",
    "write_events",
]
