"""Wall-clock profiling spans for the simulator's hot paths.

The logical-clock metrics answer "how many communicate calls"; this
module answers "where do the *seconds* go" — adversary decision time vs
delivery processing vs protocol steps.  A :class:`Profiler` is passed to
:class:`~repro.sim.runtime.Simulation` (or any other code) and accumulates
named span statistics with ``time.perf_counter``; when no profiler is
attached the runtime pays a single ``is None`` check.

Spans nest freely and the accumulator is merge-able, so sweep workers can
combine per-run profiles into one table
(:func:`repro.harness.tables.profile_table`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(slots=True)
class SpanStats:
    """Accumulated timings of one named span."""

    name: str
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per span."""
        return self.total / self.count if self.count else 0.0

    def add(self, elapsed: float) -> None:
        """Fold one span duration into the stats."""
        self.count += 1
        self.total += elapsed
        if elapsed > self.maximum:
            self.maximum = elapsed


class Profiler:
    """Named wall-clock span accumulator.

    ``clock`` is injectable for deterministic tests; it defaults to
    :func:`time.perf_counter`.
    """

    __slots__ = ("_spans", "_clock")

    def __init__(self, clock=time.perf_counter) -> None:
        self._spans: dict[str, SpanStats] = {}
        self._clock = clock

    @contextmanager
    def span(self, name: str):
        """Time a ``with``-block under ``name``."""
        start = self._clock()
        try:
            yield self
        finally:
            self.record(name, self._clock() - start)

    def record(self, name: str, elapsed: float) -> None:
        """Account one completed span of ``elapsed`` seconds."""
        stats = self._spans.get(name)
        if stats is None:
            stats = self._spans[name] = SpanStats(name=name)
        stats.add(elapsed)

    def stats(self) -> list[SpanStats]:
        """All span statistics, most expensive first."""
        return sorted(self._spans.values(), key=lambda s: -s.total)

    def get(self, name: str) -> SpanStats | None:
        """Stats for one span name, or None if never entered."""
        return self._spans.get(name)

    def total_seconds(self) -> float:
        """Sum of all span totals (spans may nest; this double-counts)."""
        return sum(stats.total for stats in self._spans.values())

    def merge(self, other: "Profiler") -> "Profiler":
        """Fold another profiler's spans into this one; returns self."""
        for stats in other._spans.values():
            mine = self._spans.get(stats.name)
            if mine is None:
                self._spans[stats.name] = SpanStats(
                    name=stats.name,
                    count=stats.count,
                    total=stats.total,
                    maximum=stats.maximum,
                )
            else:
                mine.count += stats.count
                mine.total += stats.total
                if stats.maximum > mine.maximum:
                    mine.maximum = stats.maximum
        return self

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"{s.name}={s.total:.3f}s" for s in self.stats()[:4])
        return f"Profiler({spans})"
