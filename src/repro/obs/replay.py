"""Deterministic trace recording and replay.

A recorded trace (JSONL, see :mod:`repro.obs.jsonl`) contains a meta
header naming the task configuration and a full event stream.  Because
the simulator is deterministic given ``(seed, schedule)`` — processor
randomness comes from seed-derived streams, and the adversary's choices
are exactly the ``sched.step`` / ``sched.crash`` / ``msg.deliver``
events — the trace doubles as a reproducible artifact: the
:class:`ScriptedAdversary` re-drives the runtime through the identical
action sequence and :func:`replay_trace` verifies that the rerun emits a
byte-identical event stream.  Any benchmark anomaly therefore reduces to
a file that reproduces it exactly, on any machine.

The flow::

    record_trace("run.jsonl", task="elect", n=16, adversary="sequential", seed=7)
    report = replay_trace("run.jsonl")
    assert report.ok
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..adversary.base import Adversary
from ..sim.runtime import Action, Crash, Deliver, Step
from .events import EventType, ListSink, SCHEDULE_EVENT_TYPES
from .jsonl import (
    JsonlSink,
    TRACE_FORMAT_VERSION,
    event_line,
    iter_trace_lines,
    read_trace,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..sim.runtime import Simulation

#: Tasks a trace can record; mirrors the CLI's run verbs.
TRACEABLE_TASKS = ("elect", "sift", "rename")


class ReplayError(Exception):
    """A trace could not be replayed (bad file, missing meta, ...)."""


class ReplayDivergenceError(ReplayError):
    """The rerun's state stopped matching the recorded schedule."""


class ScriptedAdversary(Adversary):
    """Re-drive a simulation through a recorded action sequence.

    ``schedule`` is the ordered list of scheduling-event objects
    (``sched.step`` / ``sched.crash`` / ``msg.deliver``) extracted from a
    trace.  Deliver entries are resolved against the live in-flight pool
    by ``(sender, recipient, kind, call id)`` — unique per message, since
    every communicate call sends one message per recipient and each
    delivery triggers at most one reply per call.
    """

    name = "scripted"

    def __init__(self, schedule: Iterable[Mapping[str, Any]]) -> None:
        self._schedule: list[Mapping[str, Any]] = list(schedule)
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Schedule entries not yet consumed."""
        return len(self._schedule) - self._cursor

    def choose(self, sim: "Simulation") -> Action | None:
        """Re-issue the next recorded schedule entry as a live action."""
        if self._cursor >= len(self._schedule):
            return None
        entry = self._schedule[self._cursor]
        self._cursor += 1
        etype = entry["e"]
        if etype == EventType.SCHED_STEP:
            return Step(entry["p"])
        if etype == EventType.SCHED_CRASH:
            return Crash(entry["p"])
        if etype == EventType.MSG_DELIVER:
            fields = entry["f"]
            recipient = entry["p"]
            for message in sim.in_flight.addressed_to(recipient):
                if (
                    message.sender == fields["src"]
                    and message.call_id == fields["call"]
                    and message.kind.value == fields["kind"]
                ):
                    return Deliver(message)
            raise ReplayDivergenceError(
                f"schedule entry {self._cursor - 1}: no in-flight message "
                f"matches {fields['kind']} {fields['src']}->{recipient} "
                f"call={fields['call']} — the rerun diverged from the recording"
            )
        raise ReplayError(f"unknown schedule entry type {etype!r}")


def extract_schedule(
    event_objects: Iterable[Mapping[str, Any]],
) -> list[Mapping[str, Any]]:
    """The scheduling subsequence of a parsed event stream."""
    return [obj for obj in event_objects if obj["e"] in SCHEDULE_EVENT_TYPES]


@dataclass(slots=True)
class RecordedTrace:
    """Outcome of :func:`record_trace`: where it went and what it holds."""

    path: str
    meta: dict[str, Any]
    events: int
    run: Any  # the task's Run object (LeaderElectionRun / SiftingRun / ...)


@dataclass(slots=True)
class ReplayReport:
    """Result of verifying a recorded trace against its rerun."""

    path: str
    recorded_events: int
    replayed_events: int
    divergence_index: int | None
    recorded_line: str | None = None
    replayed_line: str | None = None
    run: Any = None

    @property
    def ok(self) -> bool:
        """True iff the rerun's event stream is byte-identical."""
        return (
            self.divergence_index is None
            and self.recorded_events == self.replayed_events
        )

    def describe(self) -> str:
        """Human-readable verdict for the CLI."""
        if self.ok:
            return (
                f"replay OK: {self.replayed_events:,} events match the "
                f"recording byte-for-byte"
            )
        if self.divergence_index is None:
            return (
                f"replay DIVERGED: event counts differ "
                f"(recorded {self.recorded_events:,}, "
                f"replayed {self.replayed_events:,})"
            )
        return (
            f"replay DIVERGED at event {self.divergence_index}:\n"
            f"  recorded: {self.recorded_line}\n"
            f"  replayed: {self.replayed_line}"
        )


def _run_task(
    meta: Mapping[str, Any],
    adversary: str | Adversary,
    sink,
    check: bool = True,
    telemetry=None,
):
    """Run the task a meta header describes, with the given adversary."""
    from ..harness.runners import (
        run_leader_election,
        run_renaming,
        run_sifting_phase,
    )

    task = meta["task"]
    common = dict(
        n=meta["n"],
        k=meta.get("k"),
        adversary=adversary,
        seed=meta["seed"],
        pattern=meta.get("pattern", "first"),
        sink=sink,
        telemetry=telemetry,
    )
    if task == "elect":
        return run_leader_election(algorithm=meta["algorithm"], check=check, **common)
    if task == "sift":
        return run_sifting_phase(kind=meta["algorithm"], check=check, **common)
    if task == "rename":
        return run_renaming(algorithm=meta["algorithm"], check=check, **common)
    raise ReplayError(
        f"unknown task {task!r}; traceable tasks: {TRACEABLE_TASKS}"
    )


_DEFAULT_ALGORITHMS = {"elect": "poison_pill", "sift": "heterogeneous", "rename": "paper"}


def record_trace(
    path: str,
    task: str = "elect",
    n: int = 16,
    k: int | None = None,
    algorithm: str | None = None,
    adversary: str = "random",
    seed: int = 0,
    pattern: str = "first",
    telemetry=None,
) -> RecordedTrace:
    """Run one task and record its full event stream to ``path``.

    ``adversary`` must be a registry name (not an instance) so the meta
    header alone suffices to describe the run.  ``telemetry`` is an
    optional second sink (e.g. :class:`~repro.obs.live.LiveTelemetry`)
    that sees the same stream; the caller owns closing it.
    """
    if task not in TRACEABLE_TASKS:
        raise ReplayError(f"unknown task {task!r}; traceable tasks: {TRACEABLE_TASKS}")
    meta = {
        "version": TRACE_FORMAT_VERSION,
        "task": task,
        "n": n,
        "k": k,
        "algorithm": algorithm or _DEFAULT_ALGORITHMS[task],
        "adversary": adversary,
        "seed": seed,
        "pattern": pattern,
    }
    sink = JsonlSink(path, meta=meta)
    try:
        run = _run_task(meta, adversary, sink, telemetry=telemetry)
    finally:
        events = sink.line_count - 1  # meta header excluded
        sink.close()
    return RecordedTrace(path=path, meta=meta, events=events, run=run)


def replay_trace(path: str, check: bool = True) -> ReplayReport:
    """Re-drive a recorded trace and compare event streams byte-for-byte."""
    meta, event_objects = read_trace(path)
    if meta is None:
        raise ReplayError(
            f"{path}: no meta header; only traces written by record_trace "
            f"(or `repro trace`) can be replayed"
        )
    recorded_lines = [
        line for line in iter_trace_lines(path) if not line.startswith('{"meta"')
    ]
    scripted = ScriptedAdversary(extract_schedule(event_objects))
    capture = ListSink()
    run = _run_task(meta, scripted, capture, check=check)
    replayed_lines = [event_line(event) for event in capture.events]
    divergence_index = None
    recorded_line = replayed_line = None
    for index, (recorded, replayed) in enumerate(zip(recorded_lines, replayed_lines)):
        if recorded != replayed:
            divergence_index = index
            recorded_line, replayed_line = recorded, replayed
            break
    return ReplayReport(
        path=path,
        recorded_events=len(recorded_lines),
        replayed_events=len(replayed_lines),
        divergence_index=divergence_index,
        recorded_line=recorded_line,
        replayed_line=replayed_line,
        run=run,
    )
