"""Streaming aggregation of event streams into per-round rollups.

:class:`TraceAggregator` is an :class:`~repro.obs.events.EventSink` that
consumes events one at a time — attach it live to a simulation, or feed
it a recorded JSONL trace — and maintains exactly the quantities the
paper's statements are about:

* per-round survivor curves for the Heterogeneous PoisonPill loop
  (Lemmas 3.6-3.7): entrants, survivors, deaths, and PreRound verdicts;
* per-processor ``communicate``-call counts and call durations in logical
  time (Claim 2.1's time metric);
* message-kind histograms, the raw material of the ``O(kn)`` message
  bound (Theorem A.5);
* coin-flip tallies and decision outcomes.

Aggregation is incremental (O(1) per event, O(rounds + pids + kinds)
memory), so it scales to arbitrarily long streams where storing the full
event list would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .events import Event, EventType, json_safe


@dataclass(slots=True)
class RoundStats:
    """Sifting statistics for one round of the leader-election loop."""

    round: int
    entered: int = 0
    survived: int = 0
    died: int = 0
    preround_wins: int = 0
    preround_losses: int = 0

    @property
    def completed(self) -> int:
        """Participants whose round-``r`` sifting phase returned."""
        return self.survived + self.died


@dataclass(slots=True)
class PhaseStats:
    """Entry/exit tallies for one sifting-phase namespace."""

    namespace: str
    kind: str = ""
    entered: int = 0
    survived: int = 0
    died: int = 0


class TraceAggregator:
    """Event sink computing rollups the benchmark tables can reuse."""

    def __init__(self) -> None:
        self.events_seen = 0
        self.last_clock = 0
        self.counts_by_type: dict[str, int] = {}
        self.message_histogram: dict[str, int] = {}
        self.comm_calls_by: dict[int, int] = {}
        self.comm_durations_by: dict[int, list[int]] = {}
        self.coin_flips: dict[int, int] = {}
        self.decisions: dict[int, Any] = {}
        self.decide_times: dict[int, int] = {}
        self.crashes: list[int] = []
        self._rounds: dict[int, RoundStats] = {}
        self._phases: dict[str, PhaseStats] = {}
        self._open_calls: dict[int, int] = {}  # call id -> issue clock

    # ------------------------------------------------------------------
    # Sink interface
    # ------------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Fold one event into the running rollups."""
        self.events_seen += 1
        self.last_clock = event.time
        counts = self.counts_by_type
        counts[event.etype] = counts.get(event.etype, 0) + 1
        handler = self._HANDLERS.get(event.etype)
        if handler is not None:
            handler(self, event)

    def close(self) -> None:
        """No-op: aggregation state stays readable after the run."""
        pass

    def feed(self, events: Iterable[Event]) -> "TraceAggregator":
        """Consume a whole event sequence; returns self for chaining."""
        for event in events:
            self.emit(event)
        return self

    @classmethod
    def from_file(cls, path: str) -> "TraceAggregator":
        """Aggregate a recorded JSONL trace."""
        from .jsonl import read_events

        return cls().feed(read_events(path))

    # ------------------------------------------------------------------
    # Per-type handlers
    # ------------------------------------------------------------------

    def _on_send(self, event: Event) -> None:
        kind = event.fields["kind"]
        histogram = self.message_histogram
        histogram[kind] = histogram.get(kind, 0) + 1

    def _on_comm_call(self, event: Event) -> None:
        pid = event.pid
        self.comm_calls_by[pid] = self.comm_calls_by.get(pid, 0) + 1
        self._open_calls[event.fields["call"]] = event.time

    def _on_comm_done(self, event: Event) -> None:
        issued = self._open_calls.pop(event.fields["call"], None)
        if issued is not None:
            self.comm_durations_by.setdefault(event.pid, []).append(
                event.time - issued
            )

    def _on_coin(self, event: Event) -> None:
        pid = event.pid
        self.coin_flips[pid] = self.coin_flips.get(pid, 0) + 1

    def _on_decide(self, event: Event) -> None:
        self.decisions[event.pid] = event.fields.get("result")
        self.decide_times[event.pid] = event.time

    def _on_crash(self, event: Event) -> None:
        self.crashes.append(event.pid)

    def _on_phase_enter(self, event: Event) -> None:
        stats = self._phase(event.fields["ns"], event.fields.get("kind", ""))
        stats.entered += 1

    def _on_phase_exit(self, event: Event) -> None:
        stats = self._phase(event.fields["ns"], event.fields.get("kind", ""))
        if event.fields.get("outcome") == "survive":
            stats.survived += 1
        else:
            stats.died += 1

    def _on_round_exit(self, event: Event) -> None:
        stats = self._round(event.fields["round"])
        if event.fields.get("outcome") == "survive":
            stats.survived += 1
        else:
            stats.died += 1

    def _on_preround(self, event: Event) -> None:
        stats = self._round(event.fields["round"])
        verdict = event.fields.get("verdict")
        stats.entered += 1
        if verdict == "win":
            stats.preround_wins += 1
        elif verdict == "lose":
            stats.preround_losses += 1

    _HANDLERS = {
        EventType.MSG_SEND: _on_send,
        EventType.COMM_CALL: _on_comm_call,
        EventType.COMM_DONE: _on_comm_done,
        EventType.COIN_FLIP: _on_coin,
        EventType.COIN_CHOICE: _on_coin,
        EventType.PROC_DECIDE: _on_decide,
        EventType.SCHED_CRASH: _on_crash,
        EventType.PHASE_ENTER: _on_phase_enter,
        EventType.PHASE_EXIT: _on_phase_exit,
        EventType.ROUND_EXIT: _on_round_exit,
        EventType.PREROUND: _on_preround,
    }

    def _phase(self, namespace: str, kind: str) -> PhaseStats:
        stats = self._phases.get(namespace)
        if stats is None:
            stats = self._phases[namespace] = PhaseStats(namespace=namespace, kind=kind)
        elif kind and not stats.kind:
            stats.kind = kind
        return stats

    def _round(self, round_index: int) -> RoundStats:
        stats = self._rounds.get(round_index)
        if stats is None:
            stats = self._rounds[round_index] = RoundStats(round=round_index)
        return stats

    # ------------------------------------------------------------------
    # Rollup views
    # ------------------------------------------------------------------

    def survivor_curve(self) -> list[RoundStats]:
        """Per-round sifting statistics, sorted by round number."""
        return [self._rounds[r] for r in sorted(self._rounds)]

    def survivors_by_round(self) -> dict[int, int]:
        """``{round: survivor count}`` for the leader-election loop."""
        return {r: stats.survived for r, stats in sorted(self._rounds.items())}

    def phase_stats(self) -> list[PhaseStats]:
        """Per-namespace sifting-phase statistics, sorted by namespace."""
        return [self._phases[ns] for ns in sorted(self._phases)]

    @property
    def max_comm_calls(self) -> int:
        """Max communicate calls by any processor (Claim 2.1's metric)."""
        return max(self.comm_calls_by.values(), default=0)

    @property
    def messages_total(self) -> int:
        """Total messages sent, summed over the kind histogram."""
        return sum(self.message_histogram.values())

    def comm_duration_summary(self, pid: int | None = None):
        """Percentile :class:`~repro.analysis.stats.Summary` of communicate
        call durations (in logical-clock ticks), for one processor or all.

        Returns ``None`` when no completed calls were observed.
        """
        from ..analysis.stats import summarize

        if pid is None:
            durations = [
                duration
                for per_pid in self.comm_durations_by.values()
                for duration in per_pid
            ]
        else:
            durations = list(self.comm_durations_by.get(pid, ()))
        return summarize(durations) if durations else None

    def comm_timeline(self, pid: int) -> list[int]:
        """Durations of ``pid``'s completed communicate calls, in order."""
        return list(self.comm_durations_by.get(pid, ()))

    def outcome_histogram(self) -> dict[str, int]:
        """Decision results tallied by their serialized form."""
        histogram: dict[str, int] = {}
        for result in self.decisions.values():
            key = str(json_safe(result))
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def report(self, title: str = "trace report") -> str:
        """Human-readable rollup: rounds, phases, messages, comm stats."""
        from ..harness.tables import Table

        sections: list[str] = []
        curve = self.survivor_curve()
        if curve:
            rounds = Table(
                f"{title}: per-round survivors",
                ["round", "entered", "survived", "died", "pre-won", "pre-lost"],
            )
            for stats in curve:
                rounds.add_row(
                    stats.round,
                    stats.entered,
                    stats.survived,
                    stats.died,
                    stats.preround_wins,
                    stats.preround_losses,
                )
            sections.append(rounds.render())
        phases = self.phase_stats()
        if phases:
            table = Table(
                f"{title}: sifting phases",
                ["namespace", "kind", "entered", "survived", "died"],
            )
            for stats in phases:
                table.add_row(
                    stats.namespace, stats.kind, stats.entered,
                    stats.survived, stats.died,
                )
            sections.append(table.render())
        if self.message_histogram:
            table = Table(f"{title}: messages by kind", ["kind", "count"])
            for kind in sorted(self.message_histogram):
                table.add_row(kind, self.message_histogram[kind])
            table.add_note(f"total {self.messages_total:,}")
            sections.append(table.render())
        if self.comm_calls_by:
            table = Table(
                f"{title}: communicate calls", ["metric", "value"],
            )
            table.add_row("max per processor", self.max_comm_calls)
            table.add_row("total", sum(self.comm_calls_by.values()))
            summary = self.comm_duration_summary()
            if summary is not None:
                table.add_row("mean duration (ticks)", summary.mean)
                table.add_row("p90 duration (ticks)", summary.p90)
            sections.append(table.render())
        outcomes = self.outcome_histogram()
        if outcomes:
            table = Table(f"{title}: decisions", ["outcome", "count"])
            for key in sorted(outcomes):
                table.add_row(key, outcomes[key])
            sections.append(table.render())
        summary_line = (
            f"{self.events_seen:,} events, final clock {self.last_clock:,}, "
            f"{len(self.crashes)} crashes"
        )
        return "\n\n".join([summary_line, *sections])


def aggregate_events(events: Iterable[Event]) -> TraceAggregator:
    """One-shot aggregation of an in-memory event sequence."""
    return TraceAggregator().feed(events)


def aggregate_mapping_events(objects: Iterable[Mapping[str, Any]]) -> TraceAggregator:
    """Aggregate parsed JSONL objects (``{"t":..,"e":..,"p":..,"f":..}``)."""
    from .jsonl import obj_to_event

    return TraceAggregator().feed(obj_to_event(dict(obj)) for obj in objects)
