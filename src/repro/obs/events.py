"""Structured event schema and sink protocol for the simulator.

Every observable moment of an execution — scheduling decisions, message
traffic, ``communicate`` quorum completions, coin flips, protocol phase
transitions, decisions — is describable as one :class:`Event`: a logical
timestamp, an event type, the acting processor, and a flat field mapping.
The simulator emits events only when a sink is attached; with no sink the
emission sites compile down to a single ``is None`` check, so the
disabled path costs nothing measurable.

The module is deliberately dependency-free (stdlib only): it sits below
:mod:`repro.sim`, which imports it from the runtime hot path.

Event types are grouped by prefix:

* ``sched.*`` — adversary scheduling actions (step, crash); together with
  ``msg.deliver`` these reconstruct the full schedule, which is what the
  deterministic replayer (:mod:`repro.obs.replay`) re-drives.
* ``msg.*`` — message send/deliver, with kind, endpoints, and call id.
* ``comm.*`` — ``communicate`` call issue and quorum completion, the
  paper's time metric (Claim 2.1).
* ``coin.*`` — coin flips and uniform choices, with label and outcome.
* ``proc.*`` / ``reg.put`` — lifecycle (start/decide) and local register
  writes.
* ``phase.*`` / ``round.*`` / ``preround`` / ``doorway`` / ``rename.*`` —
  protocol-level annotations emitted by the algorithms themselves
  (PoisonPill and Heterogeneous PoisonPill phase entry/exit with
  survivor outcomes, PreRound verdicts, doorway transitions, renaming
  picks), the quantities Lemmas 3.6-3.7 and Theorem A.5 reason about.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from enum import Enum
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable


class EventType:
    """String constants naming every event the simulator can emit.

    Plain strings (not an enum) so emission sites pay no attribute
    resolution beyond a module-level constant load, and so JSONL traces
    are greppable without a decoder ring.
    """

    SCHED_STEP = "sched.step"
    SCHED_CRASH = "sched.crash"
    MSG_SEND = "msg.send"
    MSG_DELIVER = "msg.deliver"
    COMM_CALL = "comm.call"
    COMM_DONE = "comm.done"
    COIN_FLIP = "coin.flip"
    COIN_CHOICE = "coin.choice"
    REG_PUT = "reg.put"
    PROC_START = "proc.start"
    PROC_DECIDE = "proc.decide"
    PHASE_ENTER = "phase.enter"
    PHASE_EXIT = "phase.exit"
    ROUND_EXIT = "round.exit"
    PREROUND = "preround"
    DOORWAY = "doorway"
    RENAME_PICK = "rename.pick"
    RENAME_CLAIM = "rename.claim"


#: Event types that, in order, fully determine the adversary's schedule.
SCHEDULE_EVENT_TYPES = frozenset(
    {EventType.SCHED_STEP, EventType.SCHED_CRASH, EventType.MSG_DELIVER}
)


@dataclasses.dataclass(frozen=True, slots=True)
class Event:
    """One structured observation, stamped with the global logical clock.

    ``fields`` is the serializable payload (see :func:`json_safe`);
    ``raw`` optionally carries a live object reference (the delivered
    :class:`~repro.sim.messages.Message`, the yielded request, a register
    write tuple) for in-process consumers such as the legacy
    :class:`~repro.sim.trace.Trace` adapter.  ``raw`` never reaches disk
    and is excluded from equality-of-streams comparisons.
    """

    time: int
    etype: str
    pid: int
    fields: Mapping[str, Any]
    raw: Any = None


def json_safe(value: Any) -> Any:
    """Convert ``value`` into a deterministic JSON-serializable form.

    Enums map to their value (or name when the value is not primitive),
    sets to sorted lists, NamedTuples and dataclasses to field dicts.
    Anything unrecognized falls back to ``repr`` — lossy but stable for
    the deterministic objects the simulator produces.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        inner = value.value
        return inner if isinstance(inner, (bool, int, float, str)) else value.name
    if isinstance(value, tuple) and hasattr(value, "_fields"):  # NamedTuple
        return {name: json_safe(item) for name, item in zip(value._fields, value)}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    if isinstance(value, Mapping):
        return {str(json_safe(key)): json_safe(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: json_safe(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    return repr(value)


@runtime_checkable
class EventSink(Protocol):
    """Anything that can consume the simulator's event stream."""

    def emit(self, event: Event) -> None:
        """Consume one event; called synchronously from the runtime."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Flush and release resources; called when the run is finished."""
        ...  # pragma: no cover - protocol stub


class ListSink:
    """Unbounded in-memory sink; the workhorse for tests and replay."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def close(self) -> None:
        """No-op: the collected events stay readable."""
        pass

    def of_type(self, etype: str) -> list[Event]:
        """All captured events of one type, in order."""
        return [event for event in self.events if event.etype == etype]


class RingBufferSink:
    """Bounded in-memory sink keeping only the most recent events.

    Useful as an always-on flight recorder: attach it to long benchmark
    runs and inspect the tail after an anomaly without paying unbounded
    memory growth.  Evictions are counted in :attr:`dropped` so bounded
    telemetry loss is visible rather than silent; live snapshot streams
    surface the count as the ``obs.ring_dropped`` counter.
    """

    __slots__ = ("_buffer", "dropped")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be at least 1")
        self._buffer: deque[Event] = deque(maxlen=capacity)
        #: Number of events evicted (lost) since creation.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._buffer.maxlen or 0

    def emit(self, event: Event) -> None:
        """Append the event, evicting (and counting) the oldest past capacity."""
        buffer = self._buffer
        if len(buffer) == buffer.maxlen:
            self.dropped += 1
        buffer.append(event)

    def close(self) -> None:
        """No-op: the retained window stays readable."""
        pass

    @property
    def events(self) -> list[Event]:
        """The retained tail of the stream, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class MultiSink:
    """Fan one event stream out to several sinks."""

    __slots__ = ("sinks",)

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks: tuple[EventSink, ...] = sinks

    def emit(self, event: Event) -> None:
        """Forward the event to every child sink."""
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every child sink."""
        for sink in self.sinks:
            sink.close()


class CallbackSink:
    """Adapt a plain callable into an :class:`EventSink`."""

    __slots__ = ("_callback",)

    def __init__(self, callback) -> None:
        self._callback = callback

    def emit(self, event: Event) -> None:
        """Invoke the callback with the event."""
        self._callback(event)

    def close(self) -> None:
        """No-op: callbacks hold no resources."""
        pass


def combine_sinks(sinks: Iterable[EventSink]) -> EventSink | None:
    """Collapse a sink collection: ``None`` when empty, bare sink when one."""
    collected = [sink for sink in sinks if sink is not None]
    if not collected:
        return None
    if len(collected) == 1:
        return collected[0]
    return MultiSink(*collected)
