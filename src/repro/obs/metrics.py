"""Deterministic metrics registry: counters, gauges, log-bucketed histograms.

The paper's headline claims are quantitative — time in ``communicate``
calls, messages in total and per kind — yet until now the repo could
only report them *after* a run.  This module is the live counterpart:
a :class:`MetricsRegistry` of named instruments that can be sampled
while an execution is still in flight, serialized as JSONL snapshots
(:mod:`repro.obs.live`), and rendered as a Prometheus-style text
exposition.

Design constraints, in order:

* **Determinism.**  Simulator-side instruments measure logical
  quantities only (event counts, logical-clock durations, payload
  cells), so for a fixed seed the registry — and every snapshot of it —
  is byte-identical across runs and machines.  Wall-clock belongs to
  the net backend and to :mod:`repro.obs.profile`, not here.
* **Zero cost when off.**  Nothing in the simulator touches this module
  unless a sink is attached; the runtime's emission sites keep their
  single ``is None`` guard.  :class:`MetricsSink` derives every
  simulator instrument *from the event stream*, so attaching telemetry
  cannot perturb an execution (the byte-identical trace/fingerprint
  guarantee of the bench baselines).
* **Mergeability.**  Registries fold together (sum counters, combine
  histogram buckets) so per-node or per-worker telemetry aggregates
  into one cluster view — the same discipline as
  :meth:`repro.sim.trace.Metrics.merge`.

Histograms are log-bucketed: a value lands in the power-of-two bucket
``(2**(e-1), 2**e]`` given by ``math.frexp``, so the bucket count is
O(log range) regardless of sample count, and quantile estimation
(p50/p90/p99) interpolates linearly inside the winning bucket, clamped
by the exact observed min/max.  Estimation error is therefore bounded
by one octave — plenty for latency-shaped distributions — while
recording stays O(1) with no stored samples.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from .events import Event, EventType

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "merge_snapshots",
    "snapshot_to_prometheus",
]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A named value that can move both ways (queue depth, current round)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        self.value += delta


def bucket_exponent(value: float) -> int:
    """The log-bucket index of ``value``: smallest ``e`` with ``value <= 2**e``.

    Non-positive values collapse into a single underflow bucket (the
    quantities recorded here — durations, counts, sizes — are never
    negative, and zero is common enough to deserve its own bucket).
    """
    if value <= 0:
        return -(2**30)  # the underflow bucket, below every real exponent
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    # frexp puts mantissa in [0.5, 1); exact powers of two have mantissa
    # 0.5, meaning value == 2**(exponent-1) and belongs one bucket down.
    if mantissa == 0.5:
        return exponent - 1
    return exponent


#: Exponent of the underflow bucket (values <= 0).
UNDERFLOW = bucket_exponent(0)


class Histogram:
    """Log-bucketed histogram with O(1) recording and quantile estimates.

    Stores per-octave counts plus exact ``count``/``total``/``min``/
    ``max``.  ``quantile(q)`` walks the cumulative bucket counts to the
    target rank and interpolates linearly inside the winning bucket —
    deterministic, bounded-error, and independent of sample order.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        exponent = bucket_exponent(value)
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Returns 0.0 for an empty histogram.  The estimate interpolates
        linearly within the bucket holding the target rank and is
        clamped to the exact observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return 0.0
        assert self.minimum is not None and self.maximum is not None
        target = q * (self.count - 1) + 1  # 1-based fractional rank
        cumulative = 0
        for exponent in sorted(self.buckets):
            in_bucket = self.buckets[exponent]
            if cumulative + in_bucket >= target:
                if exponent == UNDERFLOW:
                    return float(min(0.0, self.maximum))
                low, high = 2.0 ** (exponent - 1), 2.0**exponent
                fraction = (target - cumulative) / in_bucket
                estimate = low + fraction * (high - low)
                return float(min(max(estimate, self.minimum), self.maximum))
            cumulative += in_bucket
        return float(self.maximum)

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.quantile(0.99)


def _round6(value: float) -> float:
    """Stable snapshot rounding: kills float formatting jitter, keeps µs."""
    return round(float(value), 6)


class MetricsRegistry:
    """A named collection of instruments with deterministic snapshots.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name, so
    instrumentation sites stay one-liners.  :meth:`snapshot` produces a
    plain JSON-safe dict with sorted keys — the unit of the live
    snapshot stream — and :meth:`merge` / :func:`merge_snapshots` fold
    many registries (or their snapshots) into a cluster-wide view.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """The registry's current state as a JSON-safe, sorted dict."""
        return {
            "counters": {
                name: self.counters[name].value for name in sorted(self.counters)
            },
            "gauges": {
                name: _round6(self.gauges[name].value) for name in sorted(self.gauges)
            },
            "histograms": {
                name: self._histogram_obj(self.histograms[name])
                for name in sorted(self.histograms)
            },
        }

    @staticmethod
    def _histogram_obj(hist: Histogram) -> dict[str, Any]:
        return {
            "count": hist.count,
            "sum": _round6(hist.total),
            "min": _round6(hist.minimum) if hist.minimum is not None else None,
            "max": _round6(hist.maximum) if hist.maximum is not None else None,
            "mean": _round6(hist.mean),
            "p50": _round6(hist.p50),
            "p90": _round6(hist.p90),
            "p99": _round6(hist.p99),
            # Bucket keys as strings so the JSON form round-trips exactly.
            "buckets": {
                str(exponent): hist.buckets[exponent]
                for exponent in sorted(hist.buckets)
            },
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one; returns self.

        Counters and histogram buckets add; gauges take the *other*
        value (last writer wins — gauges are point-in-time samples, and
        the merge order is caller-controlled).
        """
        for name, counter in other.counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other.gauges.items():
            self.gauge(name).value = gauge.value
        for name, theirs in other.histograms.items():
            mine = self.histogram(name)
            mine.count += theirs.count
            mine.total += theirs.total
            if theirs.minimum is not None and (
                mine.minimum is None or theirs.minimum < mine.minimum
            ):
                mine.minimum = theirs.minimum
            if theirs.maximum is not None and (
                mine.maximum is None or theirs.maximum > mine.maximum
            ):
                mine.maximum = theirs.maximum
            for exponent, count in theirs.buckets.items():
                mine.buckets[exponent] = mine.buckets.get(exponent, 0) + count
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        Histogram percentiles are re-derived from the shipped buckets,
        which is what lets per-node snapshots merge into one cluster
        registry without access to the original samples.
        """
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).value = int(value)
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, obj in snapshot.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = int(obj.get("count", 0))
            hist.total = obj.get("sum", 0)
            hist.minimum = obj.get("min")
            hist.maximum = obj.get("max")
            hist.buckets = {
                int(exponent): int(count)
                for exponent, count in obj.get("buckets", {}).items()
            }
        return registry


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold several snapshot dicts into one (per-node -> cluster view)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(MetricsRegistry.from_snapshot(snapshot))
    return merged.snapshot()


def _prom_name(prefix: str, name: str) -> str:
    cleaned = name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{cleaned}" if prefix else cleaned


def snapshot_to_prometheus(
    snapshot: Mapping[str, Any], prefix: str = "repro"
) -> str:
    """Render one snapshot as Prometheus text exposition format.

    Counters become ``<prefix>_<name>`` counter samples, gauges become
    gauge samples, and histograms expand to the conventional
    ``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple with the
    log-bucket upper bounds as the ``le`` labels.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, obj in snapshot.get("histograms", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for exponent in sorted(int(e) for e in obj.get("buckets", {})):
            cumulative += obj["buckets"][str(exponent)]
            upper = 0.0 if exponent == UNDERFLOW else 2.0**exponent
            lines.append(f'{metric}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {obj.get("count", 0)}')
        lines.append(f"{metric}_sum {obj.get('sum', 0)}")
        lines.append(f"{metric}_count {obj.get('count', 0)}")
    return "\n".join(lines) + "\n"


class MetricsSink:
    """Derive the simulator's live instruments from its event stream.

    An :class:`~repro.obs.events.EventSink` that folds every structured
    event into a :class:`MetricsRegistry`.  Because it consumes the
    *already-emitted* stream, attaching it cannot change an execution:
    the byte-identical trace and bench-fingerprint guarantees hold with
    telemetry on or off, and with no sink attached the runtime still
    pays only its ``is None`` guard.

    Instruments maintained (all logical-time, hence deterministic):

    * ``events.<etype>`` counters for every event type seen;
    * ``messages.<kind>`` counters plus the ``payload.cells`` histogram
      (per-send logical payload size) from ``msg.send``;
    * ``comm.calls`` / ``comm.done`` counters and the
      ``comm.duration_ticks`` histogram of call-issue-to-quorum logical
      durations (Claim 2.1's time metric, now with percentiles);
    * ``decisions`` / ``crashes`` counters, ``round.survived`` /
      ``round.died`` counters, and the ``sim.round`` gauge tracking the
      deepest sifting round entered so far;
    * the ``sim.clock`` gauge mirroring the logical clock.
    """

    __slots__ = ("registry", "_open_calls")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._open_calls: dict[int, int] = {}  # call id -> issue clock

    def emit(self, event: Event) -> None:
        """Fold one event into the registry."""
        registry = self.registry
        registry.counter(f"events.{event.etype}").inc()
        registry.gauge("sim.clock").set(event.time)
        etype = event.etype
        if etype == EventType.MSG_SEND:
            registry.counter(f"messages.{event.fields['kind']}").inc()
            registry.histogram("payload.cells").observe(
                event.fields.get("cells", 0)
            )
        elif etype == EventType.COMM_CALL:
            registry.counter("comm.calls").inc()
            self._open_calls[event.fields["call"]] = event.time
        elif etype == EventType.COMM_DONE:
            registry.counter("comm.done").inc()
            issued = self._open_calls.pop(event.fields["call"], None)
            if issued is not None:
                registry.histogram("comm.duration_ticks").observe(
                    event.time - issued
                )
        elif etype == EventType.PROC_DECIDE:
            registry.counter("decisions").inc()
        elif etype == EventType.SCHED_CRASH:
            registry.counter("crashes").inc()
        elif etype == EventType.ROUND_EXIT:
            round_index = event.fields.get("round", 0)
            gauge = registry.gauge("sim.round")
            if round_index > gauge.value:
                gauge.set(round_index)
            outcome = event.fields.get("outcome")
            outcome_name = getattr(outcome, "value", outcome)
            if outcome_name == "survive":
                registry.counter("round.survived").inc()
            else:
                registry.counter("round.died").inc()

    def close(self) -> None:
        """No-op: the registry stays readable after the run."""
        pass
