"""Live telemetry: periodic metrics snapshots streamed as JSONL.

:mod:`repro.obs.metrics` gives an execution live instruments; this
module gives them a heartbeat.  A :class:`LiveTelemetry` sink folds the
event stream into a registry (via :class:`~repro.obs.metrics.MetricsSink`)
and emits a *snapshot line* at a chosen cadence — per sifting round in
the simulator (triggered by ``round.exit`` reaching a new round), or
every N events as a fallback for round-free workloads.  The net driver
uses the same snapshot schema for its per-interval cluster view.

The stream format mirrors the trace discipline of
:mod:`repro.obs.jsonl`: one canonical JSON object per line (sorted keys,
no whitespace), an optional ``{"meta": ...}`` header first, and a
``{"end": ...}`` marker line when the producer finishes — which is how
``repro watch`` knows a tailed run has completed rather than stalled.
Each snapshot line is ``{"seq", "clock", "metrics"}``; simulator-side
snapshots contain only logical-clock quantities, so for a fixed seed the
whole stream is byte-identical across runs.

Unlike :class:`~repro.obs.jsonl.JsonlSink` (which buffers until close),
:class:`SnapshotWriter` flushes every line as it is written: the entire
point of the stream is that another process can tail it mid-run.
"""

from __future__ import annotations

import io
import json
import os
import time as _time
from typing import Any, Iterator, Mapping

from .events import Event, EventType, RingBufferSink
from .metrics import MetricsRegistry, MetricsSink, snapshot_to_prometheus

__all__ = [
    "LiveTelemetry",
    "SnapshotWriter",
    "follow_snapshots",
    "read_snapshots",
    "render_snapshot",
    "snapshot_to_prometheus",
]

#: Bumped when the snapshot line schema changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1


def _canonical(obj: Mapping[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class SnapshotWriter:
    """Append canonical snapshot lines to a file, flushing per line.

    Accepts a path (opened and owned) or any text file object.  Unlike
    the trace sink this writer never buffers: each line is written and
    flushed immediately so ``repro watch`` in another process sees the
    stream grow in real time.
    """

    __slots__ = ("_fp", "_owns", "path", "seq")

    def __init__(
        self,
        target: str | io.TextIOBase,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if isinstance(target, (str, bytes)):
            self.path: str | None = str(target)
            self._fp = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self.path = None
            self._fp = target
            self._owns = False
        self.seq = 0
        header = dict(meta or {})
        header.setdefault("snapshot_format", SNAPSHOT_FORMAT_VERSION)
        self._write_line({"meta": header})

    def _write_line(self, obj: Mapping[str, Any]) -> None:
        self._fp.write(_canonical(obj))
        self._fp.write("\n")
        self._fp.flush()

    def write_snapshot(self, clock: int, metrics: Mapping[str, Any]) -> None:
        """Append one snapshot line stamped with ``clock``."""
        self.seq += 1
        self._write_line({"seq": self.seq, "clock": clock, "metrics": metrics})

    def write_end(self, clock: int) -> None:
        """Append the end marker: the producer finished cleanly."""
        self._write_line({"end": {"clock": clock, "snapshots": self.seq}})

    def close(self) -> None:
        """Close the file if this writer opened it."""
        self._fp.flush()
        if self._owns:
            self._fp.close()


class LiveTelemetry:
    """EventSink: fold events into metrics and stream periodic snapshots.

    Wraps a :class:`~repro.obs.metrics.MetricsSink` and emits a snapshot
    whenever a ``round.exit`` event reaches a round no snapshot has
    covered yet (the simulator's natural cadence), or after
    ``every_events`` events for workloads without rounds.  A final
    snapshot plus the end marker are written on :meth:`close`, so even a
    zero-round run produces a complete stream.

    Pass ``ring`` to surface a co-attached
    :class:`~repro.obs.events.RingBufferSink`'s eviction count as the
    ``obs.ring_dropped`` counter in every snapshot — bounded-buffer
    telemetry loss stays visible instead of silent.

    Snapshot content derives entirely from the event stream and the
    logical clock, so attaching this sink never perturbs an execution
    and its output is deterministic for a fixed seed.
    """

    __slots__ = (
        "_metrics",
        "_writer",
        "_ring",
        "_every",
        "_pending",
        "_last_round",
        "_clock",
        "_closed",
    )

    def __init__(
        self,
        writer: SnapshotWriter | str | io.TextIOBase,
        every_events: int | None = None,
        ring: RingBufferSink | None = None,
        registry: MetricsRegistry | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if every_events is not None and every_events < 1:
            raise ValueError("every_events must be at least 1")
        if isinstance(writer, SnapshotWriter):
            self._writer = writer
        else:
            self._writer = SnapshotWriter(writer, meta=meta)
        self._metrics = MetricsSink(registry)
        self._ring = ring
        self._every = every_events
        self._pending = 0  # events since the last snapshot
        self._last_round = -1
        self._clock = 0
        self._closed = False

    @property
    def registry(self) -> MetricsRegistry:
        """The live registry this sink folds events into."""
        return self._metrics.registry

    @property
    def writer(self) -> SnapshotWriter:
        """The underlying snapshot writer (for cadence/seq inspection)."""
        return self._writer

    def _snapshot(self) -> None:
        registry = self._metrics.registry
        if self._ring is not None:
            registry.counter("obs.ring_dropped").value = self._ring.dropped
        self._writer.write_snapshot(self._clock, registry.snapshot())
        self._pending = 0

    def emit(self, event: Event) -> None:
        """Fold one event; write a snapshot when the cadence says so."""
        self._metrics.emit(event)
        self._clock = event.time
        self._pending += 1
        if (
            event.etype == EventType.ROUND_EXIT
            and event.fields.get("round", 0) > self._last_round
        ):
            self._last_round = event.fields.get("round", 0)
            self._snapshot()
        elif self._every is not None and self._pending >= self._every:
            self._snapshot()

    def close(self) -> None:
        """Write the final snapshot and the end marker, then close."""
        if self._closed:
            return
        self._closed = True
        self._snapshot()
        self._writer.write_end(self._clock)
        self._writer.close()


def _parse_line(line: str) -> dict[str, Any]:
    return json.loads(line)


def read_snapshots(
    path: str,
) -> tuple[dict[str, Any] | None, list[dict[str, Any]], dict[str, Any] | None]:
    """Load a snapshot stream: ``(meta, snapshots, end)``.

    ``meta`` / ``end`` are ``None`` when the stream lacks the header or
    was cut off before the end marker.  Raises :class:`ValueError` on a
    malformed (truncated mid-line) stream.
    """
    meta: dict[str, Any] | None = None
    end: dict[str, Any] | None = None
    snapshots: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for index, line in enumerate(fp):
            line = line.rstrip("\n")
            if not line:
                continue
            obj = _parse_line(line)
            if index == 0 and "meta" in obj:
                meta = obj["meta"]
            elif "end" in obj:
                end = obj["end"]
            else:
                if "metrics" not in obj:
                    raise ValueError(
                        f"snapshot stream {path!r}: line {index + 1} is not "
                        "a snapshot (missing 'metrics')"
                    )
                snapshots.append(obj)
    return meta, snapshots, end


def follow_snapshots(
    path: str,
    poll_interval: float = 0.2,
    timeout: float | None = 30.0,
) -> Iterator[dict[str, Any]]:
    """Tail a snapshot stream, yielding lines as the producer writes them.

    Yields every parsed line object (meta, snapshots, end) in order; the
    iterator ends after the ``{"end": ...}`` marker, or raises
    :class:`TimeoutError` if the file stops growing for ``timeout``
    seconds without one.  Partial trailing lines (the producer mid-write)
    are left in place and retried on the next poll.
    """
    deadline = None if timeout is None else _time.monotonic() + timeout
    position = 0
    buffer = ""
    while True:
        grew = False
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fp:
                fp.seek(position)
                chunk = fp.read()
                position = fp.tell()
            if chunk:
                grew = True
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line:
                        continue
                    obj = _parse_line(line)
                    yield obj
                    if "end" in obj:
                        return
        if grew:
            deadline = None if timeout is None else _time.monotonic() + timeout
        elif deadline is not None and _time.monotonic() > deadline:
            raise TimeoutError(
                f"snapshot stream {path!r} stopped growing before its end marker"
            )
        _time.sleep(poll_interval)


def render_snapshot(
    obj: Mapping[str, Any], meta: Mapping[str, Any] | None = None
) -> str:
    """One snapshot line rendered as a human-readable summary block.

    ``meta`` (the stream header, if the caller has it) adds a context
    line naming the run the snapshot came from.
    """
    metrics = obj.get("metrics", {})
    lines = []
    if meta:
        context = "  ".join(
            f"{key}={meta[key]}"
            for key in ("backend", "task", "algorithm", "n", "k", "seed")
            if meta.get(key) is not None
        )
        if context:
            lines.append(context)
    lines.append(f"snapshot #{obj.get('seq', '?')}  clock={obj.get('clock', '?')}")
    counters = metrics.get("counters", {})
    if counters:
        rendered = "  ".join(
            f"{name}={counters[name]}" for name in sorted(counters)
        )
        lines.append(f"  counters:   {rendered}")
    gauges = metrics.get("gauges", {})
    if gauges:
        rendered = "  ".join(f"{name}={gauges[name]}" for name in sorted(gauges))
        lines.append(f"  gauges:     {rendered}")
    for name in sorted(metrics.get("histograms", {})):
        hist = metrics["histograms"][name]
        lines.append(
            f"  {name}: n={hist.get('count', 0)} mean={hist.get('mean', 0)} "
            f"p50={hist.get('p50', 0)} p90={hist.get('p90', 0)} "
            f"p99={hist.get('p99', 0)} max={hist.get('max', 0)}"
        )
    return "\n".join(lines)
