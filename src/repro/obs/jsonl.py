"""JSONL export and import of event streams.

One JSON object per line.  The first line of a recorded trace is a meta
header (``{"meta": {...}}``) carrying everything the replayer needs to
reconstruct the run: task, system size, participants spec, seed, and the
adversary's registry name.  Every following line is one event, serialized
with sorted keys and no whitespace so that identical executions produce
byte-identical files — the property the replay verifier asserts.
"""

from __future__ import annotations

import io
import json
from typing import Any, Iterable, Iterator

from .events import Event

#: Bumped when the serialized schema changes incompatibly.
TRACE_FORMAT_VERSION = 1


def event_to_obj(event: Event) -> dict[str, Any]:
    """The JSON object form of one event (``raw`` is dropped)."""
    from .events import json_safe

    return {
        "t": event.time,
        "e": event.etype,
        "p": event.pid,
        "f": {key: json_safe(value) for key, value in event.fields.items()},
    }


def event_line(event: Event) -> str:
    """Canonical single-line serialization of one event."""
    return json.dumps(event_to_obj(event), sort_keys=True, separators=(",", ":"))


def obj_to_event(obj: dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from its parsed JSON object form."""
    return Event(time=obj["t"], etype=obj["e"], pid=obj["p"], fields=obj["f"])


class JsonlSink:
    """Stream events to a JSONL file (or any text file object).

    Writes are line-buffered in memory and flushed on :meth:`close`; a
    typical leader-election trace is a few thousand lines, so buffering
    the whole run costs little and keeps the hot path free of syscalls.
    """

    __slots__ = ("_fp", "_owns", "_lines", "path")

    def __init__(self, target: str | io.TextIOBase, meta: dict[str, Any] | None = None):
        if isinstance(target, (str, bytes)):
            self.path: str | None = str(target)
            self._fp = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self.path = None
            self._fp = target
            self._owns = False
        self._lines: list[str] = []
        if meta is not None:
            self._lines.append(
                json.dumps({"meta": meta}, sort_keys=True, separators=(",", ":"))
            )

    def emit(self, event: Event) -> None:
        """Buffer the event's canonical JSONL line."""
        self._lines.append(event_line(event))

    @property
    def line_count(self) -> int:
        """Lines buffered so far, the meta header included."""
        return len(self._lines)

    def close(self) -> None:
        """Flush buffered lines and close the file if this sink opened it."""
        if self._lines:
            self._fp.write("\n".join(self._lines))
            self._fp.write("\n")
            self._lines = []
        self._fp.flush()
        if self._owns:
            self._fp.close()


def iter_trace_lines(path: str) -> Iterator[str]:
    """Yield the raw lines of a trace file, without trailing newlines."""
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.rstrip("\n")
            if line:
                yield line


def read_trace(path: str) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
    """Load a trace file: ``(meta, event_objects)``.

    ``meta`` is ``None`` for headerless streams (e.g. a bare event dump).
    """
    meta: dict[str, Any] | None = None
    events: list[dict[str, Any]] = []
    for index, line in enumerate(iter_trace_lines(path)):
        obj = json.loads(line)
        if index == 0 and "meta" in obj:
            meta = obj["meta"]
        else:
            events.append(obj)
    return meta, events


def read_events(path: str) -> list[Event]:
    """Load a trace file's events as :class:`Event` objects."""
    _, objects = read_trace(path)
    return [obj_to_event(obj) for obj in objects]


def write_events(path: str, events: Iterable[Event], meta: dict[str, Any] | None = None) -> int:
    """Serialize ``events`` to ``path``; returns the number of lines written."""
    sink = JsonlSink(path, meta=meta)
    for event in events:
        sink.emit(event)
    count = sink.line_count
    sink.close()
    return count
