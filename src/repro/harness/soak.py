"""Time-boxed chaos soak: rolling weather over the live election stack.

``repro soak`` is the harness that answers "does the service stay safe
for minutes, not milliseconds?".  It runs the real
:class:`~repro.net.service.ElectionService` under a *rolling* seeded
fault plan — a :class:`~repro.net.chaos.PhasedChaosPlan` from the
chaos-profile registry cycles drop / delay / duplicate / partition /
heal phases for the whole soak — while a fleet of contender sessions
acquires, holds, and releases keyed leases, deliberately killing their
own sessions mid-hold and then restart-and-recovering through fresh
connections.  Midway through, the service process itself is restarted:
its fencing namespace is exported with
:meth:`~repro.net.service.ElectionService.export_namespace` and fed to
a fresh instance so post-restart epochs stay fenced against tokens
issued before the restart.  After partitions heal, chaos-dropped reply
frames are replayed DLQ-style via
:meth:`~repro.net.service.ElectionService.replay_dlq`.

Safety is gated **mid-stream**, not post-hoc: every grant the service
issues flows through a :class:`LeaseMonitor` attached to the service's
``grant_hook``, and optional ``repro net`` election episodes run under
the phase plan current at launch with their traces streamed through
:func:`repro.check.streaming.audit_trace`.  The first violation aborts
the soak immediately and writes a **replayable incident artifact** —
seed, profile, full phase plan, the complete grant log with a canonical
digest, the violation, and a metrics snapshot —
which :func:`replay_incident` re-verifies deterministically without any
network at all.

The negative control: ``inject_violation_at_s`` fabricates a
stale-epoch double grant and pushes it down the same hook path a real
grant takes, proving the monitor catches exactly the class of bug the
epoch fence exists to prevent (CI runs this on every push).

Paper mapping: the soak is Lemma A.2 ("at most one winner") stress-tested
per *name* over wall-clock time — each key is an independent repeated
election whose winners must be totally ordered by fencing epoch, under
an adversary (the chaos plan) that the paper only gets to pick once per
execution but here gets to re-pick every phase.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

from ..net.chaos import CHAOS_PROFILES, PhasedChaosPlan, make_phased_plan
from ..net.client import ServiceClient
from ..net.service import ElectionService, GrantRecord, ServiceRun
from ..obs.metrics import MetricsRegistry, merge_snapshots
from ..sim.rng import derive_seed

__all__ = [
    "IncidentReplay",
    "LeaseMonitor",
    "SOAK_FORMAT_VERSION",
    "SoakError",
    "SoakReport",
    "SoakViolation",
    "load_incident",
    "replay_incident",
    "run_soak",
]

#: Version stamp written into incident artifacts so future readers can
#: reject shapes they do not understand.
SOAK_FORMAT_VERSION = 1

#: The grant-log fields serialized into incident artifacts, in the order
#: :func:`_grants_digest` canonicalizes them.
_GRANT_FIELDS = (
    "key", "epoch", "holder", "session", "granted_ns", "ended_ns", "reason",
)


class SoakError(RuntimeError):
    """A soak failed to run: bad configuration or infrastructure fault."""


@dataclass(slots=True)
class SoakViolation:
    """One safety violation caught by the soak, with where it came from.

    ``source`` is ``"monitor"`` (the mid-stream grant gate),
    ``"episode"`` (a streamed ``repro net`` trace), or ``"post-hoc"``
    (the end-of-run :func:`~repro.check.invariants.evaluate_service_run`
    sweep — a monitor gap if it ever fires alone).  ``grant_index`` is
    the zero-based position in the grant log for monitor violations.
    """

    invariant: str
    message: str
    grant_index: int | None = None
    source: str = "monitor"

    def to_obj(self) -> dict[str, Any]:
        """JSON-safe form for incident artifacts."""
        return {
            "invariant": self.invariant, "message": self.message,
            "grant_index": self.grant_index, "source": self.source,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "SoakViolation":
        """Rebuild a violation from its :meth:`to_obj` form."""
        return cls(
            invariant=str(obj["invariant"]), message=str(obj["message"]),
            grant_index=obj.get("grant_index"),
            source=str(obj.get("source", "monitor")),
        )


class LeaseMonitor:
    """The mid-stream grant gate: per-key epochs must strictly increase.

    Attached to the service's ``grant_hook``, it sees every
    :class:`~repro.net.service.GrantRecord` the moment it is issued and
    fails fast on the first stale-epoch double grant — the streaming
    face of ``lease_epoch_monotonic`` from :mod:`repro.check.invariants`.
    Pure function of the grant sequence, so :func:`replay_incident` can
    re-run it over a recorded log and reach the same verdict.
    """

    def __init__(self) -> None:
        #: Per-key fencing floor: the highest epoch granted so far.
        self.floors: dict[str, int] = {}
        #: Grants observed (also the index of the *next* grant).
        self.grants = 0
        #: The first violation, or ``None`` while the stream is clean.
        self.violation: SoakViolation | None = None

    def observe(self, record: GrantRecord) -> SoakViolation | None:
        """Feed one grant; returns the violation it causes, if any."""
        index = self.grants
        self.grants += 1
        floor = self.floors.get(record.key)
        if floor is not None and record.epoch <= floor:
            violation = SoakViolation(
                invariant="lease_epoch_monotonic",
                message=(
                    f"grant #{index}: key {record.key!r} granted to "
                    f"{record.holder!r} at epoch {record.epoch} but the "
                    f"fencing floor is {floor} — stale-epoch double grant"
                ),
                grant_index=index,
            )
            if self.violation is None:
                self.violation = violation
            return violation
        self.floors[record.key] = record.epoch
        return None


@dataclass(slots=True)
class SoakReport:
    """Everything one soak produced, shaped for the CLI and for tests."""

    profile: str
    seed: int
    n: int
    keys: int
    contenders: int
    duration_s: float
    elapsed_s: float
    grants: int
    kills: int
    recoveries: int
    service_restarts: int
    dlq_replayed: int
    episodes: int
    phases_seen: tuple[str, ...]
    snapshot: dict[str, Any]
    violation: SoakViolation | None = None
    incident_path: str | None = None
    injected: bool = False

    @property
    def ok(self) -> bool:
        """``True`` when the whole soak stayed violation-free."""
        return self.violation is None

    def describe(self) -> str:
        """Multi-line human summary, the ``repro soak`` output."""
        lines = [
            f"soak:          profile={self.profile} seed={self.seed} "
            f"n={self.n} keys={self.keys} contenders={self.contenders}",
            f"duration:      {self.elapsed_s:.1f}s elapsed of "
            f"{self.duration_s:.1f}s requested",
            f"grants:        {self.grants} "
            f"(kills={self.kills}, recoveries={self.recoveries}, "
            f"service restarts={self.service_restarts})",
            f"chaos phases:  {' -> '.join(self.phases_seen) or '(none)'}",
            f"dlq:           {self.dlq_replayed} dropped frames replayed "
            f"after heal",
            f"episodes:      {self.episodes} net elections streamed "
            f"through the checker",
        ]
        if self.violation is None:
            lines.append("invariants:    all hold (every grant epoch-fenced)")
        else:
            flag = " [injected]" if self.injected else ""
            lines.append(
                f"VIOLATION:     [{self.violation.source}]{flag} "
                f"{self.violation.invariant}: {self.violation.message}"
            )
            if self.incident_path is not None:
                lines.append(f"incident:      {self.incident_path}")
        return "\n".join(lines)


@dataclass
class _SoakState:
    """Mutable rendezvous between the soak's concurrent tasks."""

    stop: asyncio.Event
    monitor: LeaseMonitor
    registry: MetricsRegistry
    service: ElectionService
    host: str = ""
    port: int = 0
    grant_log: list[GrantRecord] = field(default_factory=list)
    fenced_base: list[Any] = field(default_factory=list)
    snapshots: list[dict[str, Any]] = field(default_factory=list)
    violation: SoakViolation | None = None
    kills: int = 0
    recoveries: int = 0
    service_restarts: int = 0
    dlq_replayed: int = 0
    episodes: int = 0
    phases_seen: list[str] = field(default_factory=list)
    injected: bool = False

    def flag(self, violation: SoakViolation) -> None:
        """Record the first violation and abort the soak immediately."""
        if self.violation is None:
            self.violation = violation
        self.stop.set()


async def _soak_contender(
    state: _SoakState,
    key: str,
    client_id: str,
    pid: int,
    ttl_ms: float,
    hold_ms: float,
    wait_ms: float,
    kill_round: int,
) -> None:
    """One contender session: acquire / hold / release until told to stop.

    Every ``kill_round`` wins it aborts its own connection *while
    holding the lease* — no release, the transport just dies — then
    reconnects to whatever host/port the state currently advertises and
    re-acquires.  The first successful grant after any session loss
    (deliberate kill, service restart, chaos-induced error) counts as a
    restart-and-recover event.
    """
    client: ServiceClient | None = None
    recovering = False
    wins = 0
    try:
        while not state.stop.is_set():
            if client is None:
                try:
                    client = await ServiceClient.connect(
                        state.host, state.port, client_id=client_id, pid=pid,
                    )
                except Exception:
                    # Service mid-restart or port not up yet: back off.
                    await asyncio.sleep(0.05)
                    continue
            issued = time.perf_counter()
            try:
                lease = await client.acquire(
                    key, ttl_ms=ttl_ms, wait_ms=wait_ms
                )
            except Exception:
                client = None
                recovering = True
                continue
            if lease is None:
                state.registry.counter("soak.busy").inc()
                continue
            state.registry.histogram("soak.acquire_ms").observe(
                (time.perf_counter() - issued) * 1e3
            )
            state.registry.counter("soak.grants").inc()
            if recovering:
                recovering = False
                state.recoveries += 1
                state.registry.counter("soak.recoveries").inc()
            wins += 1
            if hold_ms > 0:
                await asyncio.sleep(hold_ms / 1000.0)
            if kill_round > 0 and wins % kill_round == 0:
                state.kills += 1
                state.registry.counter("soak.kills").inc()
                client.abort()
                client = None
                recovering = True
                continue
            try:
                await client.release(lease)
            except Exception:
                client = None
                recovering = True
    finally:
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass


async def _phase_watcher(
    state: _SoakState, plan: PhasedChaosPlan, t0: float
) -> None:
    """Track phase rotation; replay the DLQ on every phase transition.

    Replaying on *every* boundary (not just heal phases) is deliberate:
    a frame dropped in a drop phase should reach its session as soon as
    the weather changes, and replaying into continued chaos is exactly
    the at-most-once machinery's job to absorb.
    """
    last_index: int | None = None
    while not state.stop.is_set():
        resolved = plan.resolve((time.perf_counter() - t0) * 1e3)
        if resolved is not None:
            index, phase, _ = resolved
            if last_index is not None and index != last_index:
                state.dlq_replayed += state.service.replay_dlq()
            if index != last_index:
                if not state.phases_seen or state.phases_seen[-1] != phase.name:
                    state.phases_seen.append(phase.name)
                last_index = index
        await asyncio.sleep(0.025)


async def _service_restart(
    state: _SoakState,
    plan: PhasedChaosPlan,
    at_s: float,
    ttl_ms: float,
    seed: int,
) -> None:
    """Kill and restart the service mid-soak, carrying the namespace over.

    The old instance's fencing floors survive via ``export_namespace``;
    its leases deliberately do not (a restart ends every hold), so any
    still-open grant is settled as a crash before the successor starts
    granting the same keys at higher epochs.
    """
    await asyncio.sleep(at_s)
    if state.stop.is_set():
        return
    old = state.service
    namespace = old.export_namespace()
    state.fenced_base.extend(old.fenced)
    state.snapshots.append(old.snapshot())
    await old.stop()
    ended = time.monotonic_ns()
    for record in old.history:
        if record.ended_ns is None:
            record.ended_ns = ended
            record.reason = "crash"
    fresh = ElectionService(
        seed=seed, default_ttl_ms=ttl_ms, plan=plan,
        namespace=namespace, grant_hook=old.grant_hook,
    )
    state.host, state.port = await fresh.start()
    state.service = fresh
    state.service_restarts += 1
    state.registry.counter("soak.service_restarts").inc()


async def _inject_stale_grant(state: _SoakState, at_s: float) -> None:
    """Negative control: forge a stale-epoch double grant mid-stream.

    Waits for at least one real grant so there is a fencing floor to
    violate, then appends a :class:`~repro.net.service.GrantRecord`
    reusing that floor and pushes it through the same history + hook
    path a genuine grant takes — indistinguishable from a service bug
    except by its stale epoch, which is the monitor's whole job.
    """
    await asyncio.sleep(at_s)
    while not state.stop.is_set() and not state.monitor.floors:
        await asyncio.sleep(0.01)
    if state.stop.is_set():
        return
    key = sorted(state.monitor.floors)[0]
    floor = state.monitor.floors[key]
    state.injected = True
    record = GrantRecord(
        key=key, epoch=floor, holder="soak-evil-twin", session=-1,
        granted_ns=time.monotonic_ns(),
    )
    service = state.service
    service.history.append(record)
    if service.grant_hook is not None:
        service.grant_hook(record)


def _audit_episode(trace_path: str, task: str, run: Any) -> SoakViolation | None:
    """Stream one finished episode's trace through the checker.

    Returns the first violation: a mid-stream invariant break, a
    malformed/truncated stream, or a run-level violation the driver's
    own post-hoc check reported.
    """
    from ..check.streaming import StreamError, StreamingViolation, audit_trace

    try:
        audit_trace(trace_path, task)
    except StreamingViolation as exc:
        return SoakViolation(
            invariant=exc.invariant,
            message=f"episode trace {trace_path}: {exc}",
            source="episode",
        )
    except StreamError as exc:
        return SoakViolation(
            invariant="stream_integrity", message=str(exc), source="episode",
        )
    if run is not None and run.violations:
        name, message = run.violations[0]
        return SoakViolation(
            invariant=name, message=f"episode: {message}", source="episode",
        )
    return None


async def _episode_loop(
    state: _SoakState,
    plan: PhasedChaosPlan,
    t0: float,
    every_s: float,
    task: str,
    n: int,
    seed: int,
    out_dir: str,
    duration_s: float,
) -> None:
    """Periodically run a full ``repro net`` election under current weather.

    Each episode freezes the chaos phase active at launch (a whole
    election is short next to a phase) and streams the merged trace
    through the streaming checker before the next one starts.
    """
    from ..net.driver import run_net

    index = 0
    while not state.stop.is_set():
        try:
            await asyncio.wait_for(state.stop.wait(), timeout=every_s)
            return
        except asyncio.TimeoutError:
            pass
        if time.perf_counter() - t0 >= duration_s:
            return
        phase_plan = plan.plan_at((time.perf_counter() - t0) * 1e3)
        trace_path = os.path.join(out_dir, f"soak-episode-{index:03d}.jsonl")
        episode_seed = derive_seed(seed, f"soak/episode/{index}")
        index += 1
        try:
            run = await asyncio.to_thread(
                run_net,
                task=task, n=n, seed=episode_seed, plan=phase_plan,
                trace_path=trace_path, deadline_s=60.0,
            )
        except Exception:
            # Infrastructure noise (port exhaustion, deadline under heavy
            # chaos) is not a safety violation; count it and move on.
            state.registry.counter("soak.episode_errors").inc()
            continue
        state.episodes += 1
        violation = _audit_episode(trace_path, task, run)
        if violation is not None:
            state.flag(violation)
            return


def _grants_digest(grants: list[dict[str, Any]]) -> str:
    """SHA-256 over the canonical JSON lines of a grant log."""
    payload = "\n".join(
        json.dumps(obj, sort_keys=True, separators=(",", ":"))
        for obj in grants
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _write_incident(
    out_dir: str,
    plan: PhasedChaosPlan,
    state: _SoakState,
    snapshot: dict[str, Any],
    profile: str,
    seed: int,
    n: int,
    keys: int,
    contenders: int,
    duration_s: float,
    elapsed_s: float,
) -> str:
    """Write the replayable incident artifact; returns its path."""
    grants = [record.to_obj() for record in state.grant_log]
    incident = {
        "format": SOAK_FORMAT_VERSION,
        "kind": "soak-incident",
        "profile": profile,
        "seed": seed,
        "n": n,
        "keys": keys,
        "contenders": contenders,
        "duration_s": duration_s,
        "elapsed_s": elapsed_s,
        "plan": plan.to_obj(),
        "violation": state.violation.to_obj() if state.violation else None,
        "injected": state.injected,
        "grants": grants,
        "grants_sha256": _grants_digest(grants),
        "metrics": snapshot,
        "recoveries": state.recoveries,
        "service_restarts": state.service_restarts,
        "dlq_replayed": state.dlq_replayed,
        "episodes": state.episodes,
        "phases_seen": list(state.phases_seen),
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"soak-incident-{profile}-seed{seed}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(incident, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


async def _run_soak_async(
    duration_s: float,
    seed: int,
    profile: str,
    n: int,
    keys: int,
    contenders: int,
    ttl_ms: float,
    hold_ms: float,
    wait_ms: float,
    kill_every: int,
    restart_service_at: float | None,
    episode_every_s: float | None,
    episode_task: str,
    out_dir: str,
    inject_violation_at_s: float | None,
) -> SoakReport:
    """The soak's async body: start the stack, fan out, gate, report."""
    plan = make_phased_plan(profile, seed, n)
    registry = MetricsRegistry()
    monitor = LeaseMonitor()
    stop = asyncio.Event()
    state = _SoakState(
        stop=stop, monitor=monitor, registry=registry,
        service=None,  # type: ignore[arg-type] — set right below
    )

    def on_grant(record: GrantRecord) -> None:
        """Grant hook: log every grant and gate it through the monitor."""
        state.grant_log.append(record)
        violation = monitor.observe(record)
        if violation is not None:
            state.flag(violation)

    service = ElectionService(
        seed=seed, default_ttl_ms=ttl_ms, plan=plan, grant_hook=on_grant,
    )
    state.service = service
    state.host, state.port = await service.start()
    t0 = time.perf_counter()

    tasks: list[asyncio.Task] = []
    for key_index in range(keys):
        key = f"soak/{key_index:03d}"
        for contender in range(contenders):
            pid = key_index * contenders + contender
            # Stagger deliberate kills so sessions do not die in lockstep.
            kill_round = 0
            if kill_every > 0:
                kill_round = kill_every + (
                    derive_seed(seed, f"soak/kill/{pid}") % kill_every
                )
            tasks.append(asyncio.create_task(_soak_contender(
                state, key, f"soak-{key_index}-{contender}", pid,
                ttl_ms, hold_ms, wait_ms, kill_round,
            )))
    tasks.append(asyncio.create_task(_phase_watcher(state, plan, t0)))
    if restart_service_at is not None:
        tasks.append(asyncio.create_task(_service_restart(
            state, plan, duration_s * restart_service_at, ttl_ms, seed,
        )))
    if inject_violation_at_s is not None:
        tasks.append(asyncio.create_task(
            _inject_stale_grant(state, inject_violation_at_s)
        ))
    if episode_every_s is not None:
        tasks.append(asyncio.create_task(_episode_loop(
            state, plan, t0, episode_every_s, episode_task, n, seed,
            out_dir, duration_s,
        )))

    try:
        try:
            await asyncio.wait_for(stop.wait(), timeout=duration_s)
        except asyncio.TimeoutError:
            pass
    finally:
        stop.set()
        elapsed_s = time.perf_counter() - t0
        # Cancel-first shutdown: a contender mid-RPC can retry for
        # seconds under chaos, and cancellation is safe (its ``finally``
        # closes the transport; the service sweeps the lease).
        await asyncio.wait(tasks, timeout=0.25)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    service = state.service
    run = ServiceRun(
        n=max(1, keys), k=len(state.grant_log),
        history=list(state.grant_log),
        fenced=state.fenced_base + list(service.fenced),
    )
    state.snapshots.append(service.snapshot())
    await service.stop()

    if state.violation is None:
        from ..check.invariants import evaluate_service_run

        for name, message in evaluate_service_run(run):
            state.violation = SoakViolation(
                invariant=name, message=message, source="post-hoc",
            )
            break

    snapshot = merge_snapshots([registry.snapshot(), *state.snapshots])
    incident_path: str | None = None
    if state.violation is not None:
        incident_path = _write_incident(
            out_dir, plan, state, snapshot, profile, seed, n, keys,
            contenders, duration_s, elapsed_s,
        )
    return SoakReport(
        profile=profile, seed=seed, n=n, keys=keys, contenders=contenders,
        duration_s=duration_s, elapsed_s=elapsed_s,
        grants=len(state.grant_log), kills=state.kills,
        recoveries=state.recoveries,
        service_restarts=state.service_restarts,
        dlq_replayed=state.dlq_replayed, episodes=state.episodes,
        phases_seen=tuple(state.phases_seen), snapshot=snapshot,
        violation=state.violation, incident_path=incident_path,
        injected=state.injected,
    )


def run_soak(
    duration_s: float = 60.0,
    seed: int = 0,
    profile: str = "rolling",
    n: int = 5,
    keys: int = 2,
    contenders: int = 3,
    ttl_ms: float = 400.0,
    hold_ms: float = 15.0,
    wait_ms: float = 250.0,
    kill_every: int = 6,
    restart_service_at: float | None = 0.5,
    episode_every_s: float | None = None,
    episode_task: str = "elect",
    out_dir: str = ".",
    inject_violation_at_s: float | None = None,
) -> SoakReport:
    """Run one time-boxed chaos soak; the ``repro soak`` entry point.

    ``duration_s`` bounds the soak; a violation ends it early.  ``n`` is
    both the partition universe of the chaos profile and the size of the
    periodic net-election episodes (enabled by ``episode_every_s``).
    ``keys`` × ``contenders`` sessions contend; each deliberately kills
    its own session roughly every ``kill_every`` wins and must
    restart-and-recover.  ``restart_service_at`` (fraction of the
    duration, ``None`` to disable) restarts the service itself with its
    namespace carried over.  ``inject_violation_at_s`` arms the
    negative control.  Raises :class:`SoakError` on bad configuration;
    violations are reported, not raised.
    """
    if duration_s <= 0:
        raise SoakError(f"duration must be positive, got {duration_s}")
    if profile not in CHAOS_PROFILES:
        raise SoakError(
            f"unknown chaos profile {profile!r}; "
            f"known: {sorted(CHAOS_PROFILES)}"
        )
    if keys < 1 or contenders < 1:
        raise SoakError(
            f"need at least one key and one contender, "
            f"got keys={keys} contenders={contenders}"
        )
    if restart_service_at is not None and not 0.0 < restart_service_at < 1.0:
        raise SoakError(
            f"restart_service_at must be in (0, 1) or None, "
            f"got {restart_service_at}"
        )
    return asyncio.run(_run_soak_async(
        duration_s=duration_s, seed=seed, profile=profile, n=n, keys=keys,
        contenders=contenders, ttl_ms=ttl_ms, hold_ms=hold_ms,
        wait_ms=wait_ms, kill_every=kill_every,
        restart_service_at=restart_service_at,
        episode_every_s=episode_every_s, episode_task=episode_task,
        out_dir=out_dir, inject_violation_at_s=inject_violation_at_s,
    ))


# ---------------------------------------------------------------------------
# Incident replay
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class IncidentReplay:
    """The verdict of deterministically re-verifying an incident artifact."""

    path: str
    recorded: SoakViolation | None
    replayed: SoakViolation | None
    digest_ok: bool
    injected: bool

    @property
    def ok(self) -> bool:
        """``True`` when the artifact replays to the recorded verdict.

        The grant-log digest must match, and for monitor-sourced
        violations the replayed monitor must fire the same invariant at
        the same grant index with the same message.  Episode- and
        post-hoc-sourced violations carry their evidence (trace path /
        message) rather than replaying through the monitor, so for them
        digest integrity is the whole check.
        """
        if not self.digest_ok:
            return False
        if self.recorded is None or self.recorded.source != "monitor":
            return True
        return (
            self.replayed is not None
            and self.replayed.invariant == self.recorded.invariant
            and self.replayed.grant_index == self.recorded.grant_index
            and self.replayed.message == self.recorded.message
        )

    def describe(self) -> str:
        """Human summary for ``repro soak --replay``."""
        lines = [f"incident:      {self.path}"]
        if self.recorded is not None:
            flag = " [injected]" if self.injected else ""
            lines.append(
                f"recorded:      [{self.recorded.source}]{flag} "
                f"{self.recorded.invariant}: {self.recorded.message}"
            )
        lines.append(
            f"grant digest:  {'matches' if self.digest_ok else 'MISMATCH'}"
        )
        if self.recorded is not None and self.recorded.source == "monitor":
            verdict = (
                "same violation at the same grant"
                if self.ok else "DIVERGED"
            )
            lines.append(f"monitor replay: {verdict}")
        lines.append(f"replay:        {'ok' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def load_incident(path: str) -> dict[str, Any]:
    """Load and structurally validate an incident artifact."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
    except OSError as exc:
        raise SoakError(f"cannot read incident {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SoakError(f"{path}: not valid JSON ({exc.msg})") from exc
    if not isinstance(obj, dict) or obj.get("kind") != "soak-incident":
        raise SoakError(f"{path}: not a soak incident artifact")
    if obj.get("format") != SOAK_FORMAT_VERSION:
        raise SoakError(
            f"{path}: incident format {obj.get('format')!r} is not "
            f"supported (expected {SOAK_FORMAT_VERSION})"
        )
    for field_name in ("grants", "grants_sha256", "violation", "plan"):
        if field_name not in obj:
            raise SoakError(f"{path}: incident is missing {field_name!r}")
    return obj


def replay_incident(path: str) -> IncidentReplay:
    """Deterministically re-verify an incident artifact, offline.

    Recomputes the grant-log digest and re-runs the
    :class:`LeaseMonitor` over the recorded grants — a pure function of
    the log, so the verdict is bit-for-bit reproducible on any machine
    with no service, sockets, or timing involved.
    """
    obj = load_incident(path)
    grants = obj["grants"]
    digest_ok = _grants_digest(grants) == obj["grants_sha256"]
    recorded = (
        SoakViolation.from_obj(obj["violation"])
        if obj["violation"] is not None else None
    )
    monitor = LeaseMonitor()
    for grant in grants:
        record = GrantRecord(**{name: grant[name] for name in _GRANT_FIELDS})
        monitor.observe(record)
    return IncidentReplay(
        path=path,
        recorded=recorded,
        replayed=monitor.violation,
        digest_ok=digest_ok,
        injected=bool(obj.get("injected", False)),
    )
