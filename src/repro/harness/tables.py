"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's claims are
stated in, as monospace tables that survive ``pytest -s`` capture and
``tee`` into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass(slots=True)
class Table:
    """A titled monospace table built row by row."""

    title: str
    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table (title, headers, rows, notes) as text."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(
            header.ljust(widths[index]) for index, header in enumerate(self.headers)
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table preceded by a blank line."""
        print()
        print(self.render())


def render_series(label: str, pairs: Iterable[tuple[Any, Any]]) -> str:
    """One-line ``label: x1->y1 x2->y2 ...`` series rendering."""
    body = "  ".join(f"{x}->{_format_cell(y)}" for x, y in pairs)
    return f"{label}: {body}"


def profile_table(profiler, title: str = "wall-clock profile") -> Table:
    """Render a :class:`repro.obs.profile.Profiler` as a benchmark table.

    One row per named span, most expensive first: call count, total
    seconds, mean and max milliseconds.  Spans may nest (the runtime's
    ``execute.*`` spans run inside the run loop), so totals of different
    rows can overlap.
    """
    table = Table(title, ["span", "calls", "total s", "mean ms", "max ms"])
    for stats in profiler.stats():
        table.add_row(
            stats.name,
            stats.count,
            stats.total,
            stats.mean * 1e3,
            stats.maximum * 1e3,
        )
    return table
