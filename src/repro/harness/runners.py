"""High-level experiment runners: one call, one checked execution.

These wrap the three moving parts — algorithm factory, adversary,
simulation — behind task-shaped entry points that benchmarks, examples,
and tests share.  Every runner validates the execution against the
problem specification before returning, so a benchmark number can never
come from a broken run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..adversary import ADVERSARY_FACTORIES, Adversary, CrashingAdversary
from ..analysis.checkers import (
    LeaderElectionReport,
    check_leader_election,
    check_renaming,
    check_sifting_phase,
)
from ..core import (
    Outcome,
    make_get_name,
    make_heterogeneous_poison_pill,
    make_leader_elect,
    make_poison_pill,
)
from ..core.baselines import (
    make_linear_renaming,
    make_naive_sifter,
    make_tournament,
)
from ..sim.process import AlgorithmFactory
from ..sim.runtime import Simulation, SimulationResult
from .workloads import choose_participants

LEADER_ALGORITHMS = ("poison_pill", "poison_pill_basic", "tournament")
SIFTER_KINDS = ("poison_pill", "heterogeneous", "naive")
RENAMING_ALGORITHMS = ("paper", "linear")


def make_adversary(spec: str | Adversary, seed: int = 0) -> Adversary:
    """Resolve an adversary spec: a registry name or a ready instance."""
    if isinstance(spec, Adversary):
        return spec
    try:
        return ADVERSARY_FACTORIES[spec](seed=seed)
    except KeyError:
        raise ValueError(
            f"unknown adversary {spec!r}; known: {sorted(ADVERSARY_FACTORIES)}"
        ) from None


def task_factory(
    task: str,
    algorithm: str,
    bias: float | None = None,
    use_lists: bool = True,
) -> AlgorithmFactory:
    """Resolve a (task, algorithm) pair to its coroutine factory."""
    if task == "elect":
        if algorithm == "poison_pill":
            return make_leader_elect()
        if algorithm == "poison_pill_basic":
            return make_leader_elect(sifter="poison_pill")
        if algorithm == "tournament":
            return make_tournament()
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {LEADER_ALGORITHMS}"
        )
    if task == "sift":
        if algorithm == "poison_pill":
            return make_poison_pill(bias=bias)
        if algorithm == "heterogeneous":
            return make_heterogeneous_poison_pill(use_lists=use_lists)
        if algorithm == "naive":
            return make_naive_sifter(bias=bias)
        raise ValueError(
            f"unknown sifter {algorithm!r}; expected one of {SIFTER_KINDS}"
        )
    if task == "rename":
        if algorithm == "paper":
            return make_get_name()
        if algorithm == "linear":
            return make_linear_renaming()
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {RENAMING_ALGORITHMS}"
        )
    raise ValueError(f"unknown task {task!r}; expected elect, sift, or rename")


def build_task_simulation(
    task: str,
    algorithm: str,
    n: int,
    k: int | None = None,
    adversary: str | Adversary = "random",
    seed: int = 0,
    pattern: str = "first",
    record_events: bool = False,
    max_events: int | None = None,
    sink=None,
    profiler=None,
    delta_propagation: bool = True,
    telemetry=None,
    batch_messages: bool | None = None,
) -> Simulation:
    """Build (without running) the simulation a task runner would drive.

    Callers that need the :class:`~repro.sim.runtime.Simulation` before
    execution — to enable checkpoint recording
    (:func:`repro.sim.snapshot.enable_recording`) or to drive the action
    loop manually — build it here, then hand it back to the matching
    runner via its ``simulation=`` parameter.
    """
    factory = task_factory(task, algorithm)
    participants = choose_participants(n, k, pattern, seed)
    return _build_simulation(
        n, factory, participants, adversary, seed, None,
        record_events, max_events, sink, profiler, delta_propagation,
        telemetry, batch_messages,
    )


def _build_simulation(
    n: int,
    factory: AlgorithmFactory,
    participants: Sequence[int],
    adversary: str | Adversary,
    seed: int,
    crash_schedule: Sequence[tuple[int, int]] | None,
    record_events: bool,
    max_events: int | None,
    sink=None,
    profiler=None,
    delta_propagation: bool = True,
    telemetry=None,
    batch_messages: bool | None = None,
) -> Simulation:
    scheduler = make_adversary(adversary, seed)
    if crash_schedule:
        scheduler = CrashingAdversary(scheduler, crash_schedule)
    return Simulation(
        n=n,
        participants={pid: factory for pid in participants},
        adversary=scheduler,
        seed=seed,
        record_events=record_events,
        max_events=max_events,
        sink=sink,
        profiler=profiler,
        delta_propagation=delta_propagation,
        telemetry=telemetry,
        batch_messages=batch_messages,
    )


def _coin_rounds(result_sim: Simulation, label_fragment: str) -> int:
    """Max per-processor count of coins whose label contains the fragment.

    Each Heterogeneous PoisonPill round flips exactly one coin labelled
    ``...hpp<r>.coin``, so this counts sifting rounds without tracing.
    """
    best = 0
    for process in result_sim.processes:
        count = sum(
            1 for coin_label, _ in process.coins.all() if label_fragment in coin_label
        )
        best = max(best, count)
    return best


@dataclass(slots=True)
class LeaderElectionRun:
    """A checked leader-election execution plus its headline measurements."""

    n: int
    k: int
    algorithm: str
    adversary: str
    seed: int
    result: SimulationResult
    report: LeaderElectionReport
    rounds: int

    @property
    def winner(self) -> int | None:
        """The elected processor id, or None if nobody won."""
        return self.report.winner

    @property
    def max_comm_calls(self) -> int:
        """Maximum communicate calls made by any single processor."""
        return self.result.metrics.max_comm_calls

    @property
    def messages_total(self) -> int:
        """Total messages sent across the execution."""
        return self.result.metrics.messages_total


def run_leader_election(
    n: int,
    k: int | None = None,
    algorithm: str = "poison_pill",
    adversary: str | Adversary = "random",
    seed: int = 0,
    pattern: str = "first",
    crash_schedule: Sequence[tuple[int, int]] | None = None,
    record_events: bool = False,
    max_events: int | None = None,
    check: bool = True,
    sink=None,
    profiler=None,
    delta_propagation: bool = True,
    telemetry=None,
    batch_messages: bool | None = None,
    simulation: Simulation | None = None,
) -> LeaderElectionRun:
    """Run one leader election to completion and check it.

    ``algorithm`` selects the paper's PoisonPill-based algorithm or the
    [AGTV92] tournament baseline.  ``sink`` receives the structured event
    stream (:mod:`repro.obs`) and ``profiler`` accumulates wall-clock
    spans; both default to off.  ``delta_propagation=False`` forces full
    PROPAGATE payloads — semantically identical, used by the equivalence
    regression tests.  ``telemetry`` is a second sink slot for live
    consumers (:class:`~repro.obs.metrics.MetricsSink`,
    :class:`~repro.obs.live.LiveTelemetry`, or a
    :class:`~repro.check.streaming.StreamingChecker`).
    ``batch_messages`` overrides the pool-representation negotiation:
    ``None`` negotiates from the adversary's capability flags, ``False``
    forces materialized ``Message`` objects (the equivalence tests'
    control arm), ``True`` asserts the columnar batch plane.
    ``simulation`` runs a pre-built (possibly checkpoint-forked)
    simulation instead of constructing one; the construction arguments
    are then recorded verbatim but otherwise unused.
    """
    if simulation is not None:
        sim = simulation
        participants = [p.pid for p in sim.processes if p.is_participant]
    else:
        factory = task_factory("elect", algorithm)
        participants = choose_participants(n, k, pattern, seed)
        sim = _build_simulation(
            n, factory, participants, adversary, seed, crash_schedule,
            record_events, max_events, sink, profiler, delta_propagation,
            telemetry, batch_messages,
        )
    result = sim.run(require_termination=check and not crash_schedule)
    report = check_leader_election(result) if check else LeaderElectionReport(
        winner=None, losers=(), crashed=tuple(result.crashed),
        undecided=tuple(result.undecided),
    )
    adversary_name = adversary if isinstance(adversary, str) else adversary.name
    return LeaderElectionRun(
        n=n,
        k=len(participants),
        algorithm=algorithm,
        adversary=adversary_name,
        seed=seed,
        result=result,
        report=report,
        rounds=_coin_rounds(sim, ".hpp"),
    )


@dataclass(slots=True)
class SiftingRun:
    """A checked single sifting phase plus its survivor count."""

    n: int
    k: int
    kind: str
    adversary: str
    seed: int
    result: SimulationResult
    survivors: int

    @property
    def survivor_fraction(self) -> float:
        """Surviving fraction of the participant set."""
        return self.survivors / self.k if self.k else 0.0


def run_sifting_phase(
    n: int,
    k: int | None = None,
    kind: str = "heterogeneous",
    adversary: str | Adversary = "random",
    seed: int = 0,
    pattern: str = "first",
    bias: float | None = None,
    use_lists: bool = True,
    max_events: int | None = None,
    check: bool = True,
    record_events: bool = False,
    sink=None,
    profiler=None,
    delta_propagation: bool = True,
    telemetry=None,
    batch_messages: bool | None = None,
    simulation: Simulation | None = None,
) -> SiftingRun:
    """Run one sifting phase (PoisonPill / heterogeneous / naive)."""
    if simulation is not None:
        sim = simulation
        participants = [p.pid for p in sim.processes if p.is_participant]
    else:
        factory = task_factory("sift", kind, bias=bias, use_lists=use_lists)
        participants = choose_participants(n, k, pattern, seed)
        sim = _build_simulation(
            n, factory, participants, adversary, seed, None, record_events,
            max_events, sink, profiler, delta_propagation, telemetry,
            batch_messages,
        )
    result = sim.run()
    survivors = check_sifting_phase(result) if check else sum(
        1 for d in result.decisions.values() if d.result is Outcome.SURVIVE
    )
    adversary_name = adversary if isinstance(adversary, str) else adversary.name
    return SiftingRun(
        n=n,
        k=len(participants),
        kind=kind,
        adversary=adversary_name,
        seed=seed,
        result=result,
        survivors=survivors,
    )


@dataclass(slots=True)
class RenamingRun:
    """A checked renaming execution plus its headline measurements."""

    n: int
    k: int
    algorithm: str
    adversary: str
    seed: int
    result: SimulationResult
    names: Mapping[int, Any]
    max_trials: int

    @property
    def max_comm_calls(self) -> int:
        """Maximum communicate calls made by any single processor."""
        return self.result.metrics.max_comm_calls

    @property
    def messages_total(self) -> int:
        """Total messages sent across the execution."""
        return self.result.metrics.messages_total


def run_renaming(
    n: int,
    k: int | None = None,
    algorithm: str = "paper",
    adversary: str | Adversary = "random",
    seed: int = 0,
    pattern: str = "first",
    crash_schedule: Sequence[tuple[int, int]] | None = None,
    max_events: int | None = None,
    check: bool = True,
    record_events: bool = False,
    sink=None,
    profiler=None,
    delta_propagation: bool = True,
    telemetry=None,
    batch_messages: bool | None = None,
    simulation: Simulation | None = None,
) -> RenamingRun:
    """Run one renaming execution to completion and check it."""
    if algorithm == "paper":
        spot_label = "rn.spot"
    elif algorithm == "linear":
        spot_label = "lr.spot"
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {RENAMING_ALGORITHMS}"
        )
    if simulation is not None:
        sim = simulation
        participants = [p.pid for p in sim.processes if p.is_participant]
    else:
        factory = task_factory("rename", algorithm)
        participants = choose_participants(n, k, pattern, seed)
        sim = _build_simulation(
            n, factory, participants, adversary, seed, crash_schedule,
            record_events, max_events, sink, profiler, delta_propagation,
            telemetry, batch_messages,
        )
    result = sim.run(require_termination=check and not crash_schedule)
    names = check_renaming(result) if check else dict(result.outcomes)
    max_trials = max(
        (
            sum(1 for label, _ in process.coins.all() if spot_label in label)
            for process in sim.processes
        ),
        default=0,
    )
    adversary_name = adversary if isinstance(adversary, str) else adversary.name
    return RenamingRun(
        n=n,
        k=len(participants),
        algorithm=algorithm,
        adversary=adversary_name,
        seed=seed,
        result=result,
        names=names,
        max_trials=max_trials,
    )
