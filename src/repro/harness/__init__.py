"""Experiment harness: workloads, runners, sweeps, benchmarking, and tables."""

from .bench import (
    EXPERIMENTS,
    BenchCell,
    BenchComparison,
    BenchResult,
    compare_results,
    load_result,
    run_experiment,
    verify_parallel_matches_serial,
)
from .parallel import parallel_repeat, parallel_sweep
from .runners import (
    LEADER_ALGORITHMS,
    RENAMING_ALGORITHMS,
    SIFTER_KINDS,
    LeaderElectionRun,
    RenamingRun,
    SiftingRun,
    make_adversary,
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)
from .sweep import SweepCell, cell_table, merged_metrics, repeat, sweep
from .tables import Table, profile_table, render_series
from .workloads import (
    PARTICIPATION_PATTERNS,
    choose_participants,
    crash_schedule_eager,
    crash_schedule_random,
)

__all__ = [
    "EXPERIMENTS",
    "LEADER_ALGORITHMS",
    "PARTICIPATION_PATTERNS",
    "RENAMING_ALGORITHMS",
    "SIFTER_KINDS",
    "BenchCell",
    "BenchComparison",
    "BenchResult",
    "LeaderElectionRun",
    "RenamingRun",
    "SiftingRun",
    "SweepCell",
    "Table",
    "cell_table",
    "choose_participants",
    "compare_results",
    "crash_schedule_eager",
    "crash_schedule_random",
    "load_result",
    "make_adversary",
    "merged_metrics",
    "parallel_repeat",
    "parallel_sweep",
    "profile_table",
    "render_series",
    "repeat",
    "run_experiment",
    "run_leader_election",
    "run_renaming",
    "run_sifting_phase",
    "sweep",
    "verify_parallel_matches_serial",
]
