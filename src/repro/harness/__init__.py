"""Experiment harness: workloads, runners, sweeps, and table rendering."""

from .runners import (
    LEADER_ALGORITHMS,
    RENAMING_ALGORITHMS,
    SIFTER_KINDS,
    LeaderElectionRun,
    RenamingRun,
    SiftingRun,
    make_adversary,
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)
from .sweep import SweepCell, cell_table, merged_metrics, repeat, sweep
from .tables import Table, profile_table, render_series
from .workloads import (
    PARTICIPATION_PATTERNS,
    choose_participants,
    crash_schedule_eager,
    crash_schedule_random,
)

__all__ = [
    "LEADER_ALGORITHMS",
    "PARTICIPATION_PATTERNS",
    "RENAMING_ALGORITHMS",
    "SIFTER_KINDS",
    "LeaderElectionRun",
    "RenamingRun",
    "SiftingRun",
    "SweepCell",
    "Table",
    "cell_table",
    "choose_participants",
    "crash_schedule_eager",
    "crash_schedule_random",
    "make_adversary",
    "merged_metrics",
    "profile_table",
    "render_series",
    "repeat",
    "run_leader_election",
    "run_renaming",
    "run_sifting_phase",
    "sweep",
]
