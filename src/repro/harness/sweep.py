"""Parameter sweeps with seed fan-out and aggregation.

A sweep runs a measurement function over a grid of parameter values,
``repeats`` times per value with derived seeds, and aggregates each cell
into a :class:`~repro.analysis.stats.Summary`.  Benchmarks use sweeps for
every table: one row per parameter value, one column per measured metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from ..analysis.stats import Summary, summarize
from ..sim.rng import derive_seed
from ..sim.trace import Metrics

P = TypeVar("P", bound=Hashable)
R = TypeVar("R")


def merged_metrics(runs: Iterable[object]) -> Metrics | None:
    """Combine the :class:`~repro.sim.trace.Metrics` of several runs.

    Accepts the Run objects the harness produces (anything exposing
    ``.result.metrics``) or bare :class:`Metrics` instances, and folds
    them into one accumulator with :meth:`Metrics.merge` — the supported
    way for sweep workers to combine counters, instead of re-summing the
    per-kind dicts by hand.  Returns ``None`` for an empty run set.
    """
    accumulator: Metrics | None = None
    for run in runs:
        metrics = run if isinstance(run, Metrics) else run.result.metrics
        if accumulator is None:
            accumulator = Metrics(len(metrics.comm_calls_by))
        accumulator.merge(metrics)
    return accumulator


@dataclass(frozen=True, slots=True)
class SweepCell(Generic[P, R]):
    """All repetitions of one parameter value."""

    param: P
    runs: tuple[R, ...]

    def metric(self, extract: Callable[[R], float]) -> Summary:
        """Summarize one metric across the cell's repetitions."""
        return summarize(extract(run) for run in self.runs)

    def merged_metrics(self) -> Metrics | None:
        """The cell's runs' counters folded into one :class:`Metrics`."""
        return merged_metrics(self.runs)


def repeat(
    fn: Callable[[int], R],
    repeats: int,
    seed_base: int = 0,
    label: str = "repeat",
    workers: int = 1,
) -> list[R]:
    """Run ``fn(seed)`` with ``repeats`` independent derived seeds.

    ``workers > 1`` fans the repetitions out over forked worker processes
    (:mod:`repro.harness.parallel`); seeds and result order are identical
    to the serial path, so the two are interchangeable.
    """
    if workers != 1:
        from .parallel import parallel_repeat

        return parallel_repeat(
            fn, repeats, seed_base=seed_base, label=label, workers=workers
        )
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    return [fn(derive_seed(seed_base, f"{label}/{i}")) for i in range(repeats)]


def sweep(
    values: Iterable[P],
    fn: Callable[[P, int], R],
    repeats: int = 5,
    seed_base: int = 0,
    workers: int = 1,
) -> list[SweepCell[P, R]]:
    """Run ``fn(value, seed)`` over the grid; returns one cell per value.

    ``workers > 1`` executes the whole grid over forked worker processes
    with bit-identical per-cell results (see :mod:`repro.harness.parallel`
    for the determinism argument); ``workers=0`` means all CPUs.
    """
    if workers != 1:
        from .parallel import parallel_sweep

        return parallel_sweep(
            values, fn, repeats=repeats, seed_base=seed_base, workers=workers
        )
    cells = []
    for value in values:
        runs = repeat(
            lambda seed, v=value: fn(v, seed),
            repeats=repeats,
            seed_base=seed_base,
            label=f"sweep/{value!r}",
        )
        cells.append(SweepCell(param=value, runs=tuple(runs)))
    return cells


def cell_table(
    cells: Sequence[SweepCell[P, R]],
    metrics: Mapping[str, Callable[[R], float]],
) -> list[dict[str, object]]:
    """Flatten sweep cells into row dicts: param plus one Summary per metric."""
    rows: list[dict[str, object]] = []
    for cell in cells:
        row: dict[str, object] = {"param": cell.param}
        for name, extract in metrics.items():
            row[name] = cell.metric(extract)
        rows.append(row)
    return rows
