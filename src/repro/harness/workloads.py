"""Workload generators: who participates, and who crashes when.

The paper's adaptive bounds are stated in terms of ``k``, the number of
*participants* out of ``n`` processors, so benchmark workloads vary both
numbers independently.  Crash schedules express failure injection as
``(at_event, pid)`` pairs consumed by
:class:`~repro.adversary.crash.CrashingAdversary`.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.rng import make_stream

PARTICIPATION_PATTERNS = ("first", "random", "spread", "last")


def choose_participants(
    n: int,
    k: int | None = None,
    pattern: str = "first",
    seed: int = 0,
) -> list[int]:
    """Pick ``k`` participant pids out of ``n`` processors.

    * ``first``  — pids ``0 .. k-1`` (the deterministic default);
    * ``last``   — pids ``n-k .. n-1`` (participants far from responders);
    * ``spread`` — evenly spaced pids (participants interleaved with
      responders, stressing quorum composition);
    * ``random`` — a uniform ``k``-subset drawn from ``seed``.
    """
    if k is None:
        k = n
    if not 1 <= k <= n:
        raise ValueError(f"k must be within [1, {n}], got {k}")
    if pattern == "first":
        return list(range(k))
    if pattern == "last":
        return list(range(n - k, n))
    if pattern == "spread":
        return sorted({(i * n) // k for i in range(k)})
    if pattern == "random":
        rng = make_stream(seed, "workload/participants")
        return sorted(rng.sample(range(n), k))
    raise ValueError(
        f"unknown pattern {pattern!r}; expected one of {PARTICIPATION_PATTERNS}"
    )


def crash_schedule_random(
    n: int,
    crashes: int,
    seed: int = 0,
    max_event: int = 10_000,
    avoid: Sequence[int] = (),
) -> list[tuple[int, int]]:
    """Random ``(at_event, pid)`` crash schedule avoiding ``avoid`` pids.

    The number of crashes is clamped to the model's ``ceil(n/2) - 1``
    budget so generated workloads are always admissible.
    """
    budget = (n + 1) // 2 - 1
    crashes = min(crashes, budget)
    rng = make_stream(seed, "workload/crashes")
    candidates = [pid for pid in range(n) if pid not in set(avoid)]
    if crashes > len(candidates):
        crashes = len(candidates)
    victims = rng.sample(candidates, crashes) if crashes else []
    return sorted((rng.randrange(1, max_event), pid) for pid in victims)


def crash_schedule_eager(pids: Sequence[int]) -> list[tuple[int, int]]:
    """Crash the given pids immediately (before any protocol progress)."""
    return [(0, pid) for pid in pids]
