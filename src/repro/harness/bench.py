"""Benchmark-baseline harness: measured sweeps with recorded trajectories.

Every performance claim in this repository should be *measured, not
asserted*.  This module runs the claim-table experiments under the
parallel sweep engine, records per-cell wall-clock, throughput, and
counter totals, and persists them as ``BENCH_<exp>.json`` files so a
future change can be compared against a recorded baseline::

    python -m repro bench --exp e1 --workers 4 --baseline --out bench/
    ...hack on the simulator...
    python -m repro bench --exp e1 --workers 4 --compare bench/BENCH_E1.json

Two properties make the numbers trustworthy:

* **Determinism** — each cell also records a *fingerprint*: a SHA-256
  over the per-run results (winners, survivor counts, message and call
  totals).  Fingerprints must match between serial and parallel runs of
  the same grid (``--check-serial`` asserts this) and between a baseline
  and a pure-performance change; a fingerprint drift means behaviour
  changed, not just speed.
* **Honest aggregation** — counter totals are folded from the runs' own
  :class:`~repro.sim.trace.Metrics` via
  :func:`~repro.harness.sweep.merged_metrics`, the same path the claim
  tables use.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..sim.rng import derive_seed
from ..sim.trace import Metrics
from .runners import run_leader_election, run_sifting_phase
from .sweep import merged_metrics, repeat

#: Bumped when the BENCH_*.json schema changes incompatibly.
BENCH_FORMAT_VERSION = 1

#: Slowdown ratio beyond which a comparison flags a regression.
REGRESSION_TOLERANCE = 0.25

#: Absolute wall-clock excess (seconds) a cell must also show before it is
#: flagged: millisecond-scale cells jitter far beyond any relative
#: tolerance, so a regression must be both relatively and absolutely real.
REGRESSION_MIN_DELTA_S = 0.1


# ----------------------------------------------------------------------
# Experiment specs
# ----------------------------------------------------------------------

def _elect_time_runner(n: int, seed: int):
    return run_leader_election(n=n, algorithm="poison_pill",
                               adversary="random", seed=seed)


def _elect_messages_runner(n: int, seed: int):
    return run_leader_election(n=n, adversary="random", seed=seed)


def _sift_survivors_runner(n: int, seed: int):
    return run_sifting_phase(n=n, kind="heterogeneous",
                             adversary="sequential", seed=seed)


@dataclass(slots=True)
class _MergedResult:
    """Adapter so a run *pair* exposes the ``.result.metrics`` shape."""

    metrics: Metrics


@dataclass(slots=True)
class LargeNSiftPair:
    """One E4 repetition: the same (n, seed) cell under both adversaries.

    The large-n experiment measures the simulator, not one scheduler, so
    each repetition runs the sequential attack *and* the oblivious
    scheduler back to back; counters are folded for the cell totals while
    the fingerprint keeps the two runs' digests separate (a behaviour
    change in either one must drift the cell).
    """

    sequential: Any
    oblivious: Any

    @property
    def result(self) -> _MergedResult:
        """Both runs' counters folded, shaped like a single Run's result."""
        metrics = merged_metrics((self.sequential, self.oblivious))
        assert metrics is not None
        return _MergedResult(metrics)


def _sift_large_n_runner(n: int, seed: int) -> LargeNSiftPair:
    common = dict(n=n, k=16, kind="heterogeneous", seed=seed)
    return LargeNSiftPair(
        sequential=run_sifting_phase(adversary="sequential", **common),
        oblivious=run_sifting_phase(adversary="oblivious", **common),
    )


def _elect_fingerprint(run) -> list:
    return [run.winner, run.rounds, run.max_comm_calls, run.messages_total]


def _sift_fingerprint(run) -> list:
    return [run.survivors, run.result.metrics.messages_total,
            run.result.metrics.max_comm_calls]


def _sift_pair_fingerprint(pair: LargeNSiftPair) -> list:
    return [_sift_fingerprint(pair.sequential), _sift_fingerprint(pair.oblivious)]


@dataclass(frozen=True, slots=True)
class BenchExperiment:
    """One benchmarkable experiment: a grid, a runner, a result digest."""

    name: str
    title: str
    values: tuple[int, ...]
    values_full: tuple[int, ...]
    seed_base: int
    runner: Callable[[int, int], Any]
    fingerprint: Callable[[Any], list]

    def grid(self, full: bool = False) -> tuple[int, ...]:
        """The parameter grid: default fast values or the full sweep."""
        return self.values_full if full else self.values


#: The benchmarked experiments, keyed by their DESIGN.md claim id.  E1 and
#: E3 are the headline sweep-scaling grids; E2 is the message-heavy grid
#: the payload-sharing optimization targets.
EXPERIMENTS: dict[str, BenchExperiment] = {
    exp.name: exp
    for exp in (
        BenchExperiment(
            name="e1",
            title="leader election time (max communicate calls)",
            values=(8, 16, 32),
            values_full=(8, 16, 32, 64, 128),
            seed_base=10,
            runner=_elect_time_runner,
            fingerprint=_elect_fingerprint,
        ),
        BenchExperiment(
            name="e2",
            title="leader election message complexity (message-heavy)",
            values=(16, 32, 48),
            values_full=(16, 32, 64, 96),
            seed_base=20,
            runner=_elect_messages_runner,
            fingerprint=_elect_fingerprint,
        ),
        BenchExperiment(
            name="e3",
            title="sifting survivors under the sequential attack",
            values=(16, 32, 64),
            values_full=(16, 32, 64, 128),
            seed_base=30,
            runner=_sift_survivors_runner,
            fingerprint=_sift_fingerprint,
        ),
        BenchExperiment(
            name="e4",
            title="large-n sifting (sequential + oblivious, k=16)",
            values=(256, 1024, 4096, 16384),
            values_full=(256, 1024, 4096, 16384, 65536),
            seed_base=40,
            runner=_sift_large_n_runner,
            fingerprint=_sift_pair_fingerprint,
        ),
    )
}


# ----------------------------------------------------------------------
# Measured results
# ----------------------------------------------------------------------

@dataclass(slots=True)
class BenchCell:
    """Measurements for one grid cell: timing plus folded counters."""

    param: int
    repeats: int
    wall_s: float
    runs_per_s: float
    messages_total: int
    steps: int
    deliveries: int
    events_executed: int
    max_comm_calls: int
    fingerprint: str

    def to_dict(self) -> dict[str, Any]:
        """The JSON object form stored inside a ``BENCH_*.json`` file."""
        return {
            "param": self.param,
            "repeats": self.repeats,
            "wall_s": self.wall_s,
            "runs_per_s": self.runs_per_s,
            "messages_total": self.messages_total,
            "steps": self.steps,
            "deliveries": self.deliveries,
            "events_executed": self.events_executed,
            "max_comm_calls": self.max_comm_calls,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, obj: dict[str, Any]) -> "BenchCell":
        """Rebuild a cell from its :meth:`to_dict` form."""
        return cls(**obj)


@dataclass(slots=True)
class BenchResult:
    """One recorded benchmark run of one experiment."""

    exp: str
    workers: int
    repeats: int
    grid: tuple[int, ...]
    wall_s_total: float
    cells: list[BenchCell]
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprints(self) -> dict[int, str]:
        """Per-cell result digests, keyed by grid value."""
        return {cell.param: cell.fingerprint for cell in self.cells}

    def to_dict(self) -> dict[str, Any]:
        """The JSON object written to ``BENCH_*.json``."""
        return {
            "version": BENCH_FORMAT_VERSION,
            "exp": self.exp,
            "workers": self.workers,
            "repeats": self.repeats,
            "grid": list(self.grid),
            "wall_s_total": self.wall_s_total,
            "cells": [cell.to_dict() for cell in self.cells],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, obj: dict[str, Any]) -> "BenchResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(
            exp=obj["exp"],
            workers=obj["workers"],
            repeats=obj["repeats"],
            grid=tuple(obj["grid"]),
            wall_s_total=obj["wall_s_total"],
            cells=[BenchCell.from_dict(cell) for cell in obj["cells"]],
            meta=obj.get("meta", {}),
        )

    def save(self, directory: str = ".") -> str:
        """Write ``BENCH_<EXP>.json`` into ``directory``; returns the path."""
        import os

        path = os.path.join(directory, f"BENCH_{self.exp.upper()}.json")
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        return path


def load_result(path: str) -> BenchResult:
    """Load a ``BENCH_*.json`` baseline written by :meth:`BenchResult.save`."""
    with open(path, "r", encoding="utf-8") as fp:
        obj = json.load(fp)
    if obj.get("version") != BENCH_FORMAT_VERSION:
        raise ValueError(
            f"{path}: bench format version {obj.get('version')!r}, "
            f"expected {BENCH_FORMAT_VERSION}"
        )
    return BenchResult.from_dict(obj)


def cell_fingerprint(experiment: BenchExperiment, runs: Sequence[Any]) -> str:
    """A stable digest of one cell's per-run results (order-sensitive)."""
    payload = json.dumps(
        [experiment.fingerprint(run) for run in runs],
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def render_tables(directory: str = "bench") -> str:
    """Render every ``BENCH_*.json`` baseline in ``directory`` as text.

    The human-readable companion of the committed baselines: regenerated
    from the recorded JSON (never measured fresh), so the tables cannot
    drift from the numbers they summarize.  The CLI writes the result to
    ``<directory>/bench_tables.txt`` via ``repro bench --render-tables``.
    """
    import glob
    import os

    from .tables import Table

    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise ValueError(f"no BENCH_*.json baselines in {directory!r}")
    chunks: list[str] = []
    for path in paths:
        result = load_result(path)
        table = Table(
            f"{result.exp}: {result.meta.get('title', '')} "
            f"(workers={result.workers}, repeats={result.repeats})",
            ["n", "wall s", "runs/s", "messages", "max comm calls",
             "fingerprint"],
        )
        for cell in result.cells:
            table.add_row(
                cell.param,
                round(cell.wall_s, 3),
                round(cell.runs_per_s, 2),
                cell.messages_total,
                cell.max_comm_calls,
                cell.fingerprint,
            )
        table.add_note(f"total wall-clock {result.wall_s_total:.3f}s")
        profile = result.meta.get("profile")
        if profile:
            hottest = ", ".join(
                entry["function"].rsplit("/", 1)[-1]
                for entry in profile["top"][:3]
            )
            table.add_note(
                f"profiled n={profile['param']} ({profile['wall_s']:.3f}s); "
                f"hottest: {hottest}"
            )
        chunks.append(table.render())
    return "\n\n".join(chunks) + "\n"


def profile_cell(
    exp: str, value: int | None = None, top: int = 20
) -> dict[str, Any]:
    """Profile one repetition of one grid cell under :mod:`cProfile`.

    Runs the experiment's runner once for ``value`` (default: the largest
    fast-grid value) with the same derived seed repetition 0 of a sweep
    would use, and returns a JSON-ready summary: the ``top`` functions by
    cumulative time.  Embedded in baseline ``meta`` by ``--profile`` so a
    recorded number always carries the evidence of *where* the time went.
    """
    import cProfile
    import pstats

    try:
        experiment = EXPERIMENTS[exp]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    if value is None:
        value = experiment.values[-1]
    seed = derive_seed(experiment.seed_base, f"sweep/{value!r}/0")
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    experiment.runner(value, seed)
    profiler.disable()
    wall = time.perf_counter() - start
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    entries: list[dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        _cc, ncalls, tottime, cumtime, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        entries.append({
            "function": f"{filename}:{lineno}({name})",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    return {
        "param": value,
        "seed": seed,
        "wall_s": round(wall, 6),
        "top": entries,
    }


def run_experiment(
    exp: str,
    workers: int = 1,
    repeats: int = 3,
    full: bool = False,
    profile: bool = False,
) -> BenchResult:
    """Run one experiment's grid, timing each cell.

    Each cell's repetitions are fanned out over ``workers`` processes;
    the derived seeds (and therefore the fingerprints) are independent of
    ``workers``.  With ``profile=True`` the largest cell is additionally
    re-run once under :func:`profile_cell` (outside the timed loop) and
    the hot-function table is stored in ``meta["profile"]``.
    """
    try:
        experiment = EXPERIMENTS[exp]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    grid = experiment.grid(full)
    cells: list[BenchCell] = []
    total_start = time.perf_counter()
    for value in grid:
        cell_start = time.perf_counter()
        runs = repeat(
            lambda seed, v=value: experiment.runner(v, seed),
            repeats=repeats,
            seed_base=experiment.seed_base,
            label=f"sweep/{value!r}",
            workers=workers,
        )
        wall = time.perf_counter() - cell_start
        metrics = merged_metrics(runs)
        assert metrics is not None
        cells.append(BenchCell(
            param=value,
            repeats=repeats,
            wall_s=wall,
            runs_per_s=repeats / wall if wall > 0 else float("inf"),
            messages_total=metrics.messages_total,
            steps=metrics.steps,
            deliveries=metrics.deliveries,
            events_executed=metrics.events_executed,
            max_comm_calls=metrics.max_comm_calls,
            fingerprint=cell_fingerprint(experiment, runs),
        ))
    meta: dict[str, Any] = {
        "title": experiment.title,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if profile:
        meta["profile"] = profile_cell(exp, grid[-1])
    return BenchResult(
        exp=exp,
        workers=workers,
        repeats=repeats,
        grid=grid,
        wall_s_total=time.perf_counter() - total_start,
        cells=cells,
        meta=meta,
    )


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------

@dataclass(slots=True)
class CellComparison:
    """One cell of a baseline-vs-current comparison."""

    param: int
    baseline_wall_s: float
    current_wall_s: float
    speedup: float           # >1 means the current run is faster
    regression: bool
    drift: bool              # fingerprints differ: behaviour changed


@dataclass(slots=True)
class BenchComparison:
    """A full comparison of a current run against a recorded baseline."""

    exp: str
    cells: list[CellComparison]
    comparable: bool         # same grid/repeats, so drift checks apply
    notes: list[str]

    @property
    def regressions(self) -> list[CellComparison]:
        """Cells whose wall-clock worsened beyond the tolerance."""
        return [cell for cell in self.cells if cell.regression]

    @property
    def drifted(self) -> list[CellComparison]:
        """Cells whose result fingerprints changed — a behaviour change."""
        return [cell for cell in self.cells if cell.drift]

    @property
    def ok(self) -> bool:
        """True iff no cell regressed and no fingerprint drifted."""
        return not self.regressions and not self.drifted

    def describe(self) -> str:
        """Human-readable per-cell report with a final verdict line."""
        lines = [f"bench comparison [{self.exp}]:"]
        for cell in self.cells:
            status = "ok"
            if cell.drift:
                status = "DRIFT"
            elif cell.regression:
                status = "REGRESSION"
            lines.append(
                f"  n={cell.param:<6} baseline {cell.baseline_wall_s:8.3f}s"
                f"  current {cell.current_wall_s:8.3f}s"
                f"  speedup {cell.speedup:5.2f}x  [{status}]"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        verdict = "OK" if self.ok else (
            "BEHAVIOUR DRIFTED" if self.drifted else "REGRESSED"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def compare_results(
    baseline: BenchResult,
    current: BenchResult,
    tolerance: float = REGRESSION_TOLERANCE,
    min_delta_s: float = REGRESSION_MIN_DELTA_S,
) -> BenchComparison:
    """Compare a current run against a baseline, flagging regressions.

    A cell regresses when its wall-clock exceeds the baseline's by more
    than ``tolerance`` relatively *and* ``min_delta_s`` absolutely (tiny
    cells jitter too much to judge by ratio alone).  Per-cell seeds are
    derived from ``(seed_base, value, i)`` independently of the
    surrounding grid, so whenever the repeat counts match, cell
    fingerprints are compared on every *common* grid value — extending a
    grid with new cells must not silence drift detection on the old
    ones.  Any difference is flagged as drift: a perf PR must not change
    behaviour.
    """
    if baseline.exp != current.exp:
        raise ValueError(
            f"cannot compare experiments {baseline.exp!r} and {current.exp!r}"
        )
    notes: list[str] = []
    comparable = baseline.repeats == current.repeats
    if not comparable:
        notes.append(
            "repeat counts differ from the baseline; fingerprint drift not checked"
        )
    elif baseline.grid != current.grid:
        notes.append(
            "grids differ from the baseline; drift checked on common cells, "
            "wall-clock totals not directly comparable"
        )
    if baseline.workers != current.workers:
        notes.append(
            f"worker counts differ (baseline {baseline.workers}, "
            f"current {current.workers}); wall-clock ratios mix scaling "
            "with per-run speed"
        )
    baseline_cells = {cell.param: cell for cell in baseline.cells}
    cells: list[CellComparison] = []
    for cell in current.cells:
        base = baseline_cells.get(cell.param)
        if base is None:
            continue
        speedup = base.wall_s / cell.wall_s if cell.wall_s > 0 else float("inf")
        cells.append(CellComparison(
            param=cell.param,
            baseline_wall_s=base.wall_s,
            current_wall_s=cell.wall_s,
            speedup=speedup,
            regression=(
                cell.wall_s > base.wall_s * (1.0 + tolerance)
                and cell.wall_s - base.wall_s > min_delta_s
            ),
            drift=comparable and cell.fingerprint != base.fingerprint,
        ))
    return BenchComparison(exp=current.exp, cells=cells,
                           comparable=comparable, notes=notes)


def verify_parallel_matches_serial(
    exp: str, workers: int, repeats: int = 3, full: bool = False
) -> tuple[bool, BenchResult, BenchResult]:
    """Run ``exp`` serially and with ``workers``; compare fingerprints.

    Returns ``(match, serial_result, parallel_result)`` — the automated
    guarantee behind ``repro bench --check-serial`` and the CI smoke job.
    """
    serial = run_experiment(exp, workers=1, repeats=repeats, full=full)
    parallel = run_experiment(exp, workers=workers, repeats=repeats, full=full)
    return serial.fingerprints == parallel.fingerprints, serial, parallel
