"""Process-parallel execution of sweeps and repeats.

The serial harness (:mod:`repro.harness.sweep`) runs every repetition of
every grid cell in one process.  This module fans the repetitions out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
results **bit-identical** to the serial path:

* Each repetition's seed is derived exactly as the serial path derives it
  — ``derive_seed(seed_base, "sweep/<value>/<i>")`` — so a run's entire
  random behaviour depends only on its own derived seed, never on which
  worker executed it or in what order.
* The simulator holds no process-global mutable state (message uids are
  per-:class:`~repro.sim.runtime.Simulation`), so executing runs in any
  partition across any number of processes yields the same per-run
  objects.

Workers are forked, not spawned: the measurement function — commonly a
closure or lambda over benchmark configuration — is stashed in a module
global *before* the pool starts and inherited by the children through
``fork``, so it never needs to be pickled.  Only the per-task
``(index, seed)`` pairs and the per-run results cross process boundaries.
Tasks are grouped into chunks to amortize that pickling.

When ``workers <= 1``, when the grid is trivially small, or when the
platform cannot fork (e.g. Windows), everything degrades gracefully to
the serial path — same seeds, same results, no subprocess machinery.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..sim.rng import derive_seed

P = TypeVar("P")
R = TypeVar("R")

#: The measurement function inherited by forked workers.  Set by
#: :func:`run_seeded_tasks` immediately before the pool forks; ``fork``
#: children see the parent's memory, so closures and lambdas work without
#: being picklable.
_WORKER_FN: Callable[[int, int], object] | None = None


def fork_available() -> bool:
    """True iff this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """The worker count ``workers=0``/``None`` resolves to (CPU count)."""
    return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument: ``None``/``0`` means all CPUs."""
    if workers is None or workers == 0:
        return default_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def chunk_tasks(tasks: Sequence[tuple[int, int]], workers: int,
                chunk_size: int | None = None) -> list[list[tuple[int, int]]]:
    """Split ``(index, seed)`` tasks into contiguous chunks for submission.

    The default aims at four chunks per worker — small enough to balance
    load when cells have uneven cost, large enough to amortize the
    executor's per-future pickling and IPC overhead.
    """
    if chunk_size is None:
        chunk_size = max(1, len(tasks) // (workers * 4) or 1)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [list(tasks[i:i + chunk_size]) for i in range(0, len(tasks), chunk_size)]


def _run_chunk(chunk: Sequence[tuple[int, int]]) -> list[tuple[int, object]]:
    """Worker-side: run the inherited measurement fn over one chunk."""
    fn = _WORKER_FN
    assert fn is not None, "worker forked before _WORKER_FN was set"
    return [(index, fn(index, seed)) for index, seed in chunk]


def run_seeded_tasks(
    fn: Callable[[int, int], R],
    tasks: Sequence[tuple[int, int]],
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Execute ``fn(index, seed)`` for every task; results in task order.

    The parallel backbone shared by :func:`parallel_repeat` and
    :func:`parallel_sweep`.  Results land at the list position of their
    task regardless of which worker finished first, so callers observe
    exactly the serial ordering.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1 or not fork_available():
        return [fn(index, seed) for index, seed in tasks]
    global _WORKER_FN
    results: list[R | None] = [None] * len(tasks)
    chunks = chunk_tasks(tasks, workers, chunk_size)
    _WORKER_FN = fn
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)), mp_context=context
        ) as pool:
            for chunk_result in pool.map(_run_chunk, chunks):
                for index, result in chunk_result:
                    results[index] = result
    finally:
        _WORKER_FN = None
    return results  # type: ignore[return-value]


def repeat_seeds(repeats: int, seed_base: int, label: str) -> list[int]:
    """The derived seed sequence the serial ``repeat`` uses, in order."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    return [derive_seed(seed_base, f"{label}/{i}") for i in range(repeats)]


def parallel_repeat(
    fn: Callable[[int], R],
    repeats: int,
    seed_base: int = 0,
    label: str = "repeat",
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Parallel drop-in for :func:`repro.harness.sweep.repeat`.

    Same derived seeds, same result order; repetitions execute across
    ``workers`` forked processes.
    """
    seeds = repeat_seeds(repeats, seed_base, label)
    tasks = list(enumerate(seeds))
    return run_seeded_tasks(
        lambda _index, seed: fn(seed), tasks, workers=workers, chunk_size=chunk_size
    )


def parallel_sweep(
    values: Iterable[P],
    fn: Callable[[P, int], R],
    repeats: int = 5,
    seed_base: int = 0,
    workers: int | None = None,
    chunk_size: int | None = None,
):
    """Parallel drop-in for :func:`repro.harness.sweep.sweep`.

    The whole grid — every ``(value, repetition)`` pair — is flattened
    into one task list so workers stay busy across cell boundaries, then
    folded back into :class:`~repro.harness.sweep.SweepCell` rows in grid
    order.  Per-cell counters still come from the runs' own ``Metrics``
    (fold them with ``cell.merged_metrics()`` /
    :func:`~repro.harness.sweep.merged_metrics`), so aggregation is
    identical to the serial path.
    """
    from .sweep import SweepCell  # late import; sweep.py imports us too

    grid = list(values)
    tasks: list[tuple[int, int]] = []
    for value_index, value in enumerate(grid):
        for i, seed in enumerate(repeat_seeds(repeats, seed_base, f"sweep/{value!r}")):
            tasks.append((value_index * repeats + i, seed))
    results = run_seeded_tasks(
        lambda index, seed: fn(grid[index // repeats], seed),
        tasks,
        workers=workers,
        chunk_size=chunk_size,
    )
    return [
        SweepCell(
            param=value,
            runs=tuple(results[index * repeats:(index + 1) * repeats]),
        )
        for index, value in enumerate(grid)
    ]
