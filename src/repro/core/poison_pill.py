"""The PoisonPill technique — Figure 1 of the paper.

Each participant announces that it is *about to* flip a coin (state
``Commit``), propagates that announcement to a quorum, flips a biased coin
(1 with probability ``1/sqrt(n)``), propagates the resulting priority, and
collects the status views of a quorum.  A low-priority processor dies iff
it observes some processor that is committed or high-priority in some view
and low-priority in none.

The commit announcement is the "poison pill": to learn a processor's flip
the adversary must first let it propagate ``Commit``, but that very
announcement already kills any low-priority processor scheduled after it —
the catch-22 that handicaps the adaptive adversary.

Guarantees (proved in the paper, checked by our tests):

* Claim 3.1 — if all participants return, at least one survives;
* Claim 3.2 — at most ``O(sqrt(n))`` survivors in expectation, under any
  adaptive schedule.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..sim import pidset
from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import AlgorithmFactory, ProcessAPI
from .protocol import Outcome, PillState, status_var


def default_bias(n: int) -> float:
    """The paper's coin bias: heads (high priority) with prob ``1/sqrt(n)``."""
    return 1.0 / math.sqrt(n) if n > 1 else 1.0


def poison_pill_death_verdict(views: "list[dict[int, PillState]]") -> Outcome:
    """The death rule of Figure 1, lines 9-11, as a pure function.

    Die iff some processor was seen committed or high-priority in a view
    and low-priority in none.  One pass accumulates both pidsets; the
    verdict is a single bit-op, replacing the
    O(|participants| x |views|) any-scans.
    """
    strong_seen = pidset.EMPTY
    low_seen = pidset.EMPTY
    for view in views:
        for j, state_j in view.items():
            if state_j is PillState.LOW:
                low_seen |= 1 << j
            else:  # COMMIT or HIGH
                strong_seen |= 1 << j
    return Outcome.DIE if strong_seen & ~low_seen else Outcome.SURVIVE


def poison_pill(
    api: ProcessAPI,
    namespace: str = "pp",
    bias: float | None = None,
) -> Iterator[Request]:
    """One PoisonPill phase; returns ``Outcome.SURVIVE`` or ``Outcome.DIE``.

    ``bias`` overrides the high-priority probability — used by the E8
    ablation to demonstrate that ``1/sqrt(n)`` is the optimal choice
    (Section 3.2's matching lower bound for this technique).
    """
    var = status_var(namespace)
    me = api.pid
    api.annotate("phase.enter", ns=namespace, kind="pp")
    api.put(var, me, PillState.COMMIT)                      # line 2
    yield Propagate(var, (me,))                             # line 3
    probability = default_bias(api.n) if bias is None else bias
    coin = api.flip(probability, label=f"{namespace}.coin")  # line 4
    api.put(var, me, PillState.LOW if coin == 0 else PillState.HIGH)  # 5-6
    yield Propagate(var, (me,))                             # line 7
    views = yield Collect(var)                              # line 8
    outcome = Outcome.SURVIVE                               # line 12
    if api.get(var, me) is PillState.LOW:                   # line 9
        outcome = poison_pill_death_verdict(views)          # lines 10-11
    api.annotate(
        "phase.exit", ns=namespace, kind="pp", outcome=outcome.value, coin=coin
    )
    return outcome


def make_poison_pill(
    namespace: str = "pp",
    bias: float | None = None,
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return poison_pill(api, namespace=namespace, bias=bias)

    return factory
