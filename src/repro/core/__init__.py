"""The paper's algorithms: PoisonPill sifting, leader election, renaming."""

from .doorway import doorway
from .heterogeneous import (
    heterogeneous_bias,
    heterogeneous_poison_pill,
    make_heterogeneous_poison_pill,
)
from .leader_elect import leader_elect, make_leader_elect
from .poison_pill import default_bias, make_poison_pill, poison_pill
from .preround import preround
from .protocol import (
    DOOR_KEY,
    HetStatus,
    Outcome,
    PillState,
    contended_var,
    door_var,
    round_var,
    status_var,
)
from .renaming import get_name, make_get_name

__all__ = [
    "DOOR_KEY",
    "HetStatus",
    "Outcome",
    "PillState",
    "contended_var",
    "default_bias",
    "door_var",
    "doorway",
    "get_name",
    "heterogeneous_bias",
    "heterogeneous_poison_pill",
    "leader_elect",
    "make_get_name",
    "make_heterogeneous_poison_pill",
    "make_leader_elect",
    "make_poison_pill",
    "poison_pill",
    "preround",
    "round_var",
    "status_var",
]
