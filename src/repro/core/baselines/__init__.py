"""Baseline algorithms the paper compares against (or improves upon)."""

from .linear_renaming import linear_renaming, make_linear_renaming
from .naive_sifter import make_naive_sifter, naive_sifter
from .tournament import bracket_levels, make_tournament, tournament
from .two_proc import (
    Match,
    make_two_processor_test_and_set,
    two_processor_test_and_set,
)

__all__ = [
    "Match",
    "bracket_levels",
    "linear_renaming",
    "make_linear_renaming",
    "make_naive_sifter",
    "make_tournament",
    "make_two_processor_test_and_set",
    "naive_sifter",
    "tournament",
    "two_processor_test_and_set",
]
