"""The simple balls-into-bins renaming baseline ([AAG+10]-style).

Each processor tries the names in a private uniformly random order,
competing for each via leader election, until it wins one.  No contention
information is shared, so a late processor can collide with already-taken
names again and again: the expected time complexity is ``Omega(n)``
trials for the last processor (Related Work, page 3) — the behaviour
experiment E5 contrasts with the paper's ``O(log^2 n)`` algorithm, whose
whole point is the shared ``Contended`` bookkeeping.
"""

from __future__ import annotations

from typing import Iterator

from ...sim.communicate import Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ..leader_elect import leader_elect
from ..protocol import Outcome


def linear_renaming(api: ProcessAPI, namespace: str = "lr") -> Iterator[Request]:
    """Try names in random order until one is won; returns the name.

    Returns ``None`` in the pathological case that every trial loses,
    which cannot happen in crash-free executions (each of the other
    ``n - 1`` processors claims at most one name).
    """
    remaining = list(range(api.n))
    while remaining:
        spot = api.choice(remaining, label=f"{namespace}.spot")
        remaining.remove(spot)
        outcome = yield from leader_elect(api, namespace=f"{namespace}.le{spot}")
        if outcome is Outcome.WIN:
            return spot
    return None


def make_linear_renaming(namespace: str = "lr") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return linear_renaming(api, namespace=namespace)

    return factory
