"""The tournament-tree baseline of Afek, Gafni, Tromp, Vitanyi [AGTV92].

The decades-old upper bound the paper's title is measured against: pair
the contenders into two-processor matches at the leaves of a binary
bracket; match winners advance level by level until a single overall
winner prevails.  The bracket has ``ceil(log2(n))`` levels and each match
costs O(1) expected communicate calls, so the time complexity is
``Theta(log n)`` — experiment E1 plots this against the paper's
``O(log* k)`` algorithm.

A processor at leaf ``pid`` plays match ``pid // 2`` at level 0; the
winner of match ``m`` at level ``l`` plays match ``m // 2`` at level
``l + 1``.  Empty sibling subtrees are byes, resolved by the round race
without any explicit detection (see :mod:`.two_proc`).
"""

from __future__ import annotations

import math
from typing import Iterator

from ...sim.communicate import Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ..protocol import Outcome
from .two_proc import two_processor_test_and_set


def bracket_levels(n: int) -> int:
    """Number of bracket levels needed for ``n`` leaf positions."""
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


def tournament(api: ProcessAPI, namespace: str = "tourn") -> Iterator[Request]:
    """Compete through the bracket; returns WIN or LOSE."""
    index = api.pid
    for level in range(bracket_levels(api.n)):
        index //= 2
        outcome = yield from two_processor_test_and_set(
            api, namespace=f"{namespace}.L{level}.M{index}"
        )
        if outcome is Outcome.LOSE:
            return Outcome.LOSE
    return Outcome.WIN


def make_tournament(namespace: str = "tourn") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return tournament(api, namespace=namespace)

    return factory
