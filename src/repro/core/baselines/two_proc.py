"""Two-processor randomized test-and-set: the tournament's match primitive.

The tournament baseline [AGTV92] pairs contenders into matches decided by
two-processor randomized consensus.  In our message-passing model a match
is realized by the round-race construction — the PreRound handshake of
[SSW91] combined with per-round coin sifting — restricted to the two
contenders of the match.  For two participants the expected number of
rounds is O(1) even against the strong adversary (the Claim A.4 argument
for small ``k``: the first processor to commit sees at most itself and its
opponent, so it flips high with probability at least 1/2, killing a
low-priority opponent).

A solo participant (a "bye", which happens whenever the sibling subtree
of the bracket is empty) wins after two rounds without waiting — the
round numbers decide (``R < r - 1``) — so the tournament needs no
explicit bye detection, which would be impossible to implement in an
asynchronous system anyway.
"""

from __future__ import annotations

from typing import Iterator

from ...sim.communicate import Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ..leader_elect import leader_elect


def two_processor_test_and_set(
    api: ProcessAPI,
    namespace: str = "match",
) -> Iterator[Request]:
    """Decide a match between (at most) two contenders; WIN or LOSE.

    The doorway is omitted: match-level linearizability is not needed
    inside a bracket, only the unique-winner property, which the round
    race provides (Lemma A.2).
    """
    outcome = yield from leader_elect(api, namespace=namespace, use_doorway=False)
    return outcome


def make_two_processor_test_and_set(namespace: str = "match") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return two_processor_test_and_set(api, namespace=namespace)

    return factory


# Alias matching the paper's terminology for tournament "matches".
Match = two_processor_test_and_set

__all__ = ["Match", "make_two_processor_test_and_set", "two_processor_test_and_set"]
