"""The broken strawman from the paper's introduction.

"Each processor flips a biased coin at the beginning of the phase, to
decide whether to give up (value 0) or continue (value 1), and
communicates its choice to others.  If at least one processor out of the
participants flips 1, all processors which flipped 0 can safely drop from
contention."

Against a *weak* adversary this sifts well; against the strong adaptive
adversary it fails completely: the adversary examines the flips and
schedules every 0-flipper to finish the phase before any 1-flipper's
announcement is delivered, so nobody observes a 1 and everyone survives
(experiment E7, driven by
:class:`~repro.adversary.coin_aware.CoinAwareAdversary`).

The contrast with PoisonPill is the paper's first key idea: committing
*before* flipping makes observing the flips costly for the adversary.
"""

from __future__ import annotations

import math
from typing import Iterator

from ...sim.communicate import Collect, Propagate, Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ..protocol import Outcome


def naive_sifter(
    api: ProcessAPI,
    namespace: str = "naive",
    bias: float | None = None,
) -> Iterator[Request]:
    """One naive sifting phase; returns SURVIVE or DIE.

    A processor survives iff it flipped 1 or saw no 1 in any collected
    view.  Safe (at least one survivor) but not sound against an adaptive
    scheduler.
    """
    var = f"{namespace}.Coin"
    me = api.pid
    probability = bias if bias is not None else (
        1.0 / math.sqrt(api.n) if api.n > 1 else 1.0
    )
    coin = api.flip(probability, label=f"{namespace}.coin")
    api.put(var, me, coin)
    yield Propagate(var, (me,))
    views = yield Collect(var)
    if coin == 1:
        return Outcome.SURVIVE
    if any(value == 1 for view in views for value in view.values()):
        return Outcome.DIE
    return Outcome.SURVIVE


def make_naive_sifter(
    namespace: str = "naive",
    bias: float | None = None,
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return naive_sifter(api, namespace=namespace, bias=bias)

    return factory
