"""The complete leader-election algorithm — Figure 6 of the paper.

Structure: pass the doorway once, then iterate rounds.  In round ``r`` a
participant first runs :func:`~repro.core.preround.preround` — returning
WIN or LOSE if the round numbers already decide the outcome — and
otherwise participates in a round-``r`` instance of Heterogeneous
PoisonPill, losing if it fails to survive.  Instances for different
rounds are completely disjoint (fresh register namespaces).

Guarantees (Theorem A.5): linearizable leader election; termination with
probability 1 under up to ``ceil(n/2) - 1`` crashes; expected
``O(log* k)`` communicate calls per processor and ``O(kn)`` total
messages for ``k`` participants.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.communicate import Request
from ..sim.process import AlgorithmFactory, ProcessAPI
from .doorway import doorway
from .heterogeneous import heterogeneous_poison_pill
from .poison_pill import poison_pill
from .preround import preround
from .protocol import Outcome

#: Sifting phases usable inside the round loop.  ``heterogeneous`` is the
#: paper's final construction (O(log* k) time); ``poison_pill`` realizes
#: the intermediate O(log log k)-style recursion mentioned at the end of
#: Section 3.1 (plain PoisonPill applied round after round).
SIFTERS = ("heterogeneous", "poison_pill")


def leader_elect(
    api: ProcessAPI,
    namespace: str = "le",
    use_doorway: bool = True,
    use_lists: bool = True,
    sifter: str = "heterogeneous",
) -> Iterator[Request]:
    """Compete for leadership; returns ``Outcome.WIN`` or ``Outcome.LOSE``.

    ``use_doorway`` exists for compositions that provide linearizability
    externally; ``use_lists`` is threaded to the Heterogeneous PoisonPill
    ablation (experiment E9); ``sifter`` selects the per-round sifting
    phase (see :data:`SIFTERS`).
    """
    if sifter not in SIFTERS:
        raise ValueError(f"unknown sifter {sifter!r}; expected one of {SIFTERS}")
    if use_doorway:
        if (yield from doorway(api, namespace)) is Outcome.LOSE:  # lines 63-64
            return Outcome.LOSE
    r = 1
    while True:                                                   # line 65
        outcome = yield from preround(api, r, namespace)          # line 66
        if outcome in (Outcome.WIN, Outcome.LOSE):                # lines 67-68
            return outcome
        if sifter == "heterogeneous":
            survived = yield from heterogeneous_poison_pill(
                api, namespace=f"{namespace}.hpp{r}", use_lists=use_lists
            )                                                     # line 69
        else:
            survived = yield from poison_pill(
                api, namespace=f"{namespace}.hpp{r}"
            )
        # Local-only observability (never propagated): the round loop's own
        # record of each sifting outcome, the internal ground truth the
        # event-stream aggregator's survivor curves are validated against.
        api.put(f"{namespace}.round_outcome", r, survived)
        api.annotate(
            "round.exit", round=r, ns=f"{namespace}.hpp{r}", outcome=survived.value
        )
        if survived is Outcome.DIE:                               # line 70
            return Outcome.LOSE
        r += 1                                                    # line 71


def make_leader_elect(
    namespace: str = "le",
    use_doorway: bool = True,
    use_lists: bool = True,
    sifter: str = "heterogeneous",
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return leader_elect(
            api,
            namespace=namespace,
            use_doorway=use_doorway,
            use_lists=use_lists,
            sifter=sifter,
        )

    return factory
