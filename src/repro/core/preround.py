"""The PreRound procedure — Figure 4 of the paper.

Before participating in sifting round ``r``, a processor propagates ``r``
as its current round number to a quorum, then collects round numbers from
a quorum.  With ``R`` the largest round number observed *for any other
processor*, the Saks-Shavit-Woll rule [SSW91] decides:

* ``r < R``      — someone is strictly ahead: LOSE;
* ``R < r - 1``  — everyone else is at least two rounds behind, and (by
  quorum intersection) can never catch up without observing ``r`` first
  and losing: WIN;
* otherwise      — PROCEED to the round-``r`` sifting phase.

Round numbers only grow, so the Round register uses max-merge.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import ProcessAPI
from ..sim.registers import POLICY_MAX
from .protocol import Outcome, round_var


def preround(api: ProcessAPI, r: int, namespace: str = "le") -> Iterator[Request]:
    """Announce round ``r``; returns WIN, LOSE, or PROCEED."""
    var = round_var(namespace)
    me = api.pid
    api.put(var, me, r, policy=POLICY_MAX)          # line 45
    yield Propagate(var, (me,))                     # line 46
    views = yield Collect(var)                      # line 47
    highest_other = max(
        (value for view in views for pid, value in view.items() if pid != me),
        default=0,
    )                                               # line 48
    if r < highest_other:                           # lines 49-50
        verdict = Outcome.LOSE
    elif highest_other < r - 1:                     # lines 51-52
        verdict = Outcome.WIN
    else:
        verdict = Outcome.PROCEED                   # line 53
    api.annotate(
        "preround", round=r, verdict=verdict.value, highest_other=highest_other
    )
    return verdict
