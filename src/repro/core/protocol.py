"""Shared vocabulary of the paper's protocols.

Outcome and status enumerations used across the leader-election stack,
plus the heterogeneous status record (priority + observed participant
list) of Figure 2.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple


class Outcome(Enum):
    """Return values of the protocols in Figures 1-6."""

    SURVIVE = "survive"
    DIE = "die"
    WIN = "win"
    LOSE = "lose"
    PROCEED = "proceed"


class PillState(Enum):
    """The status values of the PoisonPill technique (Figure 1).

    A processor first *commits* to flipping (takes the poison pill), then
    becomes low- or high-priority according to the flip.  The absent value
    (a processor that never participated) is represented by the key simply
    missing from the view.
    """

    COMMIT = "commit"
    LOW = "low"
    HIGH = "high"


class HetStatus(NamedTuple):
    """A Heterogeneous PoisonPill status: priority plus observed list.

    ``members`` is the ``l`` list of Figure 2 — the participants whose
    non-bottom status this processor observed right after committing.  It
    rides along with every subsequent priority announcement so that
    observers can compute the closed union ``L`` (Claim 3.3).

    The list is encoded as a :mod:`repro.sim.pidset` bitmask int (bit
    ``i`` set ⟺ pid ``i`` observed), so the death rule's unions are
    single ``|`` ops instead of per-element frozenset churn.
    """

    state: PillState
    members: int


def status_var(namespace: str) -> str:
    """Register name of the Status array inside ``namespace``."""
    return f"{namespace}.Status"


def round_var(namespace: str) -> str:
    """Register name of the Round array inside ``namespace``."""
    return f"{namespace}.Round"


def door_var(namespace: str) -> str:
    """Register name of the doorway flag inside ``namespace``."""
    return f"{namespace}.door"


def contended_var(namespace: str) -> str:
    """Register name of the renaming Contended array inside ``namespace``."""
    return f"{namespace}.Contended"


#: The single key under which the doorway flag is stored.
DOOR_KEY = 0
