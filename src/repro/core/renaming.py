"""The strong-renaming algorithm — Figure 3 of the paper.

Each processor repeatedly: collects contention information from a quorum,
merges newly contended names into its view, propagates that view, picks a
uniformly random name it still sees as uncontended, marks it contended,
and competes for it in a per-name leader election.  Winning the election
claims the name; losing triggers another iteration.

The analysis (Section 4) treats this as a balls-into-bins process whose
views are adversarially skewed, and still proves expected ``O(n^2)``
messages (Theorem 4.2) and ``O(log^2 n)`` time (Theorem A.13).

Names here are ``0 .. n-1`` (the paper's ``1 .. n`` shifted to Python
indexing).
"""

from __future__ import annotations

from typing import Iterator

from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import AlgorithmFactory, ProcessAPI
from ..sim.registers import POLICY_OR
from .leader_elect import leader_elect
from .protocol import Outcome, contended_var


def get_name(api: ProcessAPI, namespace: str = "rn") -> Iterator[Request]:
    """Acquire a unique name in ``0 .. n-1``; returns the name.

    The per-name leader elections run in disjoint register namespaces
    ``{namespace}.le{name}``; the shared ``Contended`` array uses sticky
    OR-merge, so contention information never disappears (Lemma A.7's
    premise).
    """
    var = contended_var(namespace)
    iteration = 0
    while True:                                                   # line 32
        # Local-only observability (never propagated): iteration start and
        # pick-time view, consumed by the Section 4 execution analyzer.
        api.put(f"{namespace}.iter", (api.pid, iteration, "start"), True)
        views = yield Collect(var)                                # line 33
        for j in range(api.n):                                    # lines 34-36
            if any(view.get(j, False) for view in views):
                api.put(var, j, True, policy=POLICY_OR)
        contended_now = tuple(j for j in range(api.n) if api.get(var, j, False))
        yield Propagate(var, contended_now)                       # line 37
        free = [j for j in range(api.n) if not api.get(var, j, False)]
        if not free:
            # Transiently possible only under crashes (a name whose every
            # contender failed); retry — fresh contention info may free up
            # nothing, but a destined win resolves elsewhere.  Cannot occur
            # in crash-free executions (see tests).
            iteration += 1
            continue
        spot = api.choice(free, label=f"{namespace}.spot")        # line 38
        api.annotate(
            "rename.pick", iter=iteration, spot=spot, free=len(free)
        )
        api.put(
            f"{namespace}.iter",
            (api.pid, iteration, "pick"),
            (contended_now, spot),
        )
        iteration += 1
        api.put(var, spot, True, policy=POLICY_OR)                # line 39
        outcome = yield from leader_elect(
            api, namespace=f"{namespace}.le{spot}"
        )                                                         # line 40
        yield Propagate(var, (spot,))                             # line 41
        if outcome is Outcome.WIN:                                # lines 42-43
            api.annotate("rename.claim", spot=spot, iterations=iteration)
            return spot


def make_get_name(namespace: str = "rn") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return get_name(api, namespace=namespace)

    return factory
