"""Heterogeneous PoisonPill — Figure 2 of the paper.

The plain PoisonPill cannot beat ``Theta(sqrt(n))`` survivors: against a
sequential schedule, any fixed bias loses on one side or the other
(Section 3.2).  The heterogeneous variant makes the bias *view-dependent*:
after committing, each processor records the list ``l`` of participants it
observed, flips 1 with probability ``log|l| / |l|`` (probability 1 when it
saw only itself), and attaches ``l`` to its announced priority.  The death
rule then closes over observed lists: a low-priority processor unions all
lists it saw into ``L`` and dies if some member of ``L`` was never seen
low-priority.

This buys the closure property of Claim 3.3 — the union of survivor lists
is downward-closed under "completed its commit no later than" — which
forces the adversary into a sequential-prefix structure and yields:

* Lemma 3.6 — ``O(log k)`` expected survivors that flipped 0;
* Lemma 3.7 — ``O(log^2 k)`` expected survivors that flipped 1.

The ``use_lists`` flag is an ablation hook (experiment E9): with lists
disabled the death rule only uses directly-observed participants, closure
fails, and the sequential adversary gets many more survivors.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..sim import pidset
from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import AlgorithmFactory, ProcessAPI
from .protocol import HetStatus, Outcome, PillState, status_var


def heterogeneous_bias(observed: int) -> float:
    """The view-dependent coin bias of Figure 2, lines 18-19."""
    if observed <= 1:
        return 1.0
    return min(1.0, math.log2(observed) / observed)


def heterogeneous_death_verdict(
    views: "list[dict[int, HetStatus]]",
    use_lists: bool = True,
) -> tuple[int, Outcome]:
    """The death rule of Figure 2, lines 26-29, as a pure function.

    Returns ``(learned, outcome)`` where ``learned`` is the closed union
    ``L`` as a :mod:`repro.sim.pidset` bitmask.  A single pass over the
    views accumulates both ``L`` and the pidset of processors ever seen
    low-priority; the verdict is then one bit-op (``learned & ~low_seen``
    non-empty ⟺ some learned pid was never seen LOW ⟺ DIE), replacing
    the O(|learned| x |views|) per-pid rescan.
    """
    learned = pidset.EMPTY
    low_seen = pidset.EMPTY
    for view in views:                                          # lines 26-27
        for j, status in view.items():
            learned |= 1 << j
            if use_lists:
                learned |= status.members
            if status.state is PillState.LOW:
                low_seen |= 1 << j
    outcome = Outcome.DIE if learned & ~low_seen else Outcome.SURVIVE
    return learned, outcome


def heterogeneous_poison_pill(
    api: ProcessAPI,
    namespace: str = "hpp",
    use_lists: bool = True,
) -> Iterator[Request]:
    """One Heterogeneous PoisonPill phase; returns SURVIVE or DIE."""
    var = status_var(namespace)
    me = api.pid
    api.annotate("phase.enter", ns=namespace, kind="hpp")
    api.put(var, me, HetStatus(PillState.COMMIT, pidset.EMPTY))  # line 14
    yield Propagate(var, (me,))                                 # line 15
    views = yield Collect(var)                                  # line 16
    observed = pidset.from_iterable(                            # line 17
        j for view in views for j in view
    )
    probability = heterogeneous_bias(pidset.popcount(observed))  # lines 18-19
    coin = api.flip(probability, label=f"{namespace}.coin")     # line 20
    state = PillState.LOW if coin == 0 else PillState.HIGH
    api.put(var, me, HetStatus(state, observed))                # lines 21-22
    yield Propagate(var, (me,))                                 # line 23
    views = yield Collect(var)                                  # line 24
    outcome = Outcome.SURVIVE                                   # line 30
    if state is PillState.LOW:                                  # line 25
        learned, outcome = heterogeneous_death_verdict(views, use_lists)
        # Local-only observability hook (never propagated): the L set this
        # processor computed, used by tests asserting Claim 3.3's closure.
        api.put(f"{namespace}.learned", me, learned)
    api.annotate(
        "phase.exit",
        ns=namespace,
        kind="hpp",
        outcome=outcome.value,
        coin=coin,
        observed=pidset.popcount(observed),
    )
    return outcome


def make_heterogeneous_poison_pill(
    namespace: str = "hpp",
    use_lists: bool = True,
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return heterogeneous_poison_pill(api, namespace=namespace, use_lists=use_lists)

    return factory
