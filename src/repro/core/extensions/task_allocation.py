"""Task allocation (do-all) from the renaming toolkit — future work of §6.

``n`` tasks must each be performed at least once by ``k`` cooperating
workers, despite asynchrony and crashes ([KS92, ABGG12] is the problem's
lineage; the paper lists it as a target for its techniques).  The
structure mirrors Figure 3's renaming loop: workers keep a shared sticky
``Done`` array, repeatedly collect it, pick a *uniformly random*
not-yet-done task from their view, perform it, mark it done, and
propagate — until their view shows everything done.

Unlike renaming there is no per-task leader election: duplicate
executions are wasted work, not safety violations, so the interesting
metric is the total number of executions (the "work"), which random
selection keeps near ``n + o(n)`` for fair schedules while the
no-coordination strawman (``replicated_do_all``: everyone does
everything) pays ``k * n``.

A task is marked done only *after* it was performed, so ``Done[u]``
implies some worker completed ``u`` even under crashes — the safety half
of do-all correctness.
"""

from __future__ import annotations

from typing import Iterator

from ...sim.communicate import Collect, Propagate, Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ...sim.registers import POLICY_OR


def _done_var(namespace: str) -> str:
    return f"{namespace}.Done"


def do_all(
    api: ProcessAPI,
    tasks: int | None = None,
    namespace: str = "da",
) -> Iterator[Request]:
    """Cooperate on ``tasks`` tasks; returns the tuple of tasks this
    worker executed (in execution order)."""
    total = tasks if tasks is not None else api.n
    var = _done_var(namespace)
    executed: list[int] = []
    while True:
        views = yield Collect(var)
        for task in range(total):
            if any(view.get(task, False) for view in views):
                api.put(var, task, True, policy=POLICY_OR)
        remaining = [
            task for task in range(total) if not api.get(var, task, False)
        ]
        if not remaining:
            return tuple(executed)
        task = api.choice(remaining, label=f"{namespace}.task")
        executed.append(task)  # the task is "performed" here
        # Local-only observability hook (never propagated): lets tests and
        # crash post-mortems see which tasks this worker actually ran.
        api.put(f"{namespace}.executed", api.pid, tuple(executed))
        api.put(var, task, True, policy=POLICY_OR)
        yield Propagate(var, (task,))


def replicated_do_all(
    api: ProcessAPI,
    tasks: int | None = None,
    namespace: str = "rda",
) -> Iterator[Request]:
    """The no-coordination strawman: every worker performs every task.

    Still announces completions (so observers can track progress), but
    ignores them — total work is exactly ``k * tasks``.
    """
    total = tasks if tasks is not None else api.n
    var = _done_var(namespace)
    executed = []
    for task in range(total):
        executed.append(task)
        api.put(var, task, True, policy=POLICY_OR)
        yield Propagate(var, (task,))
    return tuple(executed)


def make_do_all(tasks: int | None = None, namespace: str = "da") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return do_all(api, tasks=tasks, namespace=namespace)

    return factory


def make_replicated_do_all(
    tasks: int | None = None, namespace: str = "rda"
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return replicated_do_all(api, tasks=tasks, namespace=namespace)

    return factory
