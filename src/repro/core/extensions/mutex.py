"""Mutual exclusion from leader-election epochs — future work of §6.

Section 6 names mutual exclusion as a target for the paper's tools.
This extension builds a lock from a chain of leader-election instances,
one per *epoch*:

* a shared sticky array ``Released[e]`` marks epochs whose holder has
  released;
* to acquire, a client computes the first epoch not released in its
  view and competes in that epoch's leader election (instances are
  disjoint namespaces, exactly like renaming's per-name elections);
* the epoch winner holds the lock; losers wait for ``Released[e]`` to
  turn true in their view and retry at a later epoch.

Safety is inherited from leader election: each epoch has at most one
winner (Lemma A.2), and a client only targets epoch ``e`` after seeing
every earlier epoch released, so two concurrently-unreleased winners
would need two winners of one epoch.  Stale clients that target an
already-decided epoch simply lose at its doorway and retry.

Liveness holds under fair schedules with probability 1 as long as
holders release; a crashed holder orphans the lock (the usual limitation
of a test-and-set lock without failure detection, which the paper's
model cannot provide).

Clients log ``enter``/``exit`` markers through local register writes, so
a simulation recorded with ``record_events=True`` yields global-time
critical-section intervals that :func:`critical_section_intervals`
extracts and tests check for pairwise disjointness.
"""

from __future__ import annotations

from typing import Iterator

from ...sim.communicate import Collect, Propagate, Request
from ...sim.process import AlgorithmFactory, ProcessAPI
from ...sim.registers import POLICY_OR
from ...sim.runtime import SimulationResult
from ..leader_elect import leader_elect
from ..protocol import Outcome


def _released_var(namespace: str) -> str:
    return f"{namespace}.Released"


def lock_once(
    api: ProcessAPI,
    namespace: str = "mx",
    critical_steps: int = 1,
) -> Iterator[Request]:
    """Acquire the lock, spend ``critical_steps`` communicate calls in the
    critical section, release, and return the epoch that was held."""
    var = _released_var(namespace)
    while True:
        views = yield Collect(var)
        for view in views:
            for epoch, released in view.items():
                if released:
                    api.put(var, epoch, True, policy=POLICY_OR)
        epoch = 0
        while api.get(var, epoch, False):
            epoch += 1
        outcome = yield from leader_elect(api, namespace=f"{namespace}.le{epoch}")
        if outcome is Outcome.WIN:
            # ---- critical section ----
            api.put(f"{namespace}.cs", api.pid, ("enter", epoch))
            for _ in range(critical_steps):
                # Placeholder critical-section work: a quorum round-trip,
                # so the section has nonzero extent in global time.
                yield Propagate(f"{namespace}.cs_work", ())
            api.put(f"{namespace}.cs", api.pid, ("exit", epoch))
            # ---- release ----
            api.put(var, epoch, True, policy=POLICY_OR)
            yield Propagate(var, (epoch,))
            return epoch
        # Lost this epoch: wait until it is released in our view, then
        # retry (the next Collect refreshes the view).


def make_lock_once(
    namespace: str = "mx", critical_steps: int = 1
) -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return lock_once(api, namespace=namespace, critical_steps=critical_steps)

    return factory


def critical_section_intervals(
    result: SimulationResult, namespace: str = "mx"
) -> list[tuple[int, int, int, int]]:
    """Extract ``(pid, epoch, enter_clock, exit_clock)`` from the trace.

    Requires the simulation to have run with ``record_events=True``.
    Holders that crashed inside the section appear with ``exit_clock``
    equal to ``2**63`` (still holding at the end).
    """
    if not result.trace.events:
        raise ValueError(
            "critical-section extraction needs record_events=True"
        )
    var = f"{namespace}.cs"
    open_sections: dict[int, tuple[int, int]] = {}
    intervals: list[tuple[int, int, int, int]] = []
    for event in result.trace.events:
        if event.kind != "put":
            continue
        put_var, _key, value = event.detail
        if put_var != var:
            continue
        marker, epoch = value
        if marker == "enter":
            open_sections[event.pid] = (epoch, event.time)
        else:
            epoch_opened, entered = open_sections.pop(event.pid)
            intervals.append((event.pid, epoch_opened, entered, event.time))
    for pid, (epoch, entered) in open_sections.items():
        intervals.append((pid, epoch, entered, 2**63))
    return intervals


def assert_mutual_exclusion(
    result: SimulationResult, namespace: str = "mx"
) -> list[tuple[int, int, int, int]]:
    """Raise if any two critical sections overlap in global time."""
    intervals = sorted(critical_section_intervals(result, namespace), key=lambda i: i[2])
    for (pid_a, epoch_a, enter_a, exit_a), (pid_b, epoch_b, enter_b, exit_b) in zip(
        intervals, intervals[1:]
    ):
        if enter_b < exit_a:
            raise AssertionError(
                f"mutual exclusion violated: processor {pid_a} held epoch "
                f"{epoch_a} over [{enter_a}, {exit_a}] while processor "
                f"{pid_b} entered epoch {epoch_b} at {enter_b}"
            )
    return intervals
