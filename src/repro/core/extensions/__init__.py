"""Extensions built from the paper's toolkit.

Section 6 proposes applying the techniques to "other fundamental
distributed tasks, such as task allocation or mutual exclusion"; this
package carries out the task-allocation direction with the same
contention-bookkeeping machinery the renaming algorithm uses.
"""

from .mutex import (
    assert_mutual_exclusion,
    critical_section_intervals,
    lock_once,
    make_lock_once,
)
from .task_allocation import do_all, make_do_all, make_replicated_do_all, replicated_do_all

__all__ = [
    "assert_mutual_exclusion",
    "critical_section_intervals",
    "do_all",
    "lock_once",
    "make_do_all",
    "make_lock_once",
    "make_replicated_do_all",
    "replicated_do_all",
]
