"""The doorway mechanism — Figure 5 of the paper.

A standard linearizability device [AGTV92]: each participant first
collects the ``door`` flag from a quorum; if anyone already closed it, the
participant is "too late" and loses immediately.  Otherwise it closes the
door itself and propagates the closure to a quorum before proceeding.

This guarantees that no processor can lose before the eventual winner has
invoked the protocol (Lemma A.3): a losing processor either closed the
door or saw it closed, and by quorum intersection any later invocation
must observe a closed door.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import ProcessAPI
from ..sim.registers import POLICY_OR
from .protocol import DOOR_KEY, Outcome, door_var


def doorway(api: ProcessAPI, namespace: str = "le") -> Iterator[Request]:
    """Pass the doorway; returns PROCEED or LOSE."""
    var = door_var(namespace)
    views = yield Collect(var)                      # line 56
    if any(view.get(DOOR_KEY, False) for view in views):
        api.annotate("doorway", ns=namespace, outcome=Outcome.LOSE.value)
        return Outcome.LOSE                         # lines 57-58
    api.put(var, DOOR_KEY, True, policy=POLICY_OR)  # line 59
    yield Propagate(var, (DOOR_KEY,))               # line 60
    api.annotate("doorway", ns=namespace, outcome=Outcome.PROCEED.value)
    return Outcome.PROCEED                          # line 61
