"""Small-sample statistics for benchmark aggregation.

Pure-Python (no numpy dependency in the hot path) helpers producing the
mean / spread / quantile summaries printed by the benchmark tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Aggregate of one measured series."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float
    p90: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.stdev / math.sqrt(self.count) if self.count > 0 else 0.0

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.stderr:.2f} (max {self.maximum:.0f})"


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data."""
    if not sorted_values:
        raise ValueError("quantile of empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    fraction = position - low
    return float(sorted_values[low]) * (1 - fraction) + float(sorted_values[high]) * fraction


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of a measurement series."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty series")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        median=quantile(data, 0.5),
        p90=quantile(data, 0.9),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; requires strictly positive inputs."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("geometric mean of empty data")
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
