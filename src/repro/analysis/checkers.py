"""Correctness checkers for leader election, sifting, and renaming.

Each checker inspects a finished :class:`~repro.sim.runtime.SimulationResult`
and raises :class:`SpecificationViolation` with a precise diagnosis if the
execution violates the corresponding problem specification.  They encode
the paper's problem statements (Section 2) operationally:

* leader election — termination, unique winner, and the linearizability
  condition that no processor loses before the eventual winner's
  invocation has started (Lemmas A.1-A.3);
* sifting phases — at least one survivor when everybody returns
  (Claims 3.1 / A.1's analogue for a single phase);
* strong renaming — distinct names within ``0 .. n-1`` and termination
  of all correct participants (Lemma A.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.protocol import Outcome
from ..sim.runtime import SimulationResult


class SpecificationViolation(AssertionError):
    """An execution broke the problem specification being checked."""


@dataclass(frozen=True, slots=True)
class LeaderElectionReport:
    """Digest of a checked leader-election execution."""

    winner: int | None
    losers: tuple[int, ...]
    crashed: tuple[int, ...]
    undecided: tuple[int, ...]


def check_leader_election(result: SimulationResult) -> LeaderElectionReport:
    """Validate a leader-election execution; returns a report on success."""
    winners = [
        pid for pid, decision in result.decisions.items()
        if decision.result is Outcome.WIN
    ]
    losers = [
        pid for pid, decision in result.decisions.items()
        if decision.result is Outcome.LOSE
    ]
    strays = [
        (pid, decision.result)
        for pid, decision in result.decisions.items()
        if decision.result not in (Outcome.WIN, Outcome.LOSE)
    ]
    if strays:
        raise SpecificationViolation(f"non WIN/LOSE outcomes returned: {strays}")
    if len(winners) > 1:
        raise SpecificationViolation(f"multiple winners: {sorted(winners)}")
    crash_free = not result.crashed
    if crash_free and result.terminated and result.decisions and not winners:
        raise SpecificationViolation(
            "every participant returned LOSE in a crash-free execution "
            "(violates Lemma A.1)"
        )
    first_lose_response = min(
        (result.decisions[pid].decide_time for pid in losers), default=None
    )
    if first_lose_response is not None:
        if winners:
            winner_start = result.decisions[winners[0]].start_time
            if winner_start > first_lose_response:
                raise SpecificationViolation(
                    "a LOSE was returned before the winner invoked the "
                    f"protocol (lose at t={first_lose_response}, winner "
                    f"started at t={winner_start}); not linearizable"
                )
        else:
            # No winner returned: only legal if some pending operation
            # (crashed after starting, or still undecided) can be
            # linearized as the winner before the first LOSE response.
            pending_starts = [
                start
                for pid, start in result.start_times.items()
                if pid in result.crashed or pid in result.undecided
            ]
            if not any(start <= first_lose_response for start in pending_starts):
                raise SpecificationViolation(
                    "processors lost but no (possibly pending) operation "
                    "can be linearized as the winner before the first LOSE"
                )
    return LeaderElectionReport(
        winner=winners[0] if winners else None,
        losers=tuple(sorted(losers)),
        crashed=tuple(sorted(result.crashed)),
        undecided=tuple(sorted(result.undecided)),
    )


def count_survivors(result: SimulationResult) -> int:
    """Number of participants that returned SURVIVE from a sifting phase."""
    return sum(
        1 for decision in result.decisions.values()
        if decision.result is Outcome.SURVIVE
    )


def check_sifting_phase(result: SimulationResult) -> int:
    """Validate one sifting phase; returns the survivor count.

    Claim 3.1 (and its heterogeneous analogue): if all participants
    return, at least one must survive.  Only enforced for executions in
    which everyone returned and nobody crashed — with crashes, zero
    survivors among the returners is permitted only if someone crashed.
    """
    for pid, decision in result.decisions.items():
        if decision.result not in (Outcome.SURVIVE, Outcome.DIE):
            raise SpecificationViolation(
                f"processor {pid} returned {decision.result!r} from a "
                "sifting phase"
            )
    survivors = count_survivors(result)
    if result.terminated and not result.crashed and result.decisions:
        if survivors == 0:
            raise SpecificationViolation(
                "all participants died in a sifting phase (violates Claim 3.1)"
            )
    return survivors


def check_renaming(result: SimulationResult) -> dict[int, int]:
    """Validate a renaming execution; returns the ``pid -> name`` map."""
    names: dict[int, int] = {}
    for pid, decision in result.decisions.items():
        name = decision.result
        if not isinstance(name, int) or not 0 <= name < result.n:
            raise SpecificationViolation(
                f"processor {pid} returned invalid name {name!r} "
                f"(expected an int within [0, {result.n}))"
            )
        names[pid] = name
    assigned = list(names.values())
    if len(set(assigned)) != len(assigned):
        duplicates = sorted(
            name for name in set(assigned) if assigned.count(name) > 1
        )
        raise SpecificationViolation(f"duplicate names assigned: {duplicates}")
    if not result.crashed and not result.terminated:
        raise SpecificationViolation(
            "crash-free renaming execution did not terminate"
        )
    return names
