"""Growth-model fitting for benchmark series.

The benchmarks do not try to match the paper's absolute constants (our
substrate is a simulator, not the authors' testbed); they check *shape*:
does time grow like ``log n`` (tournament) or like ``log* n`` (PoisonPill
leader election)?  Do messages grow like ``n^2``?  These helpers fit the
candidate models by least squares and report goodness of fit, so tables
can print "best model: logstar" style verdicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .theory import log_star


@dataclass(frozen=True, slots=True)
class Fit:
    """A fitted ``y ~ a + b * g(x)`` model."""

    model: str
    intercept: float
    slope: float
    rmse: float

    def predict(self, feature: float) -> float:
        """Evaluate the fitted model at a (pre-transformed) feature value."""
        return self.intercept + self.slope * feature


def _least_squares(features: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Fit ``y = a + b f`` by ordinary least squares; returns (a, b, rmse)."""
    count = len(features)
    if count != len(ys) or count < 2:
        raise ValueError("need at least two (x, y) points")
    mean_f = sum(features) / count
    mean_y = sum(ys) / count
    denominator = sum((f - mean_f) ** 2 for f in features)
    if denominator == 0.0:
        slope = 0.0
    else:
        slope = sum(
            (f - mean_f) * (y - mean_y) for f, y in zip(features, ys)
        ) / denominator
    intercept = mean_y - slope * mean_f
    rmse = math.sqrt(
        sum((intercept + slope * f - y) ** 2 for f, y in zip(features, ys)) / count
    )
    return intercept, slope, rmse


def fit_model(
    xs: Sequence[float],
    ys: Sequence[float],
    transform: Callable[[float], float],
    model: str,
) -> Fit:
    """Fit ``y ~ a + b * transform(x)``."""
    intercept, slope, rmse = _least_squares([transform(x) for x in xs], ys)
    return Fit(model=model, intercept=intercept, slope=slope, rmse=rmse)


def fit_log(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """``y ~ a + b log2(x)`` — the tournament's growth."""
    return fit_model(xs, ys, math.log2, "log")


def fit_log_squared(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """``y ~ a + b log2(x)^2`` — the renaming time bound."""
    return fit_model(xs, ys, lambda x: math.log2(x) ** 2, "log^2")


def fit_logstar(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """``y ~ a + b log*(x)`` — the paper's leader-election growth."""
    return fit_model(xs, ys, lambda x: float(log_star(x)), "log*")


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """``y ~ a + b x``."""
    return fit_model(xs, ys, float, "linear")


def fit_power(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y ~ c x^p`` via log-log regression; slope is the exponent ``p``.

    Used to verify the ``n^2`` message-complexity growth (E2, E5) and the
    ``sqrt(n)`` survivor growth (E3): the returned ``slope`` should land
    near 2.0 and 0.5 respectively.
    """
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power fit requires positive data")
    intercept, slope, rmse = _least_squares(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return Fit(model="power", intercept=intercept, slope=slope, rmse=rmse)


def best_fit(xs: Sequence[float], ys: Sequence[float], candidates: Sequence[Fit]) -> Fit:
    """The candidate with the lowest RMSE (candidates pre-fitted on xs/ys)."""
    if not candidates:
        raise ValueError("no candidate fits supplied")
    return min(candidates, key=lambda fit: fit.rmse)
