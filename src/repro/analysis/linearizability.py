"""Brute-force linearizability checking for atomic-register histories.

Used to validate the ABD emulation (:mod:`repro.memory.abd`): a history
of concurrent reads/writes with real-time intervals is linearizable iff
there is a total order that (a) respects real-time precedence (an
operation that responded before another was invoked comes first) and
(b) makes every read return the latest preceding write (or the initial
value).

The search is exponential in general; histories extracted from tests are
small (one operation per participant), and memoization on
``(remaining-set, current-value)`` keeps it fast in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

READ = "read"
WRITE = "write"


@dataclass(frozen=True, slots=True)
class RegisterOp:
    """One completed register operation with its real-time interval."""

    proc: int
    kind: str  # READ or WRITE
    value: Any  # value written, or value returned by the read
    invoked: int
    responded: int

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.responded < self.invoked:
            raise ValueError("operation responded before it was invoked")


def _precedes(first: RegisterOp, second: RegisterOp) -> bool:
    """Real-time order: ``first`` completed before ``second`` started."""
    return first.responded < second.invoked


def check_register_linearizable(
    ops: Sequence[RegisterOp],
    initial: Hashable = None,
) -> list[RegisterOp] | None:
    """Find a linearization of ``ops``, or ``None`` if none exists.

    Returns the witness order on success so failures are debuggable.
    """
    ops = list(ops)
    indices = range(len(ops))
    failed: set[tuple[frozenset[int], Hashable]] = set()

    def search(
        remaining: frozenset[int], value: Hashable, order: list[int]
    ) -> list[int] | None:
        if not remaining:
            return order
        key = (remaining, value)
        if key in failed:
            return None
        for index in remaining:
            op = ops[index]
            # Real-time: nothing remaining may have completed before this
            # op was invoked.
            if any(
                other != index and _precedes(ops[other], op)
                for other in remaining
            ):
                continue
            if op.kind == READ and op.value != value:
                continue
            next_value = op.value if op.kind == WRITE else value
            result = search(remaining - {index}, next_value, order + [index])
            if result is not None:
                return result
        failed.add(key)
        return None

    witness = search(frozenset(indices), initial, [])
    if witness is None:
        return None
    return [ops[index] for index in witness]


def assert_register_linearizable(
    ops: Sequence[RegisterOp], initial: Hashable = None
) -> list[RegisterOp]:
    """Raise ``AssertionError`` with the history when not linearizable."""
    witness = check_register_linearizable(ops, initial)
    if witness is None:
        raise AssertionError(
            "history is not linearizable as an atomic register:\n"
            + "\n".join(
                f"  p{op.proc} {op.kind}({op.value!r}) "
                f"[{op.invoked}, {op.responded}]"
                for op in sorted(ops, key=lambda o: o.invoked)
            )
        )
    return witness
