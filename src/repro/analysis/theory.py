"""Closed-form quantities from the paper's analysis.

These are the *predicted* values the benchmarks compare measurements
against: iterated logarithms, the expected-survivor bounds of Claims
3.2 / Lemmas 3.6-3.7, the round recursion of Theorem A.5, and the
message-complexity floors of Corollary B.3.
"""

from __future__ import annotations

import math


def log_star(x: float, base: float = 2.0) -> int:
    """The iterated logarithm: how many times ``log`` until the value <= 1.

    ``log*`` grows absurdly slowly — it is at most 5 for every input that
    fits in the observable universe — which is exactly the paper's point.
    """
    if x < 0:
        raise ValueError("log_star is undefined for negative inputs")
    count = 0
    while x > 1.0:
        x = math.log(x, base)
        count += 1
    return count


def poison_pill_survivors(n: int) -> float:
    """Claim 3.2's bound: at most ``2 sqrt(n)`` expected survivors.

    ``sqrt(n)`` survivors by high priority plus ``sqrt(n)`` early
    0-flippers before the first 1.
    """
    return 2.0 * math.sqrt(n) if n > 1 else 1.0


def hpp_low_survivors(k: int) -> float:
    """Lemma 3.6: expected 0-flipping survivors is ``O(log k) + O(1)``.

    Claim 3.5 gives ``Pr[>= z survivors] = O(1/z)``; summing the tail up
    to ``k`` yields a harmonic bound ``~ln k + 1``.
    """
    return math.log(max(k, 1)) + 1.0


def hpp_high_survivors(k: int) -> float:
    """Lemma 3.7: expected 1-flippers is ``1 + sum_{l=2}^{k} log2(l)/l``.

    Computed exactly up to 100k terms; beyond that the integral
    ``int log2(x)/x dx = ln(x)^2 / (2 ln 2)`` approximates the tail.
    """
    k = max(k, 1)
    cutoff = 100_000
    exact_upto = min(k, cutoff)
    total = 1.0 + sum(math.log2(i) / i for i in range(2, exact_upto + 1))
    if k > cutoff:
        total += (math.log(k) ** 2 - math.log(cutoff) ** 2) / (2.0 * math.log(2))
    return total


def hpp_survivors(k: int) -> float:
    """Expected survivors of one Heterogeneous PoisonPill phase."""
    return hpp_low_survivors(k) + hpp_high_survivors(k)


def round_recursion(k: int, constant: float = 1.0) -> float:
    """One application of Theorem A.5's ``f(k) = C(log^2 k + 2 log k)``."""
    if k <= 1:
        return 0.0
    log_k = math.log2(k)
    return constant * (log_k * log_k + 2.0 * log_k)


def expected_rounds(k: int, constant: float = 1.0, floor: float = 64.0) -> int:
    """Iterate the round recursion until the participant bound is constant.

    Theorem A.5: after ``O(log* k)`` rounds the expected participant count
    is constant.  The recursion ``f(k) = log^2 k + 2 log k`` contracts only
    above its fixed point (around 55 for ``constant = 1``), so iteration
    stops at the fixed-point region — the "constant" of the theorem —
    or as soon as it dips under ``floor``.
    """
    rounds = 0
    remaining = float(k)
    while remaining > floor:
        reduced = round_recursion(remaining, constant)
        if reduced >= remaining:
            break  # reached the non-contracting (constant) region
        remaining = reduced
        rounds += 1
    return rounds


def tournament_levels(n: int) -> int:
    """Bracket depth of the [AGTV92] tournament baseline: ``ceil(log2 n)``."""
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


def message_lower_bound(k: int, n: int, alpha: float = 1.0) -> float:
    """Corollary B.3 / Theorem B.2 floor: ``alpha * k * n / 16`` messages."""
    return alpha * k * n / 16.0


def renaming_time_bound(n: int, constant: float = 1.0) -> float:
    """Theorem A.13: ``O(log^2 n)`` communicate calls per processor."""
    if n <= 1:
        return 1.0
    log_n = math.log2(n)
    return constant * log_n * log_n


def chernoff_upper_tail(mean: float, deviation: float) -> float:
    """Chernoff bound ``exp(-d^2 / (2 + d) * mu)`` for ``X >= (1+d) mu``.

    Used by tests that assert measured tail frequencies stay under the
    analytic envelope (e.g. Lemma 4.1's clean-iteration bound).
    """
    if deviation < 0:
        raise ValueError("deviation must be non-negative")
    return math.exp(-(deviation * deviation) / (2.0 + deviation) * mean)
