"""Execution analyzer for Section 4's renaming proof machinery.

The message/time analysis of the renaming algorithm rests on structural
definitions over an execution:

* the name order ``≺`` — names sorted by the first instant at which more
  than half of the processors view them contended (never-quorum names
  after, never-contended names last, index-order ties);
* the partition of the ordered names into groups ``G_1`` (first ~n/2),
  ``G_2`` (next ~n/4), ... and of time into *phases* (phase ``j`` ends
  when every name of ``G_j`` has reached its quorum instant);
* the classification of loop iterations as ``clean(j)`` / ``dirty(j)`` /
  ``cross(j)`` by their start phase and pick-time view.

This module reconstructs all of that from a recorded execution (the
event trace plus the iteration records the algorithm logs locally) and
provides checkers for the structural facts the proofs rely on:

* **Lemma A.7** — a name viewed contended in an earlier iteration
  ``≺``-precedes any name viewed free in a later iteration;
* **Lemma A.9** — at most ``n / 2^(j-1)`` processors ever contend for
  names in groups ``G_{j' >= j}``;
* **Claim A.11** — each processor runs at most one ``dirty(j)`` and at
  most one ``cross(j)`` iteration for every ``j``.

Requires the simulation to have been run with ``record_events=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.protocol import contended_var
from ..sim.messages import MessageKind
from ..sim.runtime import SimulationResult

_INFINITY = math.inf


@dataclass(slots=True)
class IterationRecord:
    """One getName loop iteration, as logged by the algorithm."""

    pid: int
    index: int
    start_clock: int
    pick_clock: int | None = None
    viewed_contended: frozenset[int] = frozenset()
    spot: int | None = None

    @property
    def completed_pick(self) -> bool:
        """True once this iteration committed to a spot."""
        return self.spot is not None


def group_sizes(n: int) -> list[int]:
    """Group sizes ``~n/2, ~n/4, ...`` covering all ``n`` names."""
    sizes = []
    remaining = n
    half = n
    while remaining > 0:
        half = max(1, half // 2)
        take = min(half, remaining)
        sizes.append(take)
        remaining -= take
    return sizes


@dataclass(slots=True)
class RenamingAnalysis:
    """The Section 4 structure of one recorded renaming execution."""

    n: int
    quorum_times: dict[int, float]
    order: list[int]                      # names sorted by ≺
    rank: dict[int, int]                  # name -> position in ≺
    group_of: dict[int, int]              # name -> group index (1-based)
    phase_ends: list[float]               # phase j ends at phase_ends[j-1]
    iterations: list[IterationRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_result(
        cls, result: SimulationResult, namespace: str = "rn"
    ) -> "RenamingAnalysis":
        """Reconstruct per-processor renaming iterations from a finished run."""
        if not result.trace.events:
            raise ValueError(
                "renaming analysis needs record_events=True on the simulation"
            )
        n = result.n
        var = contended_var(namespace)
        iter_var = f"{namespace}.iter"
        views: list[set[int]] = [set() for _ in range(n)]
        counts = [0] * n
        quorum_times: dict[int, float] = {}
        ever_contended: set[int] = set()
        crashed: set[int] = set()
        records: dict[tuple[int, int], IterationRecord] = {}

        def mark(pid: int, name: int, clock: int) -> None:
            if name in views[pid]:
                return
            views[pid].add(name)
            counts[name] += 1
            ever_contended.add(name)
            if name not in quorum_times and counts[name] > n // 2:
                quorum_times[name] = clock

        for event in result.trace.events:
            if event.kind == "crash":
                crashed.add(event.pid)
            elif event.kind == "put":
                put_var, key, value = event.detail
                if put_var == var and value is True:
                    mark(event.pid, key, event.time)
                elif put_var == iter_var:
                    pid, index, stage = key
                    record = records.setdefault(
                        (pid, index),
                        IterationRecord(pid=pid, index=index, start_clock=event.time),
                    )
                    if stage == "start":
                        record.start_clock = event.time
                    else:  # "pick"
                        contended_now, spot = value
                        record.pick_clock = event.time
                        record.viewed_contended = frozenset(contended_now)
                        record.spot = spot
            elif event.kind == "deliver":
                message = event.detail
                if (
                    message.kind is MessageKind.PROPAGATE
                    and message.var == var
                    and event.pid not in crashed
                ):
                    for key, entry in message.entries.items():
                        if entry[1] is True:
                            mark(event.pid, key, event.time)

        full_times = {
            name: quorum_times.get(name, _INFINITY) for name in range(n)
        }
        order = sorted(
            range(n),
            key=lambda name: (
                full_times[name],
                0 if name in ever_contended else 1,
                name,
            ),
        )
        rank = {name: position for position, name in enumerate(order)}
        group_of: dict[int, int] = {}
        position = 0
        for group_index, size in enumerate(group_sizes(n), start=1):
            for name in order[position:position + size]:
                group_of[name] = group_index
            position += size
        phase_ends = []
        position = 0
        for size in group_sizes(n):
            block = order[position:position + size]
            phase_ends.append(max(full_times[name] for name in block))
            position += size
        iterations = sorted(
            records.values(), key=lambda record: (record.pid, record.index)
        )
        return cls(
            n=n,
            quorum_times=full_times,
            order=order,
            rank=rank,
            group_of=group_of,
            phase_ends=phase_ends,
            iterations=iterations,
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def phase_of_clock(self, clock: float) -> int:
        """The (1-based) phase containing ``clock``."""
        for index, end in enumerate(self.phase_ends, start=1):
            if clock <= end:
                return index
        return len(self.phase_ends)

    def classify(self, record: IterationRecord) -> tuple[str, int]:
        """Classify an iteration as clean/dirty (by start phase) and note
        cross-ness separately via :meth:`is_cross`."""
        phase = self.phase_of_clock(record.start_clock)
        later_contended = any(
            self.group_of[name] > phase for name in record.viewed_contended
        )
        return ("dirty" if later_contended else "clean", phase)

    def is_cross(self, record: IterationRecord) -> int | None:
        """If the iteration contends for a name of a strictly later group
        than its start phase, return that group (the ``cross(j)`` index)."""
        if record.spot is None:
            return None
        start_phase = self.phase_of_clock(record.start_clock)
        spot_group = self.group_of[record.spot]
        if spot_group > start_phase:
            return spot_group
        return None

    # ------------------------------------------------------------------
    # Structural checks (the facts the Section 4 proofs rely on)
    # ------------------------------------------------------------------

    def check_lemma_a7(self) -> None:
        """A name viewed contended earlier ≺-precedes one viewed free later."""
        by_pid: dict[int, list[IterationRecord]] = {}
        for record in self.iterations:
            if record.completed_pick:
                by_pid.setdefault(record.pid, []).append(record)
        for pid, records in by_pid.items():
            records.sort(key=lambda record: record.index)
            seen_contended: set[int] = set()
            for record in records:
                viewed_free = set(range(self.n)) - set(record.viewed_contended)
                for earlier in seen_contended:
                    for free in viewed_free:
                        if self.rank[earlier] >= self.rank[free]:
                            raise AssertionError(
                                f"Lemma A.7 violated by processor {pid}: name "
                                f"{earlier} was viewed contended before name "
                                f"{free} was viewed free, yet {earlier} does "
                                f"not ≺-precede {free}"
                            )
                seen_contended |= set(record.viewed_contended)

    def check_lemma_a9(self) -> None:
        """At most ``n / 2^(j-1)``-ish processors contend in groups >= j.

        For n not a power of two the exact form of the bound is
        ``n - |names in groups before j|`` (the paper's ``n / 2^(j-1)``
        is this quantity under exact halving): every earlier name is
        contended before any group->=j name is, and its winner-to-be
        never contends at or beyond group j (Lemma A.7).
        """
        sizes = group_sizes(self.n)
        earlier = 0
        for j in range(1, len(sizes) + 1):
            contenders = {
                record.pid
                for record in self.iterations
                if record.spot is not None and self.group_of[record.spot] >= j
            }
            bound = self.n - earlier
            if len(contenders) > bound:
                raise AssertionError(
                    f"Lemma A.9 violated: {len(contenders)} processors "
                    f"contend in groups >= {j}, bound is {bound}"
                )
            earlier += sizes[j - 1]

    def check_claim_a11(self) -> None:
        """Each processor: at most one dirty(j) and one cross(j) per j."""
        dirty_counts: dict[tuple[int, int], int] = {}
        cross_counts: dict[tuple[int, int], int] = {}
        for record in self.iterations:
            if not record.completed_pick:
                continue
            kind, phase = self.classify(record)
            if kind == "dirty":
                key = (record.pid, phase)
                dirty_counts[key] = dirty_counts.get(key, 0) + 1
                if dirty_counts[key] > 1:
                    raise AssertionError(
                        f"Claim A.11 violated: processor {record.pid} ran "
                        f"more than one dirty({phase}) iteration"
                    )
            cross_group = self.is_cross(record)
            if cross_group is not None:
                key = (record.pid, cross_group)
                cross_counts[key] = cross_counts.get(key, 0) + 1
                if cross_counts[key] > 1:
                    raise AssertionError(
                        f"Claim A.11 violated: processor {record.pid} ran "
                        f"more than one cross({cross_group}) iteration"
                    )

    def check_all(self) -> None:
        """Run every structural check; raises AssertionError on violation."""
        self.check_lemma_a7()
        self.check_lemma_a9()
        self.check_claim_a11()
