"""Command-line interface: run any experiment without writing code.

Examples::

    python -m repro elect  --n 32 --adversary random --seed 7
    python -m repro elect  --n 32 --algorithm tournament
    python -m repro sift   --n 64 --kind poison_pill --adversary sequential
    python -m repro rename --n 16 --algorithm paper --adversary quorum_split
    python -m repro sweep  --task elect --ns 4 8 16 32 --repeats 5 --workers 4
    python -m repro bench  --exp e1 --workers 4 --baseline --out bench/
    python -m repro bench  --exp e2 --compare bench/BENCH_E2.json
    python -m repro trace  --n 16 --adversary sequential --seed 7 --out run.jsonl
    python -m repro trace  --n 16 --out run.jsonl --snapshots live.jsonl
    python -m repro replay run.jsonl
    python -m repro report run.jsonl
    python -m repro report run.jsonl --critical-path
    python -m repro report run.jsonl --lineage 3
    python -m repro watch  live.jsonl
    python -m repro check  --protocol leader_election --budget 200 --workers 4
    python -m repro check  --protocol naive_sifter --budget 200 --out-dir artifacts/
    python -m repro check  --replay artifacts/violation-....shrunk.json
    python -m repro net    --task elect --n 6 --seed 0
    python -m repro net    --task elect --n 6 --drop 0.15 --delay 0.3 --chaos-seed 1
    python -m repro serve  --port 7007 --duration 30
    python -m repro serve  --load --keys 1000 --drop 0.05 --telemetry svc.jsonl
"""

from __future__ import annotations

import argparse
import os
from typing import Sequence

from .adversary import ADVERSARY_FACTORIES
from .analysis.stats import summarize
from .analysis.theory import log_star
from .harness.runners import (
    LEADER_ALGORITHMS,
    RENAMING_ALGORITHMS,
    SIFTER_KINDS,
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)
from .harness.bench import EXPERIMENTS as BENCH_EXPERIMENTS
from .harness.sweep import sweep
from .harness.tables import Table

ADVERSARIES = sorted(ADVERSARY_FACTORIES)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'How to Elect a Leader Faster than a "
            "Tournament' (PODC 2015): leader election, sifting phases, "
            "and renaming in a simulated asynchronous system."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--n", type=int, default=16, help="system size")
        p.add_argument("--k", type=int, default=None, help="participants (default n)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--adversary", choices=ADVERSARIES, default="random")
        p.add_argument(
            "--pattern",
            choices=("first", "last", "spread", "random"),
            default="first",
            help="which pids participate",
        )

    elect = sub.add_parser("elect", help="run one leader election")
    common(elect)
    elect.add_argument("--algorithm", choices=LEADER_ALGORITHMS, default="poison_pill")

    sift = sub.add_parser("sift", help="run one sifting phase")
    common(sift)
    sift.add_argument("--kind", choices=SIFTER_KINDS, default="heterogeneous")
    sift.add_argument("--bias", type=float, default=None)

    rename = sub.add_parser("rename", help="run one renaming execution")
    common(rename)
    rename.add_argument("--algorithm", choices=RENAMING_ALGORITHMS, default="paper")

    sweep_p = sub.add_parser("sweep", help="sweep n and print a summary table")
    sweep_p.add_argument("--task", choices=("elect", "sift", "rename"), default="elect")
    sweep_p.add_argument("--ns", type=int, nargs="+", default=[4, 8, 16, 32])
    sweep_p.add_argument("--repeats", type=int, default=3)
    sweep_p.add_argument("--adversary", choices=ADVERSARIES, default="random")
    sweep_p.add_argument("--algorithm", default=None)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (1 = serial, 0 = all CPUs)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run a measured benchmark sweep; record or compare baselines",
    )
    bench_p.add_argument(
        "--exp", choices=sorted(BENCH_EXPERIMENTS), nargs="+", default=["e1"],
        help="experiment grids to run (DESIGN.md claim ids)",
    )
    bench_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per cell (1 = serial, 0 = all CPUs)",
    )
    bench_p.add_argument("--repeats", type=int, default=3)
    bench_p.add_argument(
        "--full", action="store_true", help="use the larger EXPERIMENTS.md grids"
    )
    bench_p.add_argument(
        "--baseline", action="store_true",
        help="write BENCH_<EXP>.json baselines into --out",
    )
    bench_p.add_argument(
        "--out", default=".", help="directory for baseline files (default: cwd)"
    )
    bench_p.add_argument(
        "--compare", default=None, metavar="BENCH_JSON_OR_DIR",
        help=(
            "compare against a recorded baseline (a file, or a directory "
            "holding BENCH_<EXP>.json per experiment); exit 1 on "
            "regression/drift"
        ),
    )
    bench_p.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help=(
            "relative wall-clock slowdown tolerated before a cell counts "
            "as a regression (default 0.25; raise on noisy CI runners — "
            "fingerprint drift is always fatal regardless)"
        ),
    )
    bench_p.add_argument(
        "--check-serial", action="store_true",
        help="also run serially and verify parallel results are identical",
    )
    bench_p.add_argument(
        "--profile", action="store_true",
        help=(
            "re-run the largest grid cell once under cProfile and embed "
            "the top-20 cumulative-time functions in the baseline meta"
        ),
    )
    bench_p.add_argument(
        "--render-tables", action="store_true",
        help=(
            "skip the sweep; render the BENCH_*.json baselines in --out "
            "as <out>/bench_tables.txt"
        ),
    )

    trace_p = sub.add_parser(
        "trace", help="run one task and record its event stream to JSONL"
    )
    common(trace_p)
    trace_p.add_argument(
        "--task", choices=("elect", "sift", "rename"), default="elect"
    )
    trace_p.add_argument(
        "--algorithm", default=None,
        help="algorithm/sifter kind for the task (task default when omitted)",
    )
    trace_p.add_argument(
        "--out", default="trace.jsonl", help="output trace path (JSONL)"
    )
    trace_p.add_argument(
        "--snapshots", default=None, metavar="OUT_JSONL",
        help="also stream per-round metrics snapshots to this path",
    )

    replay_p = sub.add_parser(
        "replay",
        help="re-drive a recorded trace and verify a byte-identical stream",
    )
    replay_p.add_argument("trace", help="path of a trace recorded by `repro trace`")

    report_p = sub.add_parser(
        "report",
        help="print per-round survivor and message rollups of a recorded trace",
    )
    report_p.add_argument("trace", help="path of a recorded trace (JSONL)")
    report_p.add_argument(
        "--critical-path", action="store_true",
        help="add per-decision critical-path depths (happens-before analysis)",
    )
    report_p.add_argument(
        "--lineage", type=int, default=None, metavar="PID",
        help="print the message chain behind this processor's state",
    )

    watch_p = sub.add_parser(
        "watch",
        help=(
            "tail a live metrics snapshot stream (written by `repro net "
            "--telemetry` or `repro trace --snapshots`) and render a "
            "refreshing summary"
        ),
    )
    watch_p.add_argument("snapshots", help="path of a snapshot stream (JSONL)")
    watch_p.add_argument(
        "--interval", type=float, default=0.2,
        help="poll interval while following (seconds)",
    )
    watch_p.add_argument(
        "--timeout", type=float, default=30.0,
        help="give up if the stream stops growing for this long (seconds)",
    )
    watch_p.add_argument(
        "--no-follow", dest="follow", action="store_false", default=True,
        help="render what is on disk now and exit (no tailing)",
    )
    watch_p.add_argument(
        "--prometheus", action="store_true",
        help="print the last snapshot in Prometheus text format and exit",
    )

    from .check.explore import DEFAULT_ADVERSARIES, MODES
    from .check.invariants import INVARIANTS, PROTOCOLS

    check_p = sub.add_parser(
        "check",
        help=(
            "explore schedules of a protocol and check the paper's "
            "invariants; shrink and persist any violation"
        ),
    )
    check_p.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="leader_election",
        help="protocol to check (includes known-bad negative controls)",
    )
    check_p.add_argument("--n", type=int, default=16, help="system size")
    check_p.add_argument(
        "--k", type=int, default=None, help="participants (default n)"
    )
    check_p.add_argument("--seed", type=int, default=0, help="master seed")
    check_p.add_argument(
        "--budget", type=int, default=200, help="total executions to explore"
    )
    check_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, 0 = all CPUs)",
    )
    check_p.add_argument(
        "--invariants", nargs="+", default=None, metavar="NAME",
        choices=sorted(INVARIANTS),
        help="restrict to these invariants (default: all for the task)",
    )
    check_p.add_argument(
        "--modes", nargs="+", default=list(MODES), choices=MODES,
        help="exploration modes to use",
    )
    check_p.add_argument(
        "--adversaries", nargs="+", default=list(DEFAULT_ADVERSARIES),
        choices=ADVERSARIES,
        help="scheduler registry names to rotate through",
    )
    check_p.add_argument(
        "--pattern",
        choices=("first", "last", "spread", "random"),
        default="first",
        help="which pids participate",
    )
    check_p.add_argument(
        "--depth", type=int, default=4,
        help="systematic mode: max choice-prefix depth",
    )
    check_p.add_argument(
        "--branching", type=int, default=4,
        help="systematic mode: choices considered per decision point",
    )
    no_shrink = check_p.add_mutually_exclusive_group()
    no_shrink.add_argument(
        "--shrink", dest="shrink", action="store_true", default=True,
        help="minimize violating schedules and write artifacts (default)",
    )
    no_shrink.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="report violations without shrinking",
    )
    check_p.add_argument(
        "--out-dir", default=".",
        help="directory for violation artifacts (default: cwd)",
    )
    check_p.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="TICKS",
        help=(
            "snapshot simulation state every that-many schedule entries "
            "so shrinking and (with --workers 1) systematic exploration "
            "fork mid-schedule instead of re-executing from tick 0"
        ),
    )
    check_p.add_argument(
        "--replay", default=None, metavar="ARTIFACT_JSON",
        help=(
            "re-execute a shrunk violation artifact and verify it "
            "reproduces byte-identically (ignores exploration flags)"
        ),
    )

    net_p = sub.add_parser(
        "net",
        help=(
            "run the unchanged protocol over real localhost sockets "
            "(one OS process per node), optionally under fault injection"
        ),
    )
    net_p.add_argument(
        "--task", choices=("elect", "sift", "rename"), default="elect"
    )
    net_p.add_argument(
        "--algorithm", default=None,
        help="algorithm for the task (task default when omitted)",
    )
    net_p.add_argument("--n", type=int, default=6, help="node processes to spawn")
    net_p.add_argument(
        "--k", type=int, default=None, help="participants (default n)"
    )
    net_p.add_argument(
        "--pattern",
        choices=("first", "last", "spread", "random"),
        default="first",
        help="which pids participate",
    )
    net_p.add_argument("--seed", type=int, default=0, help="master seed")
    net_p.add_argument(
        "--chaos", default=None, metavar="PLAN_JSON",
        help="fault-injection plan file (overrides --drop/--delay/--dup)",
    )
    net_p.add_argument(
        "--drop", type=float, default=0.0, help="per-frame drop probability"
    )
    net_p.add_argument(
        "--delay", type=float, default=0.0, help="per-frame delay probability"
    )
    net_p.add_argument(
        "--dup", type=float, default=0.0, help="per-frame duplicate probability"
    )
    net_p.add_argument(
        "--delay-ms", type=float, nargs=2, default=(1.0, 25.0),
        metavar=("LO", "HI"), help="uniform delay range when a frame is delayed",
    )
    net_p.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the fault plan's RNG streams",
    )
    net_p.add_argument(
        "--trace", default=None, metavar="OUT_JSONL",
        help="merge all nodes' obs event streams into one JSONL trace",
    )
    net_p.add_argument(
        "--telemetry", default=None, metavar="OUT_JSONL",
        help=(
            "stream merged cluster metrics snapshots (RPC latency "
            "percentiles, retries, chaos counters) to this path; tail it "
            "with `repro watch`"
        ),
    )
    net_p.add_argument(
        "--telemetry-interval", type=float, default=0.5,
        help="seconds between per-node telemetry reports",
    )
    net_p.add_argument(
        "--timeout", type=float, default=120.0,
        help="wall-clock budget for the whole run (seconds)",
    )
    net_p.add_argument(
        "--rpc-timeout", type=float, default=0.25,
        help="per-RPC timeout before a retry with backoff (seconds)",
    )
    net_p.add_argument(
        "--no-check", dest="check", action="store_false", default=True,
        help="skip the repro.check run-invariant evaluation",
    )

    serve_p = sub.add_parser(
        "serve",
        help=(
            "run the keyed election service (leases, epochs, failover) "
            "or its load scenario; exit 1 on invariant violation, 2 on "
            "runtime failure"
        ),
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = pick a free one and print it)",
    )
    serve_p.add_argument("--seed", type=int, default=0, help="election seed")
    serve_p.add_argument(
        "--ttl", type=float, default=5000.0, metavar="MS",
        help="default lease TTL in milliseconds",
    )
    serve_p.add_argument(
        "--grace", type=float, default=0.25, metavar="FRAC",
        help="fraction of the TTL spent in the expiring grace window",
    )
    serve_p.add_argument(
        "--election", choices=("draw", "sim"), default="draw",
        help=(
            "how a contested handoff picks its winner: a seeded draw, or "
            "a full simulated leader election among the waiters"
        ),
    )
    serve_p.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop serving after this many seconds (default: until Ctrl-C)",
    )
    serve_p.add_argument(
        "--load", action="store_true",
        help="run the in-process load scenario instead of serving",
    )
    serve_p.add_argument(
        "--keys", type=int, default=1000,
        help="load: concurrent named elections",
    )
    serve_p.add_argument(
        "--contenders", type=int, default=3,
        help="load: logical clients contending per key",
    )
    serve_p.add_argument(
        "--rounds", type=int, default=2,
        help="load: acquire/hold/release cycles per contender",
    )
    serve_p.add_argument(
        "--sessions", type=int, default=8,
        help="load: TCP sessions the contenders multiplex over",
    )
    serve_p.add_argument(
        "--hold-ms", type=float, default=1.0,
        help="load: how long each grant is held before release",
    )
    serve_p.add_argument(
        "--crash-sessions", type=int, default=1,
        help="load: sessions aborted while holding leases (failover phase)",
    )
    serve_p.add_argument(
        "--chaos", default=None, metavar="PLAN_JSON",
        help="fault-injection plan file (overrides --drop/--delay/--dup)",
    )
    serve_p.add_argument(
        "--drop", type=float, default=0.0, help="per-frame drop probability"
    )
    serve_p.add_argument(
        "--delay", type=float, default=0.0, help="per-frame delay probability"
    )
    serve_p.add_argument(
        "--dup", type=float, default=0.0, help="per-frame duplicate probability"
    )
    serve_p.add_argument(
        "--delay-ms", type=float, nargs=2, default=(1.0, 25.0),
        metavar=("LO", "HI"), help="uniform delay range when a frame is delayed",
    )
    serve_p.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the fault plan's RNG streams",
    )
    serve_p.add_argument(
        "--telemetry", default=None, metavar="OUT_JSONL",
        help=(
            "stream service metrics snapshots (grants, acquire/failover "
            "latency percentiles) to this path; tail with `repro watch`"
        ),
    )
    serve_p.add_argument(
        "--telemetry-interval", type=float, default=0.5,
        help="seconds between telemetry snapshots",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=300.0,
        help="load: wall-clock budget for the whole scenario (seconds)",
    )
    serve_p.add_argument(
        "--no-check", dest="check", action="store_false", default=True,
        help="skip the repro.check lease-invariant evaluation",
    )

    soak_p = sub.add_parser(
        "soak",
        help=(
            "time-boxed chaos soak: the election service under a rolling "
            "phased fault plan, with mid-stream invariant gating, node "
            "kill/restart-and-recover, a mid-run service restart, and a "
            "replayable incident artifact on violation; exit 1 on "
            "violation, 2 on runtime failure"
        ),
    )
    soak_p.add_argument(
        "--duration", type=float, default=60.0, metavar="S",
        help="soak length in seconds (a violation ends it early)",
    )
    soak_p.add_argument("--seed", type=int, default=0, help="master seed")
    soak_p.add_argument(
        "--profile", default="rolling",
        help="chaos profile from the registry (see `repro soak --list-profiles`)",
    )
    soak_p.add_argument(
        "--list-profiles", action="store_true",
        help="list the chaos-profile registry and exit",
    )
    soak_p.add_argument(
        "--n", type=int, default=5,
        help="partition universe and net-episode election size",
    )
    soak_p.add_argument(
        "--keys", type=int, default=2, help="independent named elections"
    )
    soak_p.add_argument(
        "--contenders", type=int, default=3, help="sessions contending per key"
    )
    soak_p.add_argument(
        "--ttl", type=float, default=400.0, metavar="MS",
        help="lease TTL in milliseconds",
    )
    soak_p.add_argument(
        "--hold-ms", type=float, default=15.0,
        help="how long each grant is held before release",
    )
    soak_p.add_argument(
        "--kill-every", type=int, default=6, metavar="WINS",
        help=(
            "each contender aborts its session (no release) roughly every "
            "this many wins, then must restart-and-recover; 0 disables"
        ),
    )
    soak_p.add_argument(
        "--restart-service-at", type=float, default=0.5, metavar="FRAC",
        help=(
            "restart the whole service at this fraction of the duration, "
            "carrying its fencing namespace over; negative disables"
        ),
    )
    soak_p.add_argument(
        "--episode-every", type=float, default=None, metavar="S",
        help=(
            "every S seconds run a full `repro net` election under the "
            "chaos phase active at launch and stream its trace through "
            "the checker (default: off)"
        ),
    )
    soak_p.add_argument(
        "--out-dir", default=".",
        help="where episode traces and incident artifacts are written",
    )
    soak_p.add_argument(
        "--inject-violation", type=float, default=None, metavar="S",
        help=(
            "negative control: after S seconds forge a stale-epoch double "
            "grant that the mid-stream monitor must catch"
        ),
    )
    soak_p.add_argument(
        "--replay", default=None, metavar="INCIDENT_JSON",
        help=(
            "do not soak; deterministically re-verify a recorded incident "
            "artifact (exit 0 when it replays to the recorded verdict)"
        ),
    )
    return parser


def _cmd_elect(args) -> int:
    run = run_leader_election(
        n=args.n, k=args.k, algorithm=args.algorithm,
        adversary=args.adversary, seed=args.seed, pattern=args.pattern,
    )
    print(f"winner:        processor {run.winner}")
    print(f"rounds:        {run.rounds} (log* k = {log_star(run.k)})")
    print(f"comm calls:    {run.max_comm_calls}")
    print(f"messages:      {run.messages_total:,}")
    return 0


def _cmd_sift(args) -> int:
    run = run_sifting_phase(
        n=args.n, k=args.k, kind=args.kind, adversary=args.adversary,
        seed=args.seed, pattern=args.pattern, bias=args.bias, check=False,
    )
    print(f"survivors:     {run.survivors} / {run.k} "
          f"({run.survivor_fraction:.0%})")
    print(f"messages:      {run.result.metrics.messages_total:,}")
    return 0


def _cmd_rename(args) -> int:
    run = run_renaming(
        n=args.n, k=args.k, algorithm=args.algorithm,
        adversary=args.adversary, seed=args.seed, pattern=args.pattern,
    )
    print(f"names:         {dict(sorted(run.names.items()))}")
    print(f"max trials:    {run.max_trials}")
    print(f"comm calls:    {run.max_comm_calls}")
    print(f"messages:      {run.messages_total:,}")
    return 0


def _cmd_sweep(args) -> int:
    if args.task == "elect":
        algorithm = args.algorithm or "poison_pill"

        def runner(n, seed):
            return run_leader_election(
                n=n, algorithm=algorithm, adversary=args.adversary, seed=seed
            )

        metrics = {
            "comm calls": lambda run: run.max_comm_calls,
            "messages": lambda run: run.messages_total,
            "rounds": lambda run: run.rounds,
        }
    elif args.task == "sift":
        kind = args.algorithm or "heterogeneous"

        def runner(n, seed):
            return run_sifting_phase(
                n=n, kind=kind, adversary=args.adversary, seed=seed, check=False
            )

        metrics = {
            "survivors": lambda run: run.survivors,
            "messages": lambda run: run.result.metrics.messages_total,
        }
    else:
        algorithm = args.algorithm or "paper"

        def runner(n, seed):
            return run_renaming(
                n=n, algorithm=algorithm, adversary=args.adversary, seed=seed
            )

        metrics = {
            "trials": lambda run: run.max_trials,
            "comm calls": lambda run: run.max_comm_calls,
            "messages": lambda run: run.messages_total,
        }
    cells = sweep(
        args.ns, runner, repeats=args.repeats, seed_base=args.seed,
        workers=args.workers,
    )
    table = Table(
        f"{args.task} sweep (adversary={args.adversary}, repeats={args.repeats})",
        ["n", *metrics],
    )
    for cell in cells:
        row = [cell.param]
        for extract in metrics.values():
            row.append(summarize(extract(run) for run in cell.runs).mean)
        table.add_row(*row)
    print(table.render())
    return 0


def _cmd_bench(args) -> int:
    from .harness.bench import (
        compare_results,
        load_result,
        render_tables,
        run_experiment,
        verify_parallel_matches_serial,
    )

    if args.render_tables:
        text = render_tables(args.out)
        path = os.path.join(args.out, "bench_tables.txt")
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(text)
        print(f"tables: {path}")
        return 0

    exit_code = 0
    for exp in args.exp:
        if args.check_serial and args.workers != 1:
            match, serial, result = verify_parallel_matches_serial(
                exp, workers=args.workers, repeats=args.repeats, full=args.full
            )
            verdict = "identical" if match else "MISMATCH"
            print(f"[{exp}] parallel (workers={args.workers}) vs serial: {verdict}")
            if not match:
                print(f"  serial fingerprints:   {serial.fingerprints}")
                print(f"  parallel fingerprints: {result.fingerprints}")
                exit_code = 1
        else:
            result = run_experiment(
                exp, workers=args.workers, repeats=args.repeats,
                full=args.full, profile=args.profile,
            )
        table = Table(
            f"{exp}: {result.meta.get('title', '')} "
            f"(workers={result.workers}, repeats={result.repeats})",
            ["n", "wall s", "runs/s", "messages", "max comm calls"],
        )
        for cell in result.cells:
            table.add_row(
                cell.param,
                round(cell.wall_s, 3),
                round(cell.runs_per_s, 2),
                cell.messages_total,
                cell.max_comm_calls,
            )
        table.add_note(f"total wall-clock {result.wall_s_total:.3f}s")
        print(table.render())
        profile_meta = result.meta.get("profile")
        if profile_meta:
            print(
                f"profile (n={profile_meta['param']}, "
                f"{profile_meta['wall_s']:.3f}s): top cumulative functions"
            )
            for entry in profile_meta["top"][:5]:
                print(
                    f"  {entry['cumtime_s']:8.3f}s  {entry['ncalls']:>10}  "
                    f"{entry['function']}"
                )
        if args.baseline:
            path = result.save(args.out)
            print(f"baseline:      {path}")
        if args.compare:
            baseline_path = args.compare
            if os.path.isdir(baseline_path):
                baseline_path = os.path.join(
                    baseline_path, f"BENCH_{exp.upper()}.json"
                )
            kwargs = {}
            if args.tolerance is not None:
                kwargs["tolerance"] = args.tolerance
            comparison = compare_results(
                load_result(baseline_path), result, **kwargs
            )
            print(comparison.describe())
            if not comparison.ok:
                exit_code = 1
    return exit_code


def _cmd_trace(args) -> int:
    from .obs.replay import record_trace

    telemetry = None
    if args.snapshots is not None:
        from .obs.live import LiveTelemetry, SnapshotWriter

        writer = SnapshotWriter(
            args.snapshots,
            meta={
                "backend": "sim", "task": args.task, "n": args.n,
                "k": args.k, "algorithm": args.algorithm,
                "adversary": args.adversary, "seed": args.seed,
            },
        )
        telemetry = LiveTelemetry(writer)
    try:
        recorded = record_trace(
            args.out, task=args.task, n=args.n, k=args.k,
            algorithm=args.algorithm, adversary=args.adversary,
            seed=args.seed, pattern=args.pattern, telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    print(f"trace:         {recorded.path}")
    print(f"task:          {recorded.meta['task']} "
          f"(algorithm={recorded.meta['algorithm']})")
    print(f"events:        {recorded.events:,}")
    if args.snapshots is not None:
        print(f"snapshots:     {args.snapshots}")
    return 0


def _cmd_replay(args) -> int:
    from .obs.replay import ReplayError, replay_trace

    try:
        report = replay_trace(args.trace)
    except (OSError, ValueError, ReplayError) as error:
        print(f"error: {error}")
        return 2
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    from .obs.aggregate import TraceAggregator

    try:
        aggregator = TraceAggregator.from_file(args.trace)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}")
        return 2
    print(aggregator.report(title=args.trace))
    if args.critical_path or args.lineage is not None:
        from .obs.causality import (
            analyze_trace,
            critical_path_report,
            lineage_report,
        )

        try:
            causal = analyze_trace(args.trace)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {error}")
            return 2
        if args.critical_path:
            print()
            print(critical_path_report(causal, title=args.trace))
        if args.lineage is not None:
            print()
            print(lineage_report(causal, args.lineage))
    return 0


def _cmd_watch(args) -> int:
    from .obs.live import (
        follow_snapshots,
        read_snapshots,
        render_snapshot,
        snapshot_to_prometheus,
    )

    if args.prometheus or not args.follow:
        try:
            meta, snapshots, ended = read_snapshots(args.snapshots)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {error}")
            return 2
        if not snapshots:
            print(f"error: {args.snapshots}: no snapshots recorded yet")
            return 2
        last = snapshots[-1]
        if args.prometheus:
            print(snapshot_to_prometheus(last["metrics"]), end="")
        else:
            print(render_snapshot(last, meta=meta))
            if not ended:
                print(
                    f"error: {args.snapshots}: stream has no end marker "
                    f"after seq={last.get('seq')} — the writer is still "
                    "running (tail it without --no-follow) or was "
                    "interrupted"
                )
                return 1
        return 0

    ended = False
    try:
        for obj in follow_snapshots(
            args.snapshots, poll_interval=args.interval, timeout=args.timeout
        ):
            if "meta" in obj:
                continue
            if "end" in obj:
                ended = True
                print(f"stream ended at clock={obj['end'].get('clock')}")
                break
            print(render_snapshot(obj))
            print()
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}")
        return 2
    except TimeoutError as error:
        print(f"error: {error}")
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    if not ended:
        print("warning: stream closed without an end marker (run interrupted?)")
        return 1
    return 0


def _cmd_check(args) -> int:
    from .check.explore import explore
    from .check.shrink import replay_artifact

    if args.replay is not None:
        try:
            replay = replay_artifact(args.replay)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: {error}")
            return 2
        print(replay.describe())
        return 0 if replay.ok else 1

    report = explore(
        args.protocol,
        n=args.n,
        k=args.k,
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        invariants=args.invariants,
        adversaries=tuple(args.adversaries),
        modes=tuple(args.modes),
        branching=args.branching,
        depth=args.depth,
        pattern=args.pattern,
        shrink=args.shrink,
        out_dir=args.out_dir,
        checkpoint_every=args.checkpoint_every,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_net(args) -> int:
    from .net import ChaosPlan, load_plan, run_net
    from .net.driver import NetError

    try:
        if args.chaos is not None:
            plan = load_plan(args.chaos)
        else:
            plan = ChaosPlan(
                seed=args.chaos_seed, drop=args.drop, delay=args.delay,
                delay_ms=tuple(args.delay_ms), duplicate=args.dup,
            )
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        return 2
    try:
        run = run_net(
            task=args.task, algorithm=args.algorithm, n=args.n, k=args.k,
            pattern=args.pattern, seed=args.seed, plan=plan,
            rpc_timeout_s=args.rpc_timeout, deadline_s=args.timeout,
            trace_path=args.trace, check=args.check,
            telemetry_path=args.telemetry,
            telemetry_interval_s=args.telemetry_interval,
        )
    except (NetError, ValueError) as error:
        print(f"error: {error}")
        return 2

    chaos = "clean" if not plan.active else (
        f"drop={plan.drop} delay={plan.delay} dup={plan.duplicate} "
        f"partitions={len(plan.partitions)} seed={plan.seed}"
    )
    print(f"backend:       sockets ({run.n} node processes, "
          f"{run.k} participants)")
    print(f"chaos:         {chaos}")
    if run.task == "elect":
        winner = run.winner
        print("winner:        "
              + (f"processor {winner}" if winner is not None else "NONE"))
    elif run.task == "sift":
        print(f"survivors:     {run.survivors} / {run.k}")
    else:
        print(f"names:         {dict(sorted(run.names.items()))}")
    dropped = (f", {run.frames_dropped:,} dropped by chaos"
               if plan.active else "")
    print(f"frames:        {run.frames_sent:,} sent{dropped}")
    print(f"wall:          {run.wall_s:.2f}s")
    if run.trace_path:
        print(f"trace:         {run.trace_path}")
    if run.telemetry_path:
        print(f"telemetry:     {run.telemetry_path}")
    if args.check:
        if run.ok:
            print("invariants:    all hold")
        else:
            for name, message in run.violations:
                print(f"VIOLATION:     {name}: {message}")
            return 1
    return 0


def _serve_plan(args):
    """Build the chaos plan for ``repro serve`` from its flags."""
    from .net import ChaosPlan, load_plan

    if args.chaos is not None:
        return load_plan(args.chaos)
    return ChaosPlan(
        seed=args.chaos_seed, drop=args.drop, delay=args.delay,
        delay_ms=tuple(args.delay_ms), duplicate=args.dup,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from .check.invariants import evaluate_service_run
    from .net.service import ElectionService, ServiceError, ServiceRun

    try:
        plan = _serve_plan(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        return 2

    if args.load:
        from .net.load import run_load

        try:
            report = run_load(
                keys=args.keys, contenders=args.contenders,
                rounds=args.rounds, sessions=args.sessions,
                ttl_ms=args.ttl, hold_ms=args.hold_ms,
                crash_sessions=args.crash_sessions, seed=args.seed,
                election=args.election, plan=plan,
                telemetry_path=args.telemetry,
                telemetry_interval_s=args.telemetry_interval,
                deadline_s=args.timeout,
            )
        except (ServiceError, OSError) as error:
            print(f"error: {error}")
            return 2
        chaos = "clean" if not plan.active else (
            f"drop={plan.drop} delay={plan.delay} dup={plan.duplicate} "
            f"seed={plan.seed}"
        )
        print(f"chaos:         {chaos}")
        print(report.describe())
        if args.telemetry:
            print(f"telemetry:     {args.telemetry}")
        if args.check and not report.ok:
            return 1
        return 0

    async def _serve() -> ServiceRun:
        service = ElectionService(
            seed=args.seed, default_ttl_ms=args.ttl,
            grace_fraction=args.grace, election=args.election,
            plan=plan, telemetry_path=args.telemetry,
            telemetry_interval_s=args.telemetry_interval,
            host=args.host, port=args.port,
        )
        host, port = await service.start()
        print(f"serving:       {host}:{port} "
              f"(ttl={args.ttl:.0f}ms, election={args.election})")
        if args.telemetry:
            print(f"telemetry:     {args.telemetry}")
        try:
            await service.serve_forever(duration_s=args.duration)
        finally:
            run = ServiceRun.of(service)
            await service.stop()
        return run

    try:
        run = asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    except (ServiceError, OSError) as error:
        print(f"error: {error}")
        return 2
    print(f"grants:        {len(run.history):,}")
    if args.check:
        violations = evaluate_service_run(run)
        if violations:
            for name, message in violations:
                print(f"VIOLATION:     {name}: {message}")
            return 1
        print("invariants:    all hold")
    return 0


def _cmd_soak(args) -> int:
    from .harness.soak import SoakError, replay_incident, run_soak
    from .net.chaos import CHAOS_PROFILES

    if args.list_profiles:
        for name in sorted(CHAOS_PROFILES):
            print(name)
        return 0
    if args.replay is not None:
        try:
            replay = replay_incident(args.replay)
        except SoakError as error:
            print(f"error: {error}")
            return 2
        print(replay.describe())
        return 0 if replay.ok else 1
    restart_at = (
        None if args.restart_service_at is None or args.restart_service_at < 0
        else args.restart_service_at
    )
    try:
        report = run_soak(
            duration_s=args.duration, seed=args.seed, profile=args.profile,
            n=args.n, keys=args.keys, contenders=args.contenders,
            ttl_ms=args.ttl, hold_ms=args.hold_ms,
            kill_every=args.kill_every, restart_service_at=restart_at,
            episode_every_s=args.episode_every, out_dir=args.out_dir,
            inject_violation_at_s=args.inject_violation,
        )
    except (SoakError, OSError) as error:
        print(f"error: {error}")
        return 2
    print(report.describe())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "elect": _cmd_elect,
        "sift": _cmd_sift,
        "rename": _cmd_rename,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "replay": _cmd_replay,
        "report": _cmd_report,
        "watch": _cmd_watch,
        "check": _cmd_check,
        "net": _cmd_net,
        "serve": _cmd_serve,
        "soak": _cmd_soak,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
