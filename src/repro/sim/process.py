"""Per-processor runtime state and the algorithm-facing API.

A :class:`Process` owns a register view, at most one outstanding
communicate call, and (for participants) the algorithm coroutine.  All n
processors — participants or not — service PROPAGATE/COLLECT requests when
the adversary delivers them; this is the standing assumption of the model
(Section 2: non-faulty processors always reply, even after they return).

Algorithms never touch :class:`Process` directly; they receive a
:class:`ProcessAPI` facade exposing exactly the operations the paper's
pseudocode uses: local register writes/reads, biased coin flips, and the
identity/participant-count constants.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Any, Callable, Generator, Hashable

from .communicate import PendingCall, Request
from .registers import POLICY_VERSION, RegisterFile
from .rng import CoinLog

AlgorithmCoroutine = Generator[Request, Any, Any]
AlgorithmFactory = Callable[["ProcessAPI"], AlgorithmCoroutine]


class ProcessStatus(Enum):
    """Lifecycle states of a simulated processor."""
    IDLE = "idle"          # participant whose coroutine has not been started
    RUNNING = "running"    # participant mid-protocol
    DONE = "done"          # participant returned a value
    RESPONDER = "responder"  # non-participant; replies to messages only
    CRASHED = "crashed"


class Process:
    """Runtime state of one processor."""

    __slots__ = (
        "pid",
        "n",
        "status",
        "registers",
        "pending",
        "coroutine",
        "factory",
        "result",
        "rng",
        "coins",
        "comm_calls",
        "steps_taken",
        "messages_sent",
        "failure",
        "decide_time",
        "put_hook",
        "obs",
        "io_record",
        "io_replay",
    )

    def __init__(
        self,
        pid: int,
        n: int,
        rng: random.Random,
        factory: AlgorithmFactory | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.rng = rng
        self.registers = RegisterFile()
        self.pending: PendingCall | None = None
        self.factory = factory
        self.coroutine: AlgorithmCoroutine | None = None
        self.status = ProcessStatus.IDLE if factory is not None else ProcessStatus.RESPONDER
        self.result: Any = None
        self.coins = CoinLog()
        self.comm_calls = 0
        self.steps_taken = 0
        self.messages_sent = 0
        self.failure: BaseException | None = None
        self.decide_time: int | None = None
        #: Optional observer invoked on every local register write; set by
        #: the simulation when event recording is enabled so analyzers can
        #: replay view evolution (local writes are not messages and would
        #: otherwise be invisible to the trace).
        self.put_hook: Callable[[str, Hashable, Any], None] | None = None
        #: Structured-event emission channel ``(etype, fields, raw=None)``;
        #: set by the simulation when an event sink is attached.  ``None``
        #: means observability is off and emission sites cost one check.
        self.obs: Callable[..., None] | None = None
        #: Checkpoint support (:mod:`repro.sim.snapshot`).  When recording
        #: is on, ``io_record`` accumulates every value that crossed into
        #: the algorithm coroutine — resume inputs (appended by the
        #: simulation) interleaved with register reads and coin outcomes
        #: (appended below) — in program order.  A fork rebuilds the
        #: coroutine by replaying that log through ``io_replay``, during
        #: which the API methods return recorded values instead of
        #: touching registers or the RNG.  Both ``None`` when off.
        self.io_record: list[Any] | None = None
        self.io_replay: Any | None = None

    @property
    def is_participant(self) -> bool:
        """True iff this processor runs a protocol in this execution."""
        return self.factory is not None

    @property
    def alive(self) -> bool:
        """True until the adversary crashes this processor."""
        return self.status is not ProcessStatus.CRASHED

    @property
    def decided(self) -> bool:
        """True once the protocol coroutine returned a decision."""
        return self.status is ProcessStatus.DONE

    def start(self) -> AlgorithmCoroutine:
        """Instantiate the algorithm coroutine (first computation step)."""
        assert self.factory is not None and self.coroutine is None
        self.coroutine = self.factory(ProcessAPI(self))
        self.status = ProcessStatus.RUNNING
        return self.coroutine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, status={self.status.value})"


class ProcessAPI:
    """The facade through which algorithm code observes and mutates state.

    Mirrors the pseudocode's local operations: array writes like
    ``Status[i] <- Commit`` become :meth:`put`, reads become :meth:`get` /
    :meth:`view`, and the biased ``random(...)`` calls become
    :meth:`flip`.  Communication happens by ``yield``-ing
    :class:`~repro.sim.communicate.Propagate` / ``Collect`` requests, not
    through this facade, so the runtime retains full scheduling control.
    """

    __slots__ = ("_process",)

    def __init__(self, process: Process) -> None:
        self._process = process

    @property
    def pid(self) -> int:
        """This processor's unique identifier."""
        return self._process.pid

    @property
    def n(self) -> int:
        """Total number of processors in the system."""
        return self._process.n

    def put(self, var: str, key: Hashable, value: Any, policy: str = POLICY_VERSION) -> None:
        """Local register write (visible to others only after Propagate)."""
        self._process.registers.put(var, key, value, policy)
        if self._process.put_hook is not None:
            self._process.put_hook(var, key, value)

    def get(self, var: str, key: Hashable, default: Any = None) -> Any:
        """Read this processor's current view of ``var[key]``."""
        process = self._process
        if process.io_replay is not None:
            return process.io_replay.take("get")
        value = process.registers.get(var, key, default)
        if process.io_record is not None:
            process.io_record.append(value)
        return value

    def view(self, var: str) -> dict[Hashable, Any]:
        """Snapshot this processor's whole view of ``var``."""
        process = self._process
        if process.io_replay is not None:
            return process.io_replay.take("view")
        value = process.registers.view(var)
        if process.io_record is not None:
            process.io_record.append(value)
        return value

    def flip(self, probability: float, label: str = "coin") -> int:
        """Flip a biased coin: 1 with ``probability``, else 0.

        The outcome is appended to the processor's coin log, which the
        strong adaptive adversary may inspect before scheduling further
        steps — faithfully modelling the paper's adversary.
        """
        process = self._process
        if process.io_replay is not None:
            return process.io_replay.take("flip")
        value = 1 if process.rng.random() < probability else 0
        process.coins.record(label, value)
        if process.io_record is not None:
            process.io_record.append(value)
        obs = process.obs
        if obs is not None:
            obs("coin.flip", {"label": label, "p": probability, "value": value})
        return value

    def choice(self, options: list, label: str = "choice") -> Any:
        """Uniform random choice among ``options``, logged like a flip."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        process = self._process
        if process.io_replay is not None:
            return options[process.io_replay.take("choice")]
        index = process.rng.randrange(len(options))
        process.coins.record(label, index)
        if process.io_record is not None:
            process.io_record.append(index)
        obs = process.obs
        if obs is not None:
            obs("coin.choice", {"label": label, "index": index, "options": len(options)})
        return options[index]

    def annotate(self, etype: str, **fields: Any) -> None:
        """Emit a protocol-level structured event (phase/round transitions).

        A no-op unless the simulation has an event sink attached, so
        algorithms annotate unconditionally; see
        :class:`repro.obs.events.EventType` for the schema.
        """
        obs = self._process.obs
        if obs is not None:
            obs(etype, fields)
