"""Exception hierarchy for the simulator substrate.

All simulator errors derive from :class:`SimulationError` so callers can
catch substrate failures without masking algorithm bugs (which surface as
ordinary Python exceptions raised inside process coroutines).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation substrate."""


class SimulationLimitError(SimulationError):
    """The event budget was exhausted before the simulation quiesced.

    This almost always indicates a non-terminating schedule (an unfair
    adversary) or an algorithm bug, not a substrate bug.
    """


class QuiescenceError(SimulationError):
    """The simulation quiesced while participants were still undecided.

    Raised only when the caller asked for it via ``require_termination``;
    expected when more than ``ceil(n/2) - 1`` processors were crashed.
    """


class AdversaryProtocolError(SimulationError):
    """The adversary returned an action that is not currently enabled."""


class CrashBudgetError(SimulationError):
    """The adversary attempted to crash more than ``t`` processors."""


class ProcessProtocolError(SimulationError):
    """A process coroutine yielded something other than a valid request."""


class CheckpointError(SimulationError):
    """A simulation state snapshot could not be captured or restored.

    Raised when I/O recording was never enabled on the source run, when an
    attached sink cannot be deep-copied (file handles), or when the
    adversary handed to :meth:`~repro.sim.snapshot.SimulationCheckpoint.fork`
    is incompatible with the captured pool representation.
    """
