"""Processor-id sets encoded as Python integers (bitmasks).

The protocols and checkers pass around many small sets of processor ids:
the ``l`` observation lists of Figure 2, the learned union ``L`` of the
heterogeneous death rule, and the closure sets of the ``repro.check``
invariants.  At ``n = 4096`` a frozenset of a few thousand small ints
costs kilobytes and per-element hashing on every union; the same set as
an int is one machine word per 64 pids and unions in a single ``|``.

Encoding: bit ``i`` set ⟺ pid ``i`` is a member.  The empty set is
``0``.  Because Python ints are arbitrary precision the encoding has no
``n`` ceiling, and because they are immutable value types, pidsets
compare, hash, pickle, and JSON-serialize (as plain ints) for free.

All helpers are pure functions over ints; there is deliberately no
wrapper class — the hot paths (`learned |= status.members`) should stay
single bytecode ops, not method calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: The empty processor-id set.
EMPTY: int = 0


def singleton(pid: int) -> int:
    """The one-element set ``{pid}``."""
    return 1 << pid


def full_below(n: int) -> int:
    """The full set ``{0, ..., n - 1}`` of all pids under ``n``.

    The natural starting point for "everyone except ..." masks, e.g. the
    undelivered-recipient set of a fresh broadcast
    (:class:`~repro.sim.messages.Broadcast`).
    """
    return (1 << n) - 1


def from_iterable(pids: Iterable[int]) -> int:
    """Build a pidset from any iterable of processor ids."""
    bits = 0
    for pid in pids:
        bits |= 1 << pid
    return bits


def add(bits: int, pid: int) -> int:
    """The set ``bits ∪ {pid}`` (pidsets are immutable; returns a new one)."""
    return bits | (1 << pid)


def discard(bits: int, pid: int) -> int:
    """The set ``bits ∖ {pid}``."""
    return bits & ~(1 << pid)


def contains(bits: int, pid: int) -> bool:
    """True iff ``pid`` is a member of ``bits``."""
    return bool(bits >> pid & 1)


def union(*sets: int) -> int:
    """The union of any number of pidsets."""
    bits = 0
    for s in sets:
        bits |= s
    return bits


def union_all(sets: Iterable[int]) -> int:
    """The union of an iterable of pidsets."""
    bits = 0
    for s in sets:
        bits |= s
    return bits


def is_subset(a: int, b: int) -> bool:
    """True iff every member of ``a`` is a member of ``b``."""
    return a & ~b == 0


def popcount(bits: int) -> int:
    """The number of members (``|S|``)."""
    return bits.bit_count()


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the member pids in ascending order.

    Peels the lowest set bit each iteration (``bits & -bits`` isolates
    it), so the cost is proportional to the number of members, not to
    the highest pid.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def to_frozenset(bits: int) -> frozenset[int]:
    """Decode a pidset into a plain ``frozenset`` (tests, pretty output)."""
    return frozenset(iter_bits(bits))
