"""Deterministic randomness for processes and adversaries.

A single master seed fans out into independent named streams, one per
processor plus one for the adversary, so that a run is reproducible from
``(seed, n, adversary, workload)`` alone.  Streams are ordinary
:class:`random.Random` instances seeded by hashing ``(master_seed, name)``
through SHA-256, which keeps streams independent without requiring numpy.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a label."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_stream(master_seed: int, name: str) -> random.Random:
    """Create an independent, reproducible RNG stream for ``name``."""
    return random.Random(derive_seed(master_seed, name))


class CoinLog:
    """Record of the coin flips a processor has performed.

    The strong adaptive adversary is allowed to examine local state,
    *including the outcomes of random coin flips* (Section 2 of the paper).
    Every flip an algorithm performs is appended here, and adversaries read
    the log through :meth:`last` / :meth:`all`.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[tuple[str, int]] = []

    def record(self, label: str, value: int) -> None:
        """Append one labelled flip outcome to the log."""
        self._entries.append((label, value))

    def last(self) -> tuple[str, int] | None:
        """The most recent ``(label, value)`` flip, or ``None``."""
        return self._entries[-1] if self._entries else None

    def last_value(self, label: str) -> int | None:
        """The most recent flip recorded under ``label``, or ``None``."""
        for entry_label, value in reversed(self._entries):
            if entry_label == label:
                return value
        return None

    def all(self) -> Iterator[tuple[str, int]]:
        """Iterate every recorded ``(label, value)`` pair, oldest first."""
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
