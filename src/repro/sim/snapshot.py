"""Simulation state checkpointing: capture at an action boundary, fork later.

A :class:`~repro.sim.runtime.Simulation` is almost entirely plain data —
pools, register files, counters — except for the algorithm *coroutines*,
which Python cannot copy.  This module closes that gap with input-replay:
when recording is enabled (:func:`enable_recording`), every value that
crosses into a coroutine — resume inputs fed by the runtime, register
reads, and coin outcomes returned by :class:`~repro.sim.process.ProcessAPI`
— is appended to a per-process log in program order.  A fork rebuilds each
running coroutine by replaying its log into a fresh instance (the API
methods return recorded values instead of touching registers or the RNG),
then overwrites all observable state with deep copies taken at capture
time.  The forked run is therefore byte-identical to the original
continuing from the same point, for any new adversary.

The intended use is checkpointed schedule exploration
(:mod:`repro.check.shrink`): capture once after a schedule prefix, fork
once per candidate sharing that prefix, and skip re-executing the prefix
entirely.

Contracts:

* :func:`enable_recording` must run before the simulation's first action
  (replay needs the log from the very first resume).
* :func:`capture` is only valid at an *action boundary* — between
  ``adversary.choose`` calls, when every running coroutine is suspended
  at a ``yield``.  This is where adversaries live, so checkpointing
  adversaries capture for free.
* Event sinks are **not** carried across a fork: the forked stream starts
  at the fork point.  Callers who need the full stream keep the prefix
  events alongside the checkpoint (see ``repro.check.shrink``).
* Algorithms must not mutate views they received from ``collect`` or
  values read back from registers — the same copy-on-write contract the
  register plane already imposes.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from .errors import CheckpointError
from .process import ProcessStatus
from .runtime import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..adversary.base import Adversary
    from ..obs.events import EventSink


def enable_recording(sim: Simulation) -> None:
    """Turn on coroutine input recording; must precede the first action."""
    if sim.metrics.events_executed or sim.metrics.steps:
        raise CheckpointError(
            "recording must be enabled before the simulation's first action"
        )
    for process in sim.processes:
        if process.factory is not None and process.io_record is None:
            process.io_record = []


class _ReplayCursor:
    """Feeds one process's recorded input log back during coroutine rebuild."""

    __slots__ = ("log", "pos", "pid")

    def __init__(self, log: list[Any], pid: int) -> None:
        self.log = log
        self.pos = 0
        self.pid = pid

    def take(self, kind: str) -> Any:
        """The next recorded value; ``kind`` labels the consumer for errors."""
        if self.pos >= len(self.log):
            raise CheckpointError(
                f"pid {self.pid}: replay log exhausted during {kind!r} — the "
                "algorithm consumed more inputs than the recording holds "
                "(nondeterministic algorithm code?)"
            )
        value = self.log[self.pos]
        self.pos += 1
        return value


class SimulationCheckpoint:
    """A deep snapshot of one simulation, fork-able any number of times.

    Construction happens through :func:`capture`.  All mutable state is
    copied under a single deepcopy memo, so copy-on-write identity
    sharing (pool payload mappings aliased by register files, pending
    views, delta trackers referenced by broadcasts) survives intact.
    """

    __slots__ = (
        "n",
        "seed",
        "crash_budget",
        "delta_propagation",
        "max_events",
        "clock",
        "events_executed",
        "_participants",
        "_batched",
        "_indexed",
        "_call_counter",
        "_uid_counter",
        "_in_flight",
        "_delta",
        "_metrics",
        "_needs_step",
        "_undecided",
        "_crashed",
        "_start_times",
        "_process_state",
    )

    def fork(
        self,
        adversary: "Adversary",
        sink: "EventSink | None" = None,
        telemetry: "EventSink | None" = None,
    ) -> Simulation:
        """A fresh :class:`Simulation` resuming exactly at the checkpoint.

        ``adversary`` drives the forked run from the checkpointed state
        onward; its capability flags must be compatible with the captured
        pool representation.  ``sink``/``telemetry`` receive only events
        emitted *after* the fork point.
        """
        wants_objects = getattr(adversary, "uses_message_objects", True)
        wants_indexes = getattr(adversary, "uses_endpoint_indexes", True)
        if self._batched and wants_objects:
            raise CheckpointError(
                "checkpoint captured a batch (columnar) pool; the forking "
                "adversary must declare uses_message_objects = False"
            )
        if not self._batched and wants_indexes and not self._indexed:
            raise CheckpointError(
                "checkpoint captured a pool without endpoint indexes; the "
                "forking adversary must declare uses_endpoint_indexes = False"
            )
        # One memo per fork: the checkpoint itself stays pristine so it
        # can be forked again, and intra-state aliasing is preserved.
        memo: dict[int, Any] = {}
        sim = Simulation(
            n=self.n,
            participants=self._participants,
            adversary=adversary,
            seed=self.seed,
            crash_budget=self.crash_budget,
            max_events=self.max_events,
            sink=sink,
            delta_propagation=self.delta_propagation,
            telemetry=telemetry,
            batch_messages=True if self._batched else False,
        )
        sim.in_flight = copy.deepcopy(self._in_flight, memo)
        sim.metrics = copy.deepcopy(self._metrics, memo)
        sim._delta = copy.deepcopy(self._delta, memo)
        sim.clock = self.clock
        sim._call_counter = self._call_counter
        sim._uid_counter = copy.deepcopy(self._uid_counter, memo)
        sim._needs_step = set(self._needs_step)
        sim._undecided = set(self._undecided)
        sim._crashed = set(self._crashed)
        sim._start_times = dict(self._start_times)
        for state in self._process_state:
            self._restore_process(sim, state, memo)
        return sim

    def _restore_process(
        self, sim: Simulation, state: dict[str, Any], memo: dict[int, Any]
    ) -> None:
        process = sim.processes[state["pid"]]
        status: ProcessStatus = state["status"]
        io_record = copy.deepcopy(state["io_record"], memo)
        if status is ProcessStatus.RUNNING:
            # Rebuild the coroutine by replaying its recorded inputs.
            # Hooks are silenced so the replay emits nothing; registers
            # and coins are scratch here and overwritten below.
            assert io_record is not None
            cursor = _ReplayCursor(io_record, process.pid)
            process.io_replay = cursor
            saved_hooks = process.put_hook, process.obs
            process.put_hook = process.obs = None
            try:
                process.start()
                coroutine = process.coroutine
                while cursor.pos < len(cursor.log):
                    try:
                        coroutine.send(cursor.take("resume"))
                    except StopIteration:
                        raise CheckpointError(
                            f"pid {process.pid}: coroutine terminated during "
                            "replay but was RUNNING at capture"
                        ) from None
            finally:
                process.io_replay = None
                process.put_hook, process.obs = saved_hooks
        process.status = status
        process.result = copy.deepcopy(state["result"], memo)
        process.registers = copy.deepcopy(state["registers"], memo)
        process.pending = copy.deepcopy(state["pending"], memo)
        process.coins = copy.deepcopy(state["coins"], memo)
        process.rng.setstate(state["rng_state"])
        process.comm_calls = state["comm_calls"]
        process.steps_taken = state["steps_taken"]
        process.messages_sent = state["messages_sent"]
        process.failure = state["failure"]
        process.decide_time = state["decide_time"]
        process.io_record = io_record


def capture(sim: Simulation) -> SimulationCheckpoint:
    """Snapshot ``sim`` at the current action boundary.

    The source simulation is untouched and keeps running; the returned
    checkpoint owns deep copies of all mutable state (one shared memo,
    preserving copy-on-write aliasing) plus every participant's input
    log, and can be forked any number of times.
    """
    for process in sim.processes:
        if process.status is ProcessStatus.RUNNING and process.io_record is None:
            raise CheckpointError(
                f"pid {process.pid} is mid-protocol but has no input log; "
                "call enable_recording(sim) before the run starts"
            )
        if process.io_replay is not None:
            raise CheckpointError("cannot capture while a replay is in progress")
    checkpoint = SimulationCheckpoint.__new__(SimulationCheckpoint)
    checkpoint.n = sim.n
    checkpoint.seed = sim.seed
    checkpoint.crash_budget = sim.crash_budget
    checkpoint.delta_propagation = sim.delta_propagation
    checkpoint.max_events = sim.max_events
    checkpoint.clock = sim.clock
    checkpoint.events_executed = sim.metrics.events_executed
    checkpoint._participants = {
        process.pid: process.factory
        for process in sim.processes
        if process.factory is not None
    }
    pool = sim.in_flight
    checkpoint._batched = pool._batched
    checkpoint._indexed = pool._indexed
    checkpoint._call_counter = sim._call_counter
    memo: dict[int, Any] = {}
    checkpoint._uid_counter = copy.deepcopy(sim._uid_counter, memo)
    checkpoint._in_flight = copy.deepcopy(pool, memo)
    checkpoint._delta = copy.deepcopy(sim._delta, memo)
    checkpoint._metrics = copy.deepcopy(sim.metrics, memo)
    checkpoint._needs_step = set(sim._needs_step)
    checkpoint._undecided = set(sim._undecided)
    checkpoint._crashed = set(sim._crashed)
    checkpoint._start_times = dict(sim._start_times)
    checkpoint._process_state = [
        {
            "pid": process.pid,
            "status": process.status,
            "result": copy.deepcopy(process.result, memo),
            "registers": copy.deepcopy(process.registers, memo),
            "pending": copy.deepcopy(process.pending, memo),
            "coins": copy.deepcopy(process.coins, memo),
            "rng_state": process.rng.getstate(),
            "comm_calls": process.comm_calls,
            "steps_taken": process.steps_taken,
            "messages_sent": process.messages_sent,
            "failure": process.failure,
            "decide_time": process.decide_time,
            "io_record": copy.deepcopy(process.io_record, memo),
        }
        for process in sim.processes
    ]
    return checkpoint


__all__ = [
    "SimulationCheckpoint",
    "capture",
    "enable_recording",
]
