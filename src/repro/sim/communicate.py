"""The ``communicate`` primitive: requests yielded by process coroutines.

Algorithms are written as generator coroutines that ``yield`` these request
objects.  The runtime turns each request into a broadcast to all other
processors and blocks the coroutine until more than ``n/2`` processors
(counting the caller itself) have acknowledged — the quorum condition from
[ABND95] that makes any two communicate calls intersect in at least one
recipient.

* ``Propagate(var, keys)`` resolves to ``None`` once a quorum has merged the
  caller's entries for ``keys`` (all local entries of ``var`` if omitted).
* ``Collect(var)`` resolves to the list of at least ``floor(n/2) + 1``
  views of ``var`` (plain ``{key: value}`` dicts), the caller's own view
  included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence


@dataclass(frozen=True, slots=True)
class Propagate:
    """Broadcast the caller's entries of ``var`` and await a quorum of ACKs."""

    var: str
    keys: tuple[Hashable, ...] | None = None


@dataclass(frozen=True, slots=True)
class Collect:
    """Request views of ``var`` from everyone; resolves to a list of views."""

    var: str


Request = Propagate | Collect


@dataclass(slots=True)
class PendingCall:
    """Bookkeeping for a communicate call awaiting its quorum."""

    call_id: int
    request: Request
    needed: int
    acks: int = 0
    views: list[dict[Hashable, Any]] | None = None

    @property
    def satisfied(self) -> bool:
        """True once a majority quorum of acknowledgements arrived."""
        return self.acks >= self.needed

    def result(self) -> Sequence[dict[Hashable, Any]] | None:
        """The value the blocked coroutine resumes with: views for Collect, None for Propagate."""
        if isinstance(self.request, Collect):
            assert self.views is not None
            return list(self.views)
        return None
