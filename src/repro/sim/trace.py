"""Execution metrics and (optional) event tracing.

``Metrics`` aggregates exactly the quantities the paper's complexity
theorems are stated in:

* message complexity — total messages sent, including acknowledgements;
* time complexity — via Claim 2.1, the maximum number of ``communicate``
  calls performed by any single processor;

plus per-processor breakdowns used by the benchmark tables.  The optional
event log records every scheduling decision for debugging and for the
linearizability checker, which needs invocation/response ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .messages import MessageKind


@dataclass(slots=True)
class TraceEvent:
    """One scheduling decision, stamped with a global logical time."""

    time: int
    kind: str  # "start" | "step" | "deliver" | "crash" | "decide" | "comm"
    pid: int
    detail: Any = None


class Metrics:
    """Counters aggregated over one simulation run."""

    __slots__ = (
        "messages_total",
        "messages_by_kind",
        "messages_sent_by",
        "comm_calls_by",
        "payload_cells",
        "deliveries",
        "steps",
        "crashes",
        "events_executed",
    )

    def __init__(self, n: int) -> None:
        self.messages_total = 0
        self.messages_by_kind = {kind: 0 for kind in MessageKind}
        self.messages_sent_by = [0] * n
        self.comm_calls_by = [0] * n
        self.payload_cells = 0
        self.deliveries = 0
        self.steps = 0
        self.crashes = 0
        self.events_executed = 0

    def record_send(self, sender: int, kind: MessageKind, cells: int = 0) -> None:
        """Account one sent message of ``kind`` carrying ``cells`` register cells."""
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_sent_by[sender] += 1
        self.payload_cells += cells

    def record_comm_call(self, pid: int) -> None:
        """Account one ``communicate`` call issued by ``pid``."""
        self.comm_calls_by[pid] += 1

    @property
    def max_comm_calls(self) -> int:
        """Max communicate calls by any processor — the time metric (Claim 2.1)."""
        return max(self.comm_calls_by, default=0)

    @property
    def request_messages(self) -> int:
        """Messages excluding acknowledgements (PROPAGATE + COLLECT)."""
        return (
            self.messages_by_kind[MessageKind.PROPAGATE]
            + self.messages_by_kind[MessageKind.COLLECT]
        )

    def summary(self) -> dict[str, int]:
        """The headline counters as a plain dict (stable keys for tests)."""
        return {
            "messages_total": self.messages_total,
            "request_messages": self.request_messages,
            "payload_cells": self.payload_cells,
            "max_comm_calls": self.max_comm_calls,
            "deliveries": self.deliveries,
            "steps": self.steps,
            "crashes": self.crashes,
            "events_executed": self.events_executed,
        }


@dataclass(slots=True)
class Trace:
    """Optional detailed event log; enabled with ``record_events=True``."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = False

    def record(self, time: int, kind: str, pid: int, detail: Any = None) -> None:
        """Append one event if tracing is enabled; no-op otherwise."""
        if self.enabled:
            self.events.append(TraceEvent(time, kind, pid, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]
