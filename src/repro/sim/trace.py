"""Execution metrics and the legacy event-trace adapter.

``Metrics`` aggregates exactly the quantities the paper's complexity
theorems are stated in:

* message complexity — total messages sent, including acknowledgements;
* time complexity — via Claim 2.1, the maximum number of ``communicate``
  calls performed by any single processor;

plus per-processor breakdowns used by the benchmark tables.  Counters are
updated directly by the runtime (the zero-overhead fast path); they can
also be rebuilt from a recorded event stream (:meth:`Metrics.from_events`)
and combined across sweep workers (:meth:`Metrics.merge`).

``Trace`` is the legacy flat event log consumed by the linearizability
checker and the Section 4 execution analyzer.  It is now a thin adapter
over the structured event stream of :mod:`repro.obs`: when a simulation
runs with ``record_events=True``, the runtime attaches a
:class:`TraceAdapterSink` that translates structured events back into the
``TraceEvent`` shape those analyzers were written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..obs.events import Event, EventType
from .messages import MessageKind


@dataclass(slots=True)
class TraceEvent:
    """One scheduling decision, stamped with a global logical time."""

    time: int
    kind: str  # "start" | "step" | "deliver" | "crash" | "decide" | "comm" | "put"
    pid: int
    detail: Any = None


class Metrics:
    """Counters aggregated over one simulation run."""

    __slots__ = (
        "messages_total",
        "messages_by_kind",
        "messages_sent_by",
        "comm_calls_by",
        "payload_cells",
        "deliveries",
        "steps",
        "crashes",
        "events_executed",
    )

    def __init__(self, n: int) -> None:
        self.messages_total = 0
        self.messages_by_kind = {kind: 0 for kind in MessageKind}
        self.messages_sent_by = [0] * n
        self.comm_calls_by = [0] * n
        self.payload_cells = 0
        self.deliveries = 0
        self.steps = 0
        self.crashes = 0
        self.events_executed = 0

    def record_send(self, sender: int, kind: MessageKind, cells: int = 0) -> None:
        """Account one sent message of ``kind`` carrying ``cells`` register cells.

        ``cells`` is the *logical* payload size — the number of register
        cells the message semantically conveys (what full propagation
        would ship).  Delta propagation may physically ship fewer, but
        reports the logical size here so metrics and traces are identical
        across modes; physical savings live in ``Simulation.delta_stats``.
        """
        self.messages_total += 1
        self.messages_by_kind[kind] += 1
        self.messages_sent_by[sender] += 1
        self.payload_cells += cells

    def record_send_batch(
        self, sender: int, kind: MessageKind, cells: int, count: int
    ) -> None:
        """Account ``count`` same-kind sends of ``cells`` logical cells each.

        The broadcast loop of one ``communicate`` call sends ``n - 1``
        messages that differ only in recipient and uid; folding them in
        one call keeps the Deliver/Step hot path free of per-message
        bookkeeping when no event sink is attached.
        """
        self.messages_total += count
        self.messages_by_kind[kind] += count
        self.messages_sent_by[sender] += count
        self.payload_cells += cells * count

    def record_comm_call(self, pid: int) -> None:
        """Account one ``communicate`` call issued by ``pid``."""
        self.comm_calls_by[pid] += 1

    @property
    def max_comm_calls(self) -> int:
        """Max communicate calls by any processor — the time metric (Claim 2.1).

        For the degenerate ``n == 0`` system (no processors at all, as
        constructed by some unit tests) there is nothing to maximize over
        and the time spent is zero, so the ``default=0`` below is the
        definitionally correct answer, not a sentinel.
        """
        return max(self.comm_calls_by, default=0)

    @property
    def request_messages(self) -> int:
        """Messages excluding acknowledgements (PROPAGATE + COLLECT)."""
        return (
            self.messages_by_kind[MessageKind.PROPAGATE]
            + self.messages_by_kind[MessageKind.COLLECT]
        )

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another run's counters into this one; returns self.

        Sweep workers use this to combine per-run metrics into one
        accumulator instead of re-summing counter dicts by hand.  The
        per-processor lists are padded when system sizes differ, so
        merging across a sweep's ``n`` grid is well-defined.
        """
        self.messages_total += other.messages_total
        for kind, count in other.messages_by_kind.items():
            self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + count
        if len(other.messages_sent_by) > len(self.messages_sent_by):
            self.messages_sent_by.extend(
                [0] * (len(other.messages_sent_by) - len(self.messages_sent_by))
            )
            self.comm_calls_by.extend(
                [0] * (len(other.comm_calls_by) - len(self.comm_calls_by))
            )
        for pid, count in enumerate(other.messages_sent_by):
            self.messages_sent_by[pid] += count
        for pid, count in enumerate(other.comm_calls_by):
            self.comm_calls_by[pid] += count
        self.payload_cells += other.payload_cells
        self.deliveries += other.deliveries
        self.steps += other.steps
        self.crashes += other.crashes
        self.events_executed += other.events_executed
        return self

    @classmethod
    def from_events(cls, events: Iterable[Event], n: int) -> "Metrics":
        """Rebuild counters from a structured event stream.

        The adapter behind ``repro report``: a recorded JSONL trace holds
        every ``msg.send`` / ``msg.deliver`` / ``sched.*`` / ``comm.call``
        event, which is exactly the information the live counters
        accumulate.
        """
        metrics = cls(n)
        kind_by_value = {kind.value: kind for kind in MessageKind}
        for event in events:
            etype = event.etype
            if etype == EventType.MSG_SEND:
                fields = event.fields
                metrics.record_send(
                    fields["src"],
                    kind_by_value[fields["kind"]],
                    fields.get("cells", 0),
                )
            elif etype == EventType.MSG_DELIVER:
                metrics.deliveries += 1
                metrics.events_executed += 1
            elif etype == EventType.SCHED_STEP:
                metrics.steps += 1
                metrics.events_executed += 1
            elif etype == EventType.SCHED_CRASH:
                metrics.crashes += 1
                metrics.events_executed += 1
            elif etype == EventType.COMM_CALL:
                metrics.record_comm_call(event.pid)
        return metrics

    def summary(self) -> dict[str, int]:
        """The headline counters as a plain dict (stable keys for tests)."""
        return {
            "messages_total": self.messages_total,
            "request_messages": self.request_messages,
            "payload_cells": self.payload_cells,
            "max_comm_calls": self.max_comm_calls,
            "deliveries": self.deliveries,
            "steps": self.steps,
            "crashes": self.crashes,
            "events_executed": self.events_executed,
        }


@dataclass(slots=True)
class Trace:
    """Optional detailed event log; enabled with ``record_events=True``."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = False
    _kind_index: dict[str, list[TraceEvent]] = field(
        default_factory=dict, repr=False
    )
    _indexed_upto: int = field(default=0, repr=False)

    def record(self, time: int, kind: str, pid: int, detail: Any = None) -> None:
        """Append one event if tracing is enabled; no-op otherwise."""
        if self.enabled:
            self.events.append(TraceEvent(time, kind, pid, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events of one kind, in order.

        Backed by a lazily maintained kind index: the first call after new
        events arrive indexes only the unseen suffix, so analyzers that
        query many kinds (the linearizability checker, the schedulers
        tests) no longer rescan the full log per call.
        """
        events = self.events
        upto = self._indexed_upto
        if upto < len(events):
            index = self._kind_index
            for event in events[upto:]:
                bucket = index.get(event.kind)
                if bucket is None:
                    index[event.kind] = [event]
                else:
                    bucket.append(event)
            self._indexed_upto = len(events)
        return list(self._kind_index.get(kind, ()))


#: Structured event types with a legacy ``TraceEvent`` equivalent, and the
#: flat kind the pre-obs analyzers expect.
_LEGACY_KINDS: Mapping[str, str] = {
    EventType.PROC_START: "start",
    EventType.SCHED_STEP: "step",
    EventType.MSG_DELIVER: "deliver",
    EventType.SCHED_CRASH: "crash",
    EventType.PROC_DECIDE: "decide",
    EventType.COMM_CALL: "comm",
    EventType.REG_PUT: "put",
}


class TraceAdapterSink:
    """Feed a legacy :class:`Trace` from the structured event stream.

    The runtime attaches one when ``record_events=True``; structured
    events whose type has a legacy equivalent are appended as
    ``TraceEvent`` rows, carrying the live object (``event.raw``) as the
    ``detail`` the old analyzers expect — the delivered message, the
    yielded request, the ``(var, key, value)`` register write.
    """

    __slots__ = ("trace",)

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def emit(self, event: Event) -> None:
        """Append the legacy ``TraceEvent`` for ``event``, if it has one."""
        kind = _LEGACY_KINDS.get(event.etype)
        if kind is not None:
            self.trace.events.append(
                TraceEvent(event.time, kind, event.pid, event.raw)
            )

    def close(self) -> None:
        """Nothing to flush; the backing :class:`Trace` stays live."""
