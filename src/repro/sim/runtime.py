"""The discrete-event simulation of the asynchronous message-passing model.

The simulation advances one *action* at a time, and the adversary picks
every action.  The enabled actions at any moment are exactly those of the
paper's model (Section 2):

* ``Deliver(message)`` — a delivery step: the message reaches its
  recipient, which (if non-faulty) processes it immediately — merging
  PROPAGATE entries and sending the ACK / COLLECT_REPLY, or recording an
  incoming acknowledgement against its outstanding ``communicate`` call.
  Every processor services requests this way, participant or not, decided
  or not: the model's standing assumption that non-faulty processors
  always assist.  On batch-mode runs (columnar pools, see
  :mod:`repro.sim.messages`) the same step is expressed as
  ``DeliverBatch(slot, desc)``, naming the in-flight leg by pool position
  instead of by object; the semantics are identical.
* ``Step(pid)`` — a computation step of the *algorithm*: starts the
  participant's coroutine, or resumes it when its outstanding
  ``communicate`` call has reached its quorum.
* ``Crash(pid)`` — fail a processor, up to ``ceil(n/2) - 1`` in total.
  Crashed processors never reply again; messages addressed to them may
  still be delivered but vanish.

Splitting "service a message" (delivery) from "advance the protocol"
(step) is what lets the adversary run participants one at a time through a
whole PoisonPill phase while everyone else merely acknowledges — the
sequential attack of Section 3.2.  The adversary also gets full read
access to local state including coin-flip logs, so it realizes the
paper's strong adaptive adversary exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..obs.events import Event, EventType, combine_sinks
from .communicate import Collect, PendingCall, Propagate
from .errors import (
    AdversaryProtocolError,
    CrashBudgetError,
    ProcessProtocolError,
    QuiescenceError,
    SimulationLimitError,
)
from .messages import (
    BROADCAST_SHIFT,
    MAX_BATCH_PIDS,
    PID_BITS,
    PID_MASK,
    REPLY_BIT,
    Broadcast,
    Deliver,
    DeliverBatch,
    InFlightPool,
    Message,
    MessageKind,
)
from .process import AlgorithmFactory, Process, ProcessStatus
from .registers import DeltaTracker
from .rng import make_stream
from .trace import Metrics, Trace, TraceAdapterSink


if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..adversary.base import Adversary
    from ..obs.events import EventSink
    from ..obs.profile import Profiler


@dataclass(frozen=True, slots=True)
class Step:
    """Adversary action: run one computation step of processor ``pid``."""
    pid: int


@dataclass(frozen=True, slots=True)
class Crash:
    """Adversary action: crash processor ``pid`` (within the budget)."""
    pid: int


# Deliver / DeliverBatch live in messages.py (the pool builds them in its
# mode-agnostic positional API) and are re-exported here for callers.
Action = Deliver | DeliverBatch | Step | Crash

#: Shared empty payload for events that need none (avoids a dict per event).
_NO_FIELDS: Mapping[str, Any] = {}

# Enum member lookups hoisted out of the batch delivery hot loop.
_ACK = MessageKind.ACK
_COLLECT_REPLY = MessageKind.COLLECT_REPLY
_PROPAGATE = MessageKind.PROPAGATE

#: Profiler span names for each action type (see ``Simulation.execute``).
_ACTION_SPANS = {
    Deliver: "execute.deliver",
    DeliverBatch: "execute.deliver",
    Step: "execute.step",
    Crash: "execute.crash",
}


@dataclass(slots=True)
class Decision:
    """A participant's recorded invocation/response interval and result."""

    pid: int
    result: Any
    start_time: int
    decide_time: int


@dataclass(slots=True)
class SimulationResult:
    """Everything a caller needs after a run: outcomes, metrics, trace."""

    n: int
    decisions: dict[int, Decision]
    metrics: Metrics
    trace: Trace
    undecided: frozenset[int]
    crashed: frozenset[int]
    start_times: dict[int, int]

    @property
    def outcomes(self) -> dict[int, Any]:
        """Map of pid to decided value, for assertion-friendly access."""
        return {pid: decision.result for pid, decision in self.decisions.items()}

    @property
    def terminated(self) -> bool:
        """True iff every non-crashed participant returned."""
        return not self.undecided


class Simulation:
    """One execution of ``n`` processors under a chosen adversary.

    ``participants`` maps processor ids to algorithm coroutine factories;
    all other processors are pure responders, which still reply to
    PROPAGATE/COLLECT traffic (the model requires all non-faulty
    processors to assist, even non-participants).
    """

    def __init__(
        self,
        n: int,
        participants: Mapping[int, AlgorithmFactory],
        adversary: "Adversary",
        seed: int = 0,
        crash_budget: int | None = None,
        record_events: bool = False,
        max_events: int | None = None,
        sink: "EventSink | None" = None,
        profiler: "Profiler | None" = None,
        delta_propagation: bool = True,
        telemetry: "EventSink | None" = None,
        batch_messages: bool | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one processor")
        for pid in participants:
            if not 0 <= pid < n:
                raise ValueError(f"participant pid {pid} out of range [0, {n})")
        self.n = n
        self.seed = seed
        self.adversary = adversary
        self.crash_budget = (n + 1) // 2 - 1 if crash_budget is None else crash_budget
        self.processes: list[Process] = [
            Process(pid, n, make_stream(seed, f"proc/{pid}"), participants.get(pid))
            for pid in range(n)
        ]
        # Capability negotiation for the pool representation.  Batch
        # (columnar) mode needs two certificates: the adversary never
        # touches Message objects, and no event sink is attached (the
        # per-message MSG_SEND/MSG_DELIVER stream requires materialized
        # messages).  ``batch_messages`` overrides: False forces the
        # materialized plane (equivalence tests), True asserts batch mode
        # and raises if the certificates don't hold.
        wants_objects = getattr(adversary, "uses_message_objects", True)
        has_sink = record_events or sink is not None or telemetry is not None
        if batch_messages is None:
            batched = not wants_objects and not has_sink and n <= MAX_BATCH_PIDS
        elif batch_messages:
            if wants_objects:
                raise ValueError(
                    "batch_messages=True requires an adversary that declares "
                    "uses_message_objects = False"
                )
            if has_sink:
                raise ValueError(
                    "batch_messages=True is incompatible with event sinks: "
                    "per-message events require materialized messages"
                )
            if n > MAX_BATCH_PIDS:
                raise ValueError(
                    f"batch descriptors encode pids in {PID_BITS} bits; "
                    f"n={n} exceeds the {MAX_BATCH_PIDS} ceiling"
                )
            batched = True
        else:
            batched = False
        # Skip the per-endpoint index bookkeeping when this run's
        # adversary declared it never reads the index API.
        self.in_flight = InFlightPool(
            indexed=getattr(adversary, "uses_endpoint_indexes", True),
            batched=batched,
        )
        self.metrics = Metrics(n)
        # Delta propagation: per-sender trackers (created lazily on first
        # broadcast) that shrink PROPAGATE payloads to entries the
        # recipient has not provably absorbed.  Semantically invisible —
        # register states, events, and metrics are identical to full
        # propagation (metrics/events report *logical* payload sizes);
        # the physical savings are reported via :attr:`delta_stats`.
        self.delta_propagation = delta_propagation
        self._delta: dict[int, DeltaTracker] | None = (
            {} if delta_propagation else None
        )
        # Recycled Message objects (only when no event sink holds raw
        # message references); see _deliver.  The cap scales with n: one
        # broadcast materializes up to n - 1 replies, so the hardcoded
        # small cap that served n<=256 would starve the freelist at large
        # n and put the allocator back on the hot path.
        self._free_messages: list[Message] = []
        self._free_cap = max(256, 2 * n)
        self.trace = Trace(enabled=record_events)
        self.profiler = profiler
        # The structured event stream (repro.obs).  ``record_events`` keeps
        # the legacy Trace populated through an adapter sink; an explicit
        # ``sink`` receives the full typed stream; ``telemetry`` is a
        # second sink slot for live consumers (a MetricsSink,
        # LiveTelemetry, or StreamingChecker) so callers can record a
        # trace and watch it at the same time.  When all are absent every
        # emission site below reduces to one ``is None`` check.
        sinks: list = []
        if record_events:
            sinks.append(TraceAdapterSink(self.trace))
        if sink is not None:
            sinks.append(sink)
        if telemetry is not None:
            sinks.append(telemetry)
        self._obs = combine_sinks(sinks)
        self.clock = 0
        self.max_events = max_events if max_events is not None else 100_000 + 1_000 * n * n
        self._call_counter = 0
        # Run-local message uid source: uids restart at 0 for every
        # simulation, so back-to-back runs in one process are byte-identical
        # (the module-global fallback in messages.py would leak earlier
        # runs' message counts into this run's uids).
        self._uid_counter = itertools.count()
        self._needs_step: set[int] = set(participants)
        self._undecided: set[int] = set(participants)
        self._crashed: set[int] = set()
        self._start_times: dict[int, int] = {}
        if self._obs is not None:
            for process in self.processes:
                process.put_hook = self._make_put_hook(process.pid)
                process.obs = self._make_obs_hook(process.pid)

    def _make_put_hook(self, pid: int):
        def hook(var, key, value):
            self._obs.emit(Event(
                self.clock,
                EventType.REG_PUT,
                pid,
                {"var": var, "key": key, "value": value},
                raw=(var, key, value),
            ))

        return hook

    def _make_obs_hook(self, pid: int):
        """Emission channel handed to processes for coin flips and the
        protocol-level annotations (phase/round transitions)."""

        def hook(etype: str, fields: dict, raw: Any = None) -> None:
            self._obs.emit(Event(self.clock, etype, pid, fields, raw))

        return hook

    # ------------------------------------------------------------------
    # Adversary-facing inspection API
    # ------------------------------------------------------------------

    @property
    def steppable(self) -> set[int]:
        """Pids for which a Step action would make progress right now.

        A participant is steppable when it has not started yet, or when its
        outstanding ``communicate`` call has already reached its quorum.
        The returned set is live; adversaries must not mutate it.
        """
        return self._needs_step

    @property
    def crashed(self) -> frozenset[int]:
        """The crashed processor ids, as an immutable set."""
        return frozenset(self._crashed)

    @property
    def undecided(self) -> frozenset[int]:
        """Alive participants that have not yet returned."""
        return frozenset(self._undecided)

    @property
    def crashes_remaining(self) -> int:
        """How many more crashes the ``t <= ceil(n/2) - 1`` budget allows."""
        return self.crash_budget - len(self._crashed)

    def process(self, pid: int) -> Process:
        """The runtime state of processor ``pid`` (adversaries may read it)."""
        return self.processes[pid]

    def has_enabled_action(self) -> bool:
        """True iff a delivery or a useful step is currently possible."""
        return bool(self.in_flight) or bool(self._needs_step)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, require_termination: bool = True) -> SimulationResult:
        """Drive the simulation until all alive participants decide.

        Raises :class:`SimulationLimitError` if the event budget runs out
        and :class:`QuiescenceError` (when ``require_termination``) if the
        system goes quiet with undecided participants — the expected
        outcome when more than ``ceil(n/2) - 1`` processors were crashed.
        """
        self.adversary.setup(self)
        # Without a profiler, skip the execute() span wrapper per action —
        # one call frame per event is measurable at millions of events.
        execute = self._execute if self.profiler is None else self.execute
        while self._undecided:
            if self.metrics.events_executed >= self.max_events:
                raise SimulationLimitError(
                    f"exceeded {self.max_events} events with "
                    f"{len(self._undecided)} undecided participants"
                )
            if self.profiler is None:
                action = self.adversary.choose(self)
            else:
                with self.profiler.span("adversary.choose"):
                    action = self.adversary.choose(self)
            if action is None:
                if self.has_enabled_action():
                    raise AdversaryProtocolError(
                        "adversary passed while actions were still enabled"
                    )
                break
            execute(action)
        if require_termination and self._undecided:
            raise QuiescenceError(
                f"participants {sorted(self._undecided)} never decided"
            )
        return self._result()

    def execute(self, action: Action) -> None:
        """Apply one adversary-chosen action."""
        if self.profiler is None:
            self._execute(action)
        else:
            label = _ACTION_SPANS.get(type(action), "execute.unknown")
            with self.profiler.span(label):
                self._execute(action)

    def _execute(self, action: Action) -> None:
        self.metrics.events_executed += 1
        self.clock += 1
        # DeliverBatch first: on a batch run every delivery takes this
        # branch, and deliveries dominate the action mix.
        if isinstance(action, DeliverBatch):
            self._deliver_batch(action)
        elif isinstance(action, Deliver):
            self._deliver(action.message)
        elif isinstance(action, Step):
            self._step(action.pid)
        elif isinstance(action, Crash):
            self._crash(action.pid)
        else:
            raise AdversaryProtocolError(f"unknown action: {action!r}")

    def _result(self) -> SimulationResult:
        decisions = {}
        for process in self.processes:
            if process.decided:
                assert process.decide_time is not None
                decisions[process.pid] = Decision(
                    pid=process.pid,
                    result=process.result,
                    start_time=self._start_times[process.pid],
                    decide_time=process.decide_time,
                )
        return SimulationResult(
            n=self.n,
            decisions=decisions,
            metrics=self.metrics,
            trace=self.trace,
            undecided=frozenset(self._undecided),
            crashed=frozenset(self._crashed),
            start_times=dict(self._start_times),
        )

    # ------------------------------------------------------------------
    # Action semantics
    # ------------------------------------------------------------------

    def _deliver(self, message: Message) -> None:
        self.in_flight.remove(message)
        self.metrics.deliveries += 1
        recipient = self.processes[message.recipient]
        if self._obs is not None:
            # Carries (src, dst, kind, call): together with sched.step and
            # sched.crash this is the full schedule the replayer re-drives.
            self._obs.emit(Event(
                self.clock,
                EventType.MSG_DELIVER,
                message.recipient,
                {
                    "kind": message.kind.value,
                    "src": message.sender,
                    "dst": message.recipient,
                    "call": message.call_id,
                    "var": message.var,
                },
                raw=message,
            ))
        if recipient.status is ProcessStatus.CRASHED:
            # Delivered into the void; faulty processors never reply.  The
            # swallowed Message is still recyclable — nothing retained it.
            if self._obs is None and len(self._free_messages) < self._free_cap:
                self._free_messages.append(message)
            return
        if message.kind is MessageKind.PROPAGATE:
            assert message.entries is not None
            if message.entries:
                # Empty payloads (fully delta-suppressed) skip the merge
                # call outright — merging {} is a no-op anyway.
                recipient.registers.merge(message.var, message.entries)
            self._send(
                recipient,
                self._new_message(
                    sender=recipient.pid,
                    recipient=message.sender,
                    kind=MessageKind.ACK,
                    call_id=message.call_id,
                    var=message.var,
                ),
                0,
            )
        elif message.kind is MessageKind.COLLECT:
            # Shared copy-on-write snapshot of the responder's view;
            # zero-copy until the responder's next write to the var.  The
            # memoized value view rides along so the collector appends it
            # without rebuilding {key: value} per reply.
            entries = recipient.registers.entries(message.var)
            self._send(
                recipient,
                self._new_message(
                    sender=recipient.pid,
                    recipient=message.sender,
                    kind=MessageKind.COLLECT_REPLY,
                    call_id=message.call_id,
                    var=message.var,
                    entries=entries,
                    view=recipient.registers.value_view(message.var),
                ),
                len(entries),
            )
        else:
            self._record_reply(recipient, message)
        if self._obs is None and len(self._free_messages) < self._free_cap:
            # Recycle the delivered Message: nothing retains it (the pool
            # dropped it above, views/metrics keep only payload mappings,
            # and adversaries do not hold delivered messages).  With an
            # event sink attached the raw object escaped into the stream,
            # so recycling is disabled entirely.
            self._free_messages.append(message)

    def _record_reply(self, process: Process, message: Message) -> None:
        if message.kind is MessageKind.ACK and self._delta is not None:
            # Fold the ACK into the sender's delta watermarks *before* the
            # staleness check: an ACK arriving after its call resolved
            # still proves the recipient merged that call's payload.
            tracker = self._delta.get(process.pid)
            if tracker is not None:
                tracker.on_ack(message.sender, message.call_id)
        pending = process.pending
        if pending is None or pending.call_id != message.call_id:
            return  # stale acknowledgement for an already-resolved call
        if message.kind is MessageKind.ACK and isinstance(pending.request, Propagate):
            pending.acks += 1
        elif message.kind is MessageKind.COLLECT_REPLY and isinstance(
            pending.request, Collect
        ):
            assert message.entries is not None and pending.views is not None
            pending.acks += 1
            view = message.view
            if view is None:  # externally built reply (unit tests)
                view = {key: entry[1] for key, entry in message.entries.items()}
            pending.views.append(view)
        if pending.satisfied and process.status is ProcessStatus.RUNNING:
            self._needs_step.add(process.pid)
            if self._obs is not None:
                self._obs.emit(Event(
                    self.clock,
                    EventType.COMM_DONE,
                    process.pid,
                    {"call": pending.call_id, "acks": pending.acks},
                ))

    def _deliver_batch(self, action: DeliverBatch) -> None:
        """Deliver one batch descriptor — the columnar twin of :meth:`_deliver`.

        Mirrors the materialized path operation for operation (same pool
        mutations in the same order, same metrics updates, same crash
        semantics) so the two modes stay byte-identical; the only
        intentional difference is *when* delta payloads are computed
        (delivery time here, send time there — see
        :class:`~repro.sim.messages.Broadcast`).
        """
        pool = self.in_flight
        if not pool._batched:
            raise AdversaryProtocolError(
                "DeliverBatch action on a materialized (non-batch) pool"
            )
        desc = action.desc
        slot = action.slot
        # Inlined InFlightPool.remove_descriptor / broadcast_of and the
        # Broadcast/Metrics single-field updates below: this method runs
        # once per delivered message (millions of times at n=65536), and
        # the call frames alone cost ~25% of the loop.
        descs = pool._descs
        if slot < 0 or slot >= len(descs) or descs[slot] != desc:
            raise KeyError(
                f"descriptor not in flight: slot={slot} desc={desc}"
            )
        last = descs.pop()
        if slot < len(descs):
            descs[slot] = last
        metrics = self.metrics
        metrics.deliveries += 1
        broadcast = pool._broadcasts[desc >> BROADCAST_SHIFT]
        endpoint = desc & PID_MASK
        if desc & REPLY_BIT:
            # Reply leg: fold the ack into the broadcaster's pending call
            # (the body of _record_batch_reply, inlined — replies are half
            # of all deliveries).
            process = self.processes[broadcast.sender]
            if process.status is ProcessStatus.CRASHED:
                # Same order as the materialized path: a reply delivered
                # to a crashed broadcaster vanishes before any accounting
                # — delta watermarks included (the crashed sender never
                # sends again, so the lost fold is unobservable there too).
                if broadcast.views is not None:
                    broadcast.views.pop(endpoint, None)
                return
            if broadcast.kind is _PROPAGATE:
                tracker = broadcast.tracker
                if tracker is not None:
                    # Before the staleness check, exactly like
                    # _record_reply: a stale ACK still proves the
                    # recipient merged the payload.
                    tracker.on_ack(endpoint, broadcast.call_id)
                pending = process.pending
                if pending is None or pending.call_id != broadcast.call_id:
                    return  # stale ack for an already-resolved call
                pending.acks += 1
            else:
                view = broadcast.views.pop(endpoint)
                pending = process.pending
                if pending is None or pending.call_id != broadcast.call_id:
                    return
                pending.acks += 1
                pending.views.append(view)
            if pending.satisfied and process.status is ProcessStatus.RUNNING:
                self._needs_step.add(broadcast.sender)
            return
        # Broadcast.mark_delivered, inlined.
        words = broadcast._undelivered_words
        words[endpoint >> 6] &= ~(1 << (endpoint & 63))
        broadcast.undelivered_count -= 1
        recipient = self.processes[endpoint]
        if recipient.status is ProcessStatus.CRASHED:
            return  # delivered into the void; faulty processors never reply
        if broadcast.kind is _PROPAGATE:
            entries = broadcast.entries
            tracker = broadcast.tracker
            if tracker is not None:
                entries = tracker.payload_for(
                    endpoint, broadcast.var, broadcast.entries,
                    broadcast.ticks, broadcast.cache,
                )
            if entries:
                recipient.registers.merge(broadcast.var, entries)
            descs.append(desc | REPLY_BIT)  # pool.add_reply, inlined
            recipient.messages_sent += 1
            # Metrics.record_send(endpoint, ACK, cells=0), inlined.
            metrics.messages_total += 1
            metrics.messages_by_kind[_ACK] += 1
            metrics.messages_sent_by[endpoint] += 1
        else:
            # COLLECT: capture the responder's memoized value view at
            # request-delivery time (its registers may change before the
            # reply leg lands) — the snapshot the materialized path pins
            # by attaching the view to the COLLECT_REPLY message.
            view = recipient.registers.value_view(broadcast.var)
            broadcast.views[endpoint] = view
            descs.append(desc | REPLY_BIT)  # pool.add_reply, inlined
            recipient.messages_sent += 1
            # Metrics.record_send(endpoint, COLLECT_REPLY, len(view)), inlined.
            metrics.messages_total += 1
            metrics.messages_by_kind[_COLLECT_REPLY] += 1
            metrics.messages_sent_by[endpoint] += 1
            metrics.payload_cells += len(view)

    def _step(self, pid: int) -> None:
        process = self.processes[pid]
        if process.status is ProcessStatus.CRASHED:
            raise AdversaryProtocolError(f"cannot step crashed processor {pid}")
        self.metrics.steps += 1
        process.steps_taken += 1
        if self._obs is not None:
            self._obs.emit(Event(self.clock, EventType.SCHED_STEP, pid, _NO_FIELDS))
        if process.status is ProcessStatus.IDLE:
            self._start_times[pid] = self.clock
            if self._obs is not None:
                self._obs.emit(Event(self.clock, EventType.PROC_START, pid, _NO_FIELDS))
            process.start()
            self._advance(process, None)
        while (
            process.status is ProcessStatus.RUNNING
            and process.pending is not None
            and process.pending.satisfied
        ):
            pending, process.pending = process.pending, None
            self._advance(process, pending.result())
        self._needs_step.discard(pid)

    def _crash(self, pid: int) -> None:
        if self.crashes_remaining <= 0:
            raise CrashBudgetError(
                f"crash budget {self.crash_budget} exhausted; cannot crash {pid}"
            )
        process = self.processes[pid]
        if process.status is ProcessStatus.CRASHED:
            raise AdversaryProtocolError(f"processor {pid} is already crashed")
        process.status = ProcessStatus.CRASHED
        self._crashed.add(pid)
        self._needs_step.discard(pid)
        self._undecided.discard(pid)
        self.metrics.crashes += 1
        if self._obs is not None:
            self._obs.emit(Event(self.clock, EventType.SCHED_CRASH, pid, _NO_FIELDS))

    # ------------------------------------------------------------------
    # Coroutine advancement
    # ------------------------------------------------------------------

    def _advance(self, process: Process, send_value: Any) -> None:
        assert process.coroutine is not None
        # Checkpoint support (repro.sim.snapshot): generators cannot be
        # deep-copied, so a fork rebuilds each coroutine by replaying the
        # exact values it consumed — resume inputs recorded here, register
        # reads and coin outcomes recorded in ProcessAPI.  One None check
        # when recording is off.
        if process.io_record is not None:
            process.io_record.append(send_value)
        try:
            request = process.coroutine.send(send_value)
        except StopIteration as stop:
            process.status = ProcessStatus.DONE
            process.result = stop.value
            process.decide_time = self.clock
            process.pending = None
            self._undecided.discard(process.pid)
            if self._obs is not None:
                self._obs.emit(Event(
                    self.clock,
                    EventType.PROC_DECIDE,
                    process.pid,
                    {"result": stop.value},
                    raw=stop.value,
                ))
            return
        if not isinstance(request, (Propagate, Collect)):
            raise ProcessProtocolError(
                f"processor {process.pid} yielded {request!r}; expected a "
                "Propagate or Collect request"
            )
        self._issue_communicate(process, request)

    def _issue_communicate(self, process: Process, request: Propagate | Collect) -> None:
        self._call_counter += 1
        call_id = self._call_counter
        process.comm_calls += 1
        self.metrics.record_comm_call(process.pid)
        if self._obs is not None:
            self._obs.emit(Event(
                self.clock,
                EventType.COMM_CALL,
                process.pid,
                {
                    "call": call_id,
                    "kind": "propagate" if isinstance(request, Propagate) else "collect",
                    "var": request.var,
                },
                raw=request,
            ))
        needed_remote = self.n // 2  # quorum = floor(n/2) + 1, counting self
        pending = PendingCall(call_id=call_id, request=request, needed=needed_remote)
        pid = process.pid
        var = request.var
        tracker = None
        ticks: Mapping[Any, int] = _NO_FIELDS
        send_ticks: Mapping[Any, int] | None = None
        payload_cache: dict[int, Mapping[Any, Any]] = {}
        if isinstance(request, Propagate):
            # One payload mapping per communicate call, shared (frozen,
            # copy-on-write — see RegisterFile.entries) by all n-1 messages.
            entries = process.registers.entries(request.var, request.keys)
            kind = MessageKind.PROPAGATE
            # ``cells`` is the logical payload size; delta mode may ship
            # fewer physical entries per recipient but reports this.
            cells = len(entries)
            if self._delta is not None:
                tracker = self._delta.get(pid)
                if tracker is None:
                    tracker = self._delta[pid] = DeltaTracker()
                ticks = process.registers.mod_ticks(var)
                send_ticks = tracker.begin_call(call_id, var, entries, ticks)
        else:
            entries = None
            pending.views = [process.registers.value_view(var)]
            kind = MessageKind.COLLECT
            cells = 0
        process.pending = pending
        in_flight = self.in_flight
        if in_flight.batched:
            # Columnar fast path: one Broadcast record plus n-1 packed
            # descriptors (two C-speed range-extends) replace the n-1
            # Message constructions and pool insertions below.  Delta
            # payloads are computed lazily at delivery time against the
            # send-time tick snapshot the tracker just recorded.
            in_flight.open_broadcast(
                pid, call_id, kind, var, self.n,
                entries=entries, ticks=send_ticks, tracker=tracker,
            )
            process.messages_sent += self.n - 1
            self.metrics.record_send_batch(pid, kind, cells, self.n - 1)
        elif self._obs is None:
            # Materialized fast path (no sink): per-message accounting
            # (metrics, counter bumps) is folded into one update after the
            # loop; only the pool insertion remains per message.
            for recipient in range(self.n):
                if recipient == pid:
                    continue
                payload = (
                    entries
                    if tracker is None
                    else tracker.payload_for(
                        recipient, var, entries, ticks, payload_cache
                    )
                )
                in_flight.add(self._new_message(
                    sender=pid,
                    recipient=recipient,
                    kind=kind,
                    call_id=call_id,
                    var=var,
                    entries=payload,
                ))
            process.messages_sent += self.n - 1
            self.metrics.record_send_batch(pid, kind, cells, self.n - 1)
        else:
            for recipient in range(self.n):
                if recipient == pid:
                    continue
                payload = (
                    entries
                    if tracker is None
                    else tracker.payload_for(
                        recipient, var, entries, ticks, payload_cache
                    )
                )
                self._send(
                    process,
                    self._new_message(
                        sender=pid,
                        recipient=recipient,
                        kind=kind,
                        call_id=call_id,
                        var=var,
                        entries=payload,
                    ),
                    cells,
                )
        if pending.satisfied:
            # Degenerate quorums (n == 1): resolvable without remote acks.
            self._needs_step.add(process.pid)
            if self._obs is not None:
                self._obs.emit(Event(
                    self.clock,
                    EventType.COMM_DONE,
                    process.pid,
                    {"call": call_id, "acks": pending.acks},
                ))

    def _new_message(
        self,
        sender: int,
        recipient: int,
        kind: MessageKind,
        call_id: int,
        var: str,
        entries: Mapping[Any, Any] | None = None,
        view: Mapping[Any, Any] | None = None,
    ) -> Message:
        """Build (or recycle) a Message, stamping the run-local uid.

        Recycled objects come from the freelist populated by
        :meth:`_deliver`; every field is overwritten here, so reuse is
        invisible.  The freelist stays empty whenever an event sink is
        attached (raw messages then escape into the stream).
        """
        free = self._free_messages
        if free:
            message = free.pop()
            message.sender = sender
            message.recipient = recipient
            message.kind = kind
            message.call_id = call_id
            message.var = var
            message.entries = entries
            message.view = view
            message.uid = next(self._uid_counter)
            return message
        return Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            call_id=call_id,
            var=var,
            entries=entries,
            uid=next(self._uid_counter),
            view=view,
        )

    def _send(self, sender: Process, message: Message, cells: int) -> None:
        """Account and enqueue one message; ``cells`` is the logical size."""
        sender.messages_sent += 1
        self.metrics.record_send(sender.pid, message.kind, cells)
        if self._obs is not None:
            self._obs.emit(Event(
                self.clock,
                EventType.MSG_SEND,
                sender.pid,
                {
                    "kind": message.kind.value,
                    "src": message.sender,
                    "dst": message.recipient,
                    "call": message.call_id,
                    "var": message.var,
                    "cells": cells,
                },
                raw=message,
            ))
        self.in_flight.add(message)

    @property
    def delta_stats(self) -> dict[str, int]:
        """Physical delta-propagation savings, summed over all senders.

        Diagnostics only: ``Metrics``/events always report logical payload
        sizes, so these counters are the *only* place full and delta runs
        differ.  All zeros when ``delta_propagation=False`` or nothing was
        suppressed.
        """
        stats = {
            "full_payloads": 0,
            "delta_payloads": 0,
            "empty_payloads": 0,
            "cells_suppressed": 0,
        }
        if self._delta:
            for tracker in self._delta.values():
                stats["full_payloads"] += tracker.full_payloads
                stats["delta_payloads"] += tracker.delta_payloads
                stats["empty_payloads"] += tracker.empty_payloads
                stats["cells_suppressed"] += tracker.cells_suppressed
        return stats
