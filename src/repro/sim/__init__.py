"""Asynchronous message-passing simulator substrate.

This package implements the classic asynchronous message-passing model of
the paper (Section 2): ``n`` processors, independent point-to-point
channels, adversary-scheduled computation/delivery steps, crash faults,
and the quorum-based ``communicate`` primitive of [ABND95].
"""

from . import pidset
from .communicate import Collect, PendingCall, Propagate, Request
from .errors import (
    AdversaryProtocolError,
    CheckpointError,
    CrashBudgetError,
    ProcessProtocolError,
    QuiescenceError,
    SimulationError,
    SimulationLimitError,
)
from .messages import Broadcast, DeliverBatch, InFlightPool, Message, MessageKind
from .process import AlgorithmFactory, Process, ProcessAPI, ProcessStatus
from .registers import POLICY_MAX, POLICY_OR, POLICY_VERSION, RegisterFile, merge_entry
from .rng import CoinLog, derive_seed, make_stream
from .runtime import (
    Action,
    Crash,
    Decision,
    Deliver,
    Simulation,
    SimulationResult,
    Step,
)
from .snapshot import SimulationCheckpoint, capture, enable_recording
from .trace import Metrics, Trace, TraceEvent

__all__ = [
    "Action",
    "AdversaryProtocolError",
    "CheckpointError",
    "SimulationCheckpoint",
    "capture",
    "enable_recording",
    "AlgorithmFactory",
    "Broadcast",
    "CoinLog",
    "Collect",
    "Crash",
    "CrashBudgetError",
    "Decision",
    "Deliver",
    "DeliverBatch",
    "InFlightPool",
    "Message",
    "MessageKind",
    "Metrics",
    "PendingCall",
    "POLICY_MAX",
    "POLICY_OR",
    "POLICY_VERSION",
    "Process",
    "ProcessAPI",
    "ProcessProtocolError",
    "ProcessStatus",
    "Propagate",
    "QuiescenceError",
    "RegisterFile",
    "Request",
    "Simulation",
    "SimulationError",
    "SimulationLimitError",
    "SimulationResult",
    "Step",
    "Trace",
    "TraceEvent",
    "derive_seed",
    "make_stream",
    "merge_entry",
    "pidset",
]
