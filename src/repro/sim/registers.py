"""Per-processor register views with explicit merge policies.

Every named variable (``Status``, ``Round``, ``door``, ``Contended``, ...)
is a map from keys to values.  A processor holds its own *view* of each
variable; views are reconciled when PROPAGATE or COLLECT_REPLY messages
arrive.  Three merge policies cover every variable in the paper:

* ``VERSION`` — single-writer cells (a processor's own ``Status[i]`` or
  ``Round[i]``): the writer stamps each write with an increasing version,
  and receivers keep the highest version seen.  Because only the owner
  writes the cell, versions totally order its writes.
* ``OR`` — sticky booleans written by anyone (``door``, ``Contended[j]``):
  once true, always true.
* ``MAX`` — monotone integers written by anyone; the maximum wins.

These policies make every variable in the paper a monotone join
semilattice, so merging is order-insensitive — exactly the property the
quorum-intersection arguments (Claims 3.1, 3.4, Lemma A.2) rely on.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

POLICY_VERSION = "v"
POLICY_OR = "o"
POLICY_MAX = "m"

_POLICIES = frozenset({POLICY_VERSION, POLICY_OR, POLICY_MAX})

Entry = tuple[int, Any, str]  # (version, value, policy)


def merge_entry(current: Entry | None, incoming: Entry) -> Entry:
    """Combine two entries for the same key according to their policy."""
    if current is None:
        return incoming
    version, value, policy = incoming
    cur_version, cur_value, cur_policy = current
    if policy != cur_policy:
        raise ValueError(f"conflicting merge policies: {cur_policy!r} vs {policy!r}")
    if policy == POLICY_VERSION:
        return incoming if version > cur_version else current
    if policy == POLICY_OR:
        return (max(version, cur_version), bool(cur_value) or bool(value), policy)
    if policy == POLICY_MAX:
        merged = cur_value if cur_value >= value else value
        return (max(version, cur_version), merged, policy)
    raise ValueError(f"unknown merge policy: {policy!r}")


class RegisterFile:
    """One processor's view of every shared variable.

    The structure is ``{var: {key: (version, value, policy)}}``.  Keys are
    processor ids for per-processor cells and name indices for the renaming
    algorithm's ``Contended`` array.

    **Payload sharing.**  :meth:`entries` with no key restriction returns
    the *live* cell mapping and marks the variable shared, so one
    ``communicate`` call can attach a single mapping to all ``n - 1``
    outgoing messages without copying it per recipient.  The mapping is
    frozen from that moment on: the next local :meth:`put` or :meth:`merge`
    copies the cells before writing (copy-on-write), so every in-flight
    message keeps an exact snapshot of the state at send time.  The
    corollary invariant is that holders of a shared mapping — message
    recipients, adversaries, checkers — must treat it as read-only.
    """

    __slots__ = ("_vars", "_write_clocks", "_shared")

    def __init__(self) -> None:
        self._vars: dict[str, dict[Hashable, Entry]] = {}
        self._write_clocks: dict[tuple[str, Hashable], int] = {}
        self._shared: set[str] = set()

    def _writable_cells(self, var: str) -> dict[Hashable, Entry]:
        """The cell dict for ``var``, copied first if a snapshot shares it."""
        cells = self._vars.get(var)
        if cells is None:
            cells = {}
            self._vars[var] = cells
        elif var in self._shared:
            cells = dict(cells)
            self._vars[var] = cells
            self._shared.discard(var)
        return cells

    def put(self, var: str, key: Hashable, value: Any, policy: str = POLICY_VERSION) -> None:
        """Perform a local write, bumping the writer-side version."""
        if policy not in _POLICIES:
            raise ValueError(f"unknown merge policy: {policy!r}")
        clock_key = (var, key)
        version = self._write_clocks.get(clock_key, 0) + 1
        self._write_clocks[clock_key] = version
        cells = self._writable_cells(var)
        cells[key] = merge_entry(cells.get(key), (version, value, policy))

    def get(self, var: str, key: Hashable, default: Any = None) -> Any:
        """Read the value stored under ``var[key]``, or ``default``."""
        entry = self._vars.get(var, {}).get(key)
        return default if entry is None else entry[1]

    def has(self, var: str, key: Hashable) -> bool:
        """True iff this view holds an entry for ``var[key]``."""
        return key in self._vars.get(var, {})

    def keys(self, var: str) -> Iterable[Hashable]:
        """The keys present in this view of ``var``."""
        return self._vars.get(var, {}).keys()

    def view(self, var: str) -> dict[Hashable, Any]:
        """A plain ``{key: value}`` snapshot of one variable."""
        return {key: entry[1] for key, entry in self._vars.get(var, {}).items()}

    def entries(self, var: str, keys: Iterable[Hashable] | None = None) -> Mapping[Hashable, Entry]:
        """Raw entries for transmission; restricted to ``keys`` if given.

        The unrestricted form returns the live cell mapping and marks it
        shared; the next local write copies first (see the class docstring).
        Callers must not mutate the returned mapping.  The key-restricted
        form always builds a fresh private dict.
        """
        cells = self._vars.get(var)
        if cells is None:
            return {}
        if keys is None:
            self._shared.add(var)
            return cells
        return {key: cells[key] for key in keys if key in cells}

    def merge(self, var: str, incoming: Mapping[Hashable, Entry]) -> None:
        """Reconcile received entries into this view.

        ``incoming`` is typically a mapping shared by every recipient of a
        PROPAGATE broadcast; it is only read, never written (the
        copy-on-write contract of :meth:`entries`).
        """
        cells = self._writable_cells(var)
        for key, entry in incoming.items():
            cells[key] = merge_entry(cells.get(key), entry)

    def variables(self) -> Iterable[str]:
        """Names of all variables this view has entries for."""
        return self._vars.keys()
