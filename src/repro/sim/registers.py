"""Per-processor register views with explicit merge policies.

Every named variable (``Status``, ``Round``, ``door``, ``Contended``, ...)
is a map from keys to values.  A processor holds its own *view* of each
variable; views are reconciled when PROPAGATE or COLLECT_REPLY messages
arrive.  Three merge policies cover every variable in the paper:

* ``VERSION`` — single-writer cells (a processor's own ``Status[i]`` or
  ``Round[i]``): the writer stamps each write with an increasing version,
  and receivers keep the highest version seen.  Because only the owner
  writes the cell, versions totally order its writes.
* ``OR`` — sticky booleans written by anyone (``door``, ``Contended[j]``):
  once true, always true.
* ``MAX`` — monotone integers written by anyone; the maximum wins.

These policies make every variable in the paper a monotone join
semilattice, so merging is order-insensitive — exactly the property the
quorum-intersection arguments (Claims 3.1, 3.4, Lemma A.2) rely on.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

POLICY_VERSION = "v"
POLICY_OR = "o"
POLICY_MAX = "m"

_POLICIES = frozenset({POLICY_VERSION, POLICY_OR, POLICY_MAX})

Entry = tuple[int, Any, str]  # (version, value, policy)


def merge_entry(current: Entry | None, incoming: Entry) -> Entry:
    """Combine two entries for the same key according to their policy."""
    if current is None:
        return incoming
    version, value, policy = incoming
    cur_version, cur_value, cur_policy = current
    if policy != cur_policy:
        raise ValueError(f"conflicting merge policies: {cur_policy!r} vs {policy!r}")
    if policy == POLICY_VERSION:
        return incoming if version > cur_version else current
    if policy == POLICY_OR:
        return (max(version, cur_version), bool(cur_value) or bool(value), policy)
    if policy == POLICY_MAX:
        merged = cur_value if cur_value >= value else value
        return (max(version, cur_version), merged, policy)
    raise ValueError(f"unknown merge policy: {policy!r}")


class RegisterFile:
    """One processor's view of every shared variable.

    The structure is ``{var: {key: (version, value, policy)}}``.  Keys are
    processor ids for per-processor cells and name indices for the renaming
    algorithm's ``Contended`` array.

    **Payload sharing.**  :meth:`entries` with no key restriction returns
    the *live* cell mapping and marks the variable shared, so one
    ``communicate`` call can attach a single mapping to all ``n - 1``
    outgoing messages without copying it per recipient.  The mapping is
    frozen from that moment on: the next local :meth:`put` or :meth:`merge`
    copies the cells before writing (copy-on-write), so every in-flight
    message keeps an exact snapshot of the state at send time.  The
    corollary invariant is that holders of a shared mapping — message
    recipients, adversaries, checkers — must treat it as read-only.
    """

    __slots__ = (
        "_vars",
        "_write_clocks",
        "_shared",
        "_mods",
        "_mod_clock",
        "_view_cache",
    )

    def __init__(self) -> None:
        self._vars: dict[str, dict[Hashable, Entry]] = {}
        self._write_clocks: dict[tuple[str, Hashable], int] = {}
        self._shared: set[str] = set()
        # Per-cell modification ticks: ``_mods[var][key]`` is the value of
        # ``_mod_clock`` when that cell last changed.  Delta propagation
        # (see DeltaTracker) compares ticks, not versions — OR/MAX cells
        # can change value without outranking a version, so versions alone
        # cannot prove "unchanged since the recipient absorbed it".
        self._mods: dict[str, dict[Hashable, int]] = {}
        self._mod_clock = 0
        # value_view memo: var -> {key: value}, invalidated on any change
        # to the var.  Shared by every COLLECT_REPLY for the current epoch
        # of the var; holders must treat it as read-only (same contract as
        # entries()).
        self._view_cache: dict[str, dict[Hashable, Any]] = {}

    def _writable_cells(self, var: str) -> dict[Hashable, Entry]:
        """The cell dict for ``var``, copied first if a snapshot shares it."""
        cells = self._vars.get(var)
        if cells is None:
            cells = {}
            self._vars[var] = cells
        elif var in self._shared:
            cells = dict(cells)
            self._vars[var] = cells
            self._shared.discard(var)
        return cells

    def put(self, var: str, key: Hashable, value: Any, policy: str = POLICY_VERSION) -> None:
        """Perform a local write, bumping the writer-side version.

        Writes whose post-merge *value* equals the stored value (e.g.
        re-asserting a sticky OR flag, or a MAX write that loses) are
        complete no-ops: the entry keeps its version, no snapshot is
        copied, and the cell's modification tick stays put — which is what
        lets delta propagation keep suppressing the cell.  The skip is
        sound because versions only arbitrate between *different* values
        of a cell; an entry equal in value needs no fresher stamp.
        """
        if policy not in _POLICIES:
            raise ValueError(f"unknown merge policy: {policy!r}")
        current = self._vars.get(var)
        cur = current.get(key) if current is not None else None
        if cur is not None and cur[2] == policy:
            cur_value = cur[1]
            if policy == POLICY_OR:
                new_value = bool(cur_value) or bool(value)
            elif policy == POLICY_MAX:
                new_value = cur_value if cur_value >= value else value
            else:
                new_value = value
            if new_value == cur_value:
                return
        clock_key = (var, key)
        version = self._write_clocks.get(clock_key, 0) + 1
        self._write_clocks[clock_key] = version
        merged = merge_entry(cur, (version, value, policy))
        self._writable_cells(var)[key] = merged
        self._bump(var, key)

    def _bump(self, var: str, key: Hashable) -> None:
        """Advance the cell's modification tick and drop stale view memos."""
        mods = self._mods.get(var)
        if mods is None:
            mods = self._mods[var] = {}
        self._mod_clock += 1
        mods[key] = self._mod_clock
        self._view_cache.pop(var, None)

    def get(self, var: str, key: Hashable, default: Any = None) -> Any:
        """Read the value stored under ``var[key]``, or ``default``."""
        entry = self._vars.get(var, {}).get(key)
        return default if entry is None else entry[1]

    def has(self, var: str, key: Hashable) -> bool:
        """True iff this view holds an entry for ``var[key]``."""
        return key in self._vars.get(var, {})

    def keys(self, var: str) -> Iterable[Hashable]:
        """The keys present in this view of ``var``."""
        return self._vars.get(var, {}).keys()

    def view(self, var: str) -> dict[Hashable, Any]:
        """A plain ``{key: value}`` snapshot of one variable."""
        return {key: entry[1] for key, entry in self._vars.get(var, {}).items()}

    def entries(self, var: str, keys: Iterable[Hashable] | None = None) -> Mapping[Hashable, Entry]:
        """Raw entries for transmission; restricted to ``keys`` if given.

        The unrestricted form returns the live cell mapping and marks it
        shared; the next local write copies first (see the class docstring).
        Callers must not mutate the returned mapping.  The key-restricted
        form always builds a fresh private dict.
        """
        cells = self._vars.get(var)
        if cells is None:
            return {}
        if keys is None:
            self._shared.add(var)
            return cells
        return {key: cells[key] for key in keys if key in cells}

    def merge(self, var: str, incoming: Mapping[Hashable, Entry]) -> None:
        """Reconcile received entries into this view.

        ``incoming`` is typically a mapping shared by every recipient of a
        PROPAGATE broadcast; it is only read, never written (the
        copy-on-write contract of :meth:`entries`).

        Entries that merge to their current value are skipped entirely:
        re-delivering an already-absorbed payload neither copies a shared
        cell dict nor advances any modification tick.  Merging is
        idempotent over a join semilattice, so the skip is unobservable —
        it is what makes the re-merge path (the common case under
        broadcast) allocation-free.
        """
        cells = self._vars.get(var)
        if cells is None:
            cells = self._vars[var] = {}
        writable = var not in self._shared
        for key, entry in incoming.items():
            cur = cells.get(key)
            if cur is not None:
                merged = merge_entry(cur, entry)
                if merged is cur or merged == cur:
                    continue
            else:
                merged = entry
            if not writable:
                cells = dict(cells)
                self._vars[var] = cells
                self._shared.discard(var)
                writable = True
            cells[key] = merged
            self._bump(var, key)

    def value_view(self, var: str) -> dict[Hashable, Any]:
        """The ``{key: value}`` view of ``var``, memoized per epoch.

        Unlike :meth:`view` (always a private copy), the returned dict is
        cached until the next change to ``var`` and may be shared by many
        COLLECT_REPLY messages — a responder answering collect traffic in
        a quiet epoch builds the view once instead of once per reply.
        Holders must treat it as read-only.  Later writes to ``var`` do
        not mutate previously returned views (a fresh dict is built), so
        the snapshot-at-call-time semantics match :meth:`view`.
        """
        cached = self._view_cache.get(var)
        if cached is not None:
            return cached
        view = {key: entry[1] for key, entry in self._vars.get(var, {}).items()}
        self._view_cache[var] = view
        return view

    def mod_ticks(self, var: str) -> Mapping[Hashable, int]:
        """Per-key modification ticks for ``var`` (empty if never written).

        Ticks are local, strictly increasing stamps: ``ticks[key]``
        changes exactly when the stored entry for ``key`` changes.  They
        are what :class:`DeltaTracker` compares to decide whether a
        recipient has provably absorbed the current entry.
        """
        return self._mods.get(var, _EMPTY_TICKS)

    def variables(self) -> Iterable[str]:
        """Names of all variables this view has entries for."""
        return self._vars.keys()


_EMPTY_TICKS: dict[Hashable, int] = {}
#: Shared immutable empty payload for fully-suppressed deltas.
_EMPTY_PAYLOAD: dict[Hashable, Entry] = {}


class DeltaTracker:
    """Per-sender bookkeeping that shrinks PROPAGATE payloads safely.

    For each ``(var, recipient, key)`` the tracker records the highest
    modification tick (see :meth:`RegisterFile.mod_ticks`) whose entry the
    recipient has *provably absorbed* — proven by an ACK for a call whose
    payload shipped that entry.  When broadcasting, a key is omitted for a
    recipient iff its acked tick is at least the cell's current tick: the
    entry is then literally unchanged since the recipient merged an equal
    entry, merging is idempotent over a join semilattice, so the omission
    cannot change the recipient's register state at any delivery —
    regardless of how the adversary orders or drops messages.

    Watermarks advance **only on ACK receipt** (never at send time: an
    in-flight payload may be delayed forever), including ACKs that arrive
    after the call already reached quorum — a stale ACK still proves the
    merge happened.  COLLECT_REPLY traffic is never delta'd: collects are
    the quorum-intersection reads (Claims 3.1/3.4) and always carry the
    full view.
    """

    __slots__ = (
        "_acked",
        "_inflight",
        "full_payloads",
        "delta_payloads",
        "empty_payloads",
        "cells_suppressed",
    )

    def __init__(self) -> None:
        #: var -> recipient -> {key: highest absorbed tick}
        self._acked: dict[str, dict[int, dict[Hashable, int]]] = {}
        #: call_id -> (var, {key: tick at send time})
        self._inflight: dict[int, tuple[str, dict[Hashable, int]]] = {}
        # Physical-savings counters (diagnostics only — *logical* payload
        # sizes are what Metrics/events report, so full and delta runs
        # stay byte-identical; see Simulation.delta_stats).
        self.full_payloads = 0
        self.delta_payloads = 0
        self.empty_payloads = 0
        self.cells_suppressed = 0

    def begin_call(
        self,
        call_id: int,
        var: str,
        payload: Mapping[Hashable, Entry],
        ticks: Mapping[Hashable, int],
    ) -> dict[Hashable, int]:
        """Record the send-time ticks of one PROPAGATE broadcast.

        One shared ticks snapshot serves every recipient: folding a tick
        for a key that was omitted for some recipient is a no-op, because
        omission required that recipient's watermark to already be at or
        above the send-time tick.

        Returns the snapshot so the batch plane can pin it on the
        :class:`~repro.sim.messages.Broadcast` record: batch-mode
        :meth:`payload_for` runs at delivery time, when the live tick
        mapping may already be ahead of the broadcast's send state.
        """
        snapshot = {key: ticks[key] for key in payload}
        self._inflight[call_id] = (var, snapshot)
        return snapshot

    def payload_for(
        self,
        recipient: int,
        var: str,
        full: Mapping[Hashable, Entry],
        ticks: Mapping[Hashable, int],
        cache: dict[int, Mapping[Hashable, Entry]],
    ) -> Mapping[Hashable, Entry]:
        """The delta payload for one recipient of a broadcast.

        ``cache`` is a per-call scratch dict keyed by the inclusion
        bitmask, so recipients with identical watermark states (the
        common case) share one payload mapping, exactly like the full
        payload is shared in full mode.
        """
        acked_var = self._acked.get(var)
        racked = acked_var.get(recipient) if acked_var is not None else None
        if not racked:
            self.full_payloads += 1
            return full
        mask = 0
        bit = 1
        suppressed = False
        for key in full:
            if racked.get(key, 0) < ticks[key]:
                mask |= bit
            else:
                suppressed = True
            bit <<= 1
        if not suppressed:
            self.full_payloads += 1
            return full
        if not mask:
            self.empty_payloads += 1
            self.cells_suppressed += len(full)
            return _EMPTY_PAYLOAD
        self.delta_payloads += 1
        self.cells_suppressed += len(full) - mask.bit_count()
        cached = cache.get(mask)
        if cached is None:
            bit = 1
            cached = {}
            for key, entry in full.items():
                if mask & bit:
                    cached[key] = entry
                bit <<= 1
            cache[mask] = cached
        return cached

    def on_ack(self, acker: int, call_id: int) -> None:
        """Fold one ACK into the acker's watermarks.

        Called for *every* incoming ACK, stale ones included: the pending
        call may be long resolved, but the ACK still proves the recipient
        merged that call's payload.
        """
        sent = self._inflight.get(call_id)
        if sent is None:
            return
        var, ticks = sent
        acked_var = self._acked.get(var)
        if acked_var is None:
            acked_var = self._acked[var] = {}
        racked = acked_var.get(acker)
        if racked is None:
            acked_var[acker] = dict(ticks)
            return
        for key, tick in ticks.items():
            if racked.get(key, 0) < tick:
                racked[key] = tick
