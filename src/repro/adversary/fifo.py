"""Deterministic eager scheduling — the closest thing to a synchronous run.

``EagerAdversary`` always delivers the most recently sent message first
(LIFO over the pool, which is O(1)); when nothing is in flight it steps
the lowest-pid steppable processor.  Deterministic given the protocol's
coin flips, so it is the workhorse scheduler for fast unit tests and for
benchmark baselines where adversarial scheduling is not the point.

``RoundRobinAdversary`` interleaves processors in pid order, stepping each
steppable processor once per sweep and delivering its traffic in between —
an approximation of a synchronous round structure under which per-phase
behaviour is easiest to eyeball.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.runtime import Action, Step
from .base import Adversary, fallback_action

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class EagerAdversary(Adversary):
    """Deliver newest-first, then step lowest pid.  Deterministic, fast."""

    name = "eager"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # delivers via last_action()

    def choose(self, sim: "Simulation") -> Action | None:
        """Deliver newest-first via the deterministic fallback."""
        return fallback_action(sim)


class RoundRobinAdversary(Adversary):
    """Step processors in a rotating pid order; drain messages in between."""

    name = "round_robin"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # delivers via last_action()

    def __init__(self) -> None:
        self._next_pid = 0

    def setup(self, sim: "Simulation") -> None:
        """Rewind the rotation cursor (adversary reuse contract)."""
        self._next_pid = 0

    def choose(self, sim: "Simulation") -> Action | None:
        """Drain in-flight messages, else step the next processor in rotation."""
        action = sim.in_flight.last_action()
        if action is not None:
            return action
        steppable = sim.steppable
        if not steppable:
            return None
        for offset in range(sim.n):
            pid = (self._next_pid + offset) % sim.n
            if pid in steppable:
                self._next_pid = (pid + 1) % sim.n
                return Step(pid)
        return None
