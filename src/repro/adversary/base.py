"""Adversary interface: the scheduler of the asynchronous system.

An adversary is asked, one action at a time, what happens next: deliver
some in-flight message, schedule a computation step of some processor, or
crash a processor (within the ``t <= ceil(n/2) - 1`` budget).  It may read
the entire simulation state — register views, outstanding calls, and every
coin a processor has flipped — which makes it the *strong adaptive*
adversary of the paper.  Oblivious (weak) adversaries are modelled by
simply not looking.

Every adversary used with :meth:`Simulation.run` must be *fair in the
limit*: as long as actions remain enabled it keeps choosing them, and it
starves no message or processor forever once nothing else is enabled.
:func:`fallback_action` implements that safety net; concrete adversaries
express their strategy first and fall back when out of targeted moves.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..sim.runtime import Action, Step

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


def fallback_action(sim: "Simulation") -> Action | None:
    """A progress-guaranteeing default: deliver something, else step someone.

    Returns ``None`` only when no action is enabled (quiescence).  Built
    on the pool's mode-agnostic
    :meth:`~repro.sim.messages.InFlightPool.last_action`, so it works
    unchanged on materialized and batch (columnar) pools.
    """
    action = sim.in_flight.last_action()
    if action is not None:
        return action
    steppable = sim.steppable
    if steppable:
        return Step(min(steppable))
    return None


class Adversary(abc.ABC):
    """Base class for scheduling strategies."""

    #: Short machine-readable identifier used in benchmark tables.
    name: str = "adversary"

    #: Whether this adversary reads the pool's per-endpoint index API
    #: (``sent_by``/``addressed_to``/``involving``).  Declaring ``False``
    #: lets the simulation build its :class:`~repro.sim.messages.InFlightPool`
    #: with ``indexed=False``, dropping two dict insertions per send and
    #: two deletions per delivery — a large fraction of per-message cost
    #: at scale.  Calling the index API anyway then raises
    #: ``RuntimeError``; when in doubt, leave the default ``True``.
    uses_endpoint_indexes: bool = True

    #: Whether this adversary reads :class:`~repro.sim.messages.Message`
    #: *objects* — via ``.messages``, ``any_message``, ``snapshot``, or
    #: the endpoint index API.  Declaring ``False`` certifies that it only
    #: uses the positional pool API (``len``, ``action_at``,
    #: ``endpoints_at``, ``last_action``), which lets the simulation skip
    #: materializing per-recipient messages entirely: every ``communicate``
    #: call becomes one columnar :class:`~repro.sim.messages.Broadcast`
    #: record plus packed int descriptors, and deliveries arrive as
    #: ``DeliverBatch`` actions.  Behaviour is byte-identical across the
    #: two planes (pinned by tests/sim/test_batch.py).  Runs with an event
    #: sink attached stay materialized regardless of this flag; when in
    #: doubt, leave the default ``True``.
    uses_message_objects: bool = True

    def setup(self, sim: "Simulation") -> None:
        """Hook called once per run, before the first action is requested.

        Reuse contract: an adversary instance may drive multiple runs
        (replay, shrinking, repeated trials), and ``setup`` is the reset
        point — implementations MUST restore every piece of per-run
        mutable state here (schedule cursors, consumed RNG streams,
        caches keyed on the previous simulation).  An adversary whose
        behaviour is a pure function of its constructor arguments then
        stays one across reuse.
        """

    @abc.abstractmethod
    def choose(self, sim: "Simulation") -> Action | None:
        """Pick the next enabled action, or ``None`` at quiescence."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
