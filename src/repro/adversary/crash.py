"""Crash-failure injection, composable with any scheduling strategy.

The model allows the adversary to crash up to ``t <= ceil(n/2) - 1``
processors at any point.  These wrappers add that capability to an inner
scheduler:

* :class:`CrashingAdversary` crashes specific processors at specific
  event counts (deterministic failure injection for tests);
* :class:`RandomCrashAdversary` crashes uniformly random alive processors
  at a configured rate until a budget is spent (stochastic fault storms
  for property tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.rng import make_stream
from ..sim.runtime import Action, Crash
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class CrashingAdversary(Adversary):
    """Crash ``pid`` once ``events_executed`` reaches ``at_event``.

    ``schedule`` is a sequence of ``(at_event, pid)`` pairs; crashes fire in
    order, each as soon as the event counter passes its trigger.
    """

    name = "crashing"

    def __init__(self, inner: Adversary, schedule: Sequence[tuple[int, int]]) -> None:
        self._inner = inner
        self._schedule = sorted(schedule)
        self._next = 0
        self.name = f"crashing+{inner.name}"
        # Pool-capability needs are the inner scheduler's; crash injection
        # itself never reads the pool.
        self.uses_endpoint_indexes = inner.uses_endpoint_indexes
        self.uses_message_objects = inner.uses_message_objects

    def setup(self, sim: "Simulation") -> None:
        """Rewind the crash-schedule cursor (adversary reuse contract).

        Without the rewind, a reused instance would skip every crash the
        previous run already fired — e.g. when re-running a recorded
        execution for analysis or shrinking — silently producing a
        crash-free schedule instead of the recorded one.
        """
        self._next = 0
        self._inner.setup(sim)

    def choose(self, sim: "Simulation") -> Action | None:
        """Fire any due scheduled crash, else defer to the inner scheduler."""
        while self._next < len(self._schedule):
            at_event, pid = self._schedule[self._next]
            if sim.metrics.events_executed < at_event:
                break
            self._next += 1
            if pid not in sim.crashed and sim.crashes_remaining > 0:
                return Crash(pid)
        return self._inner.choose(sim)


class RandomCrashAdversary(Adversary):
    """Crash a random alive processor with probability ``rate`` per action."""

    name = "random_crash"

    def __init__(
        self,
        inner: Adversary,
        rate: float = 0.001,
        seed: int = 0,
        max_crashes: int | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self._inner = inner
        self._rate = rate
        self._seed = seed
        self._rng = make_stream(seed, "adversary/random_crash")
        self._max_crashes = max_crashes
        self.name = f"random_crash+{inner.name}"
        # Pool-capability needs are the inner scheduler's; crash injection
        # itself never reads the pool.
        self.uses_endpoint_indexes = inner.uses_endpoint_indexes
        self.uses_message_objects = inner.uses_message_objects

    def setup(self, sim: "Simulation") -> None:
        """Re-derive the crash RNG (adversary reuse contract).

        The stream is consumed as the run progresses; re-deriving it from
        the stored seed makes a reused instance crash at the same points
        as a fresh one, so runs stay pure functions of ``(seed, inner)``.
        """
        self._rng = make_stream(self._seed, "adversary/random_crash")
        self._inner.setup(sim)

    def choose(self, sim: "Simulation") -> Action | None:
        """Maybe crash a random alive processor, else defer to the inner scheduler."""
        budget = sim.crashes_remaining
        if self._max_crashes is not None:
            budget = min(budget, self._max_crashes - len(sim.crashed))
        if budget > 0 and self._rng.random() < self._rate:
            alive = [pid for pid in range(sim.n) if pid not in sim.crashed]
            if alive:
                return Crash(alive[self._rng.randrange(len(alive))])
        return self._inner.choose(sim)
