"""Adversarial schedulers for the asynchronous message-passing simulator.

The strong adaptive adversary of the paper controls every delivery and
computation step and may examine all local state, including coin flips.
Each class here is one concrete strategy; ``ADVERSARY_FACTORIES`` maps
short names to zero-config constructors for use in benchmark sweeps.
"""

from .base import Adversary, fallback_action
from .bubble import BubbleAdversary
from .coin_aware import CoinAwareAdversary
from .crash import CrashingAdversary, RandomCrashAdversary
from .fifo import EagerAdversary, RoundRobinAdversary
from .oblivious import ObliviousAdversary
from .quorum_split import QuorumSplitAdversary
from .random_adversary import RandomAdversary
from .sequential import SequentialAdversary

ADVERSARY_FACTORIES = {
    "random": lambda seed=0: RandomAdversary(seed=seed),
    "eager": lambda seed=0: EagerAdversary(),
    "round_robin": lambda seed=0: RoundRobinAdversary(),
    "oblivious": lambda seed=0: ObliviousAdversary(seed=seed),
    "sequential": lambda seed=0: SequentialAdversary(),
    "coin_aware": lambda seed=0: CoinAwareAdversary(),
    "quorum_split": lambda seed=0: QuorumSplitAdversary(),
    "bubble": lambda seed=0: BubbleAdversary(),
}

__all__ = [
    "ADVERSARY_FACTORIES",
    "Adversary",
    "BubbleAdversary",
    "CoinAwareAdversary",
    "CrashingAdversary",
    "EagerAdversary",
    "ObliviousAdversary",
    "QuorumSplitAdversary",
    "RandomAdversary",
    "RandomCrashAdversary",
    "RoundRobinAdversary",
    "SequentialAdversary",
    "fallback_action",
]
