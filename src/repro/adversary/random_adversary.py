"""Uniformly random (but fair) scheduling.

At each decision point, flips between delivering a uniformly random
in-flight message and stepping a uniformly random steppable processor.
This is the standard "average-case" schedule: it exercises heavy
asynchrony and interleaving without targeting any algorithm weakness, and
it terminates with probability 1 for every protocol in this repository.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.rng import make_stream
from ..sim.runtime import Action, Step
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class RandomAdversary(Adversary):
    """Fair random scheduler.

    ``deliver_bias`` is the probability of choosing a delivery when both
    deliveries and steps are enabled.  Biasing towards deliveries keeps the
    in-flight pool small, which keeps memory bounded on large runs.
    """

    name = "random"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # chooses by pool position (action_at)

    def __init__(self, seed: int = 0, deliver_bias: float = 0.75) -> None:
        if not 0.0 < deliver_bias < 1.0:
            raise ValueError("deliver_bias must be strictly between 0 and 1")
        self._seed = seed
        self._rng = make_stream(seed, "adversary/random")
        self._deliver_bias = deliver_bias

    def setup(self, sim: "Simulation") -> None:
        """Re-derive the scheduling RNG (adversary reuse contract)."""
        self._rng = make_stream(self._seed, "adversary/random")

    def choose(self, sim: "Simulation") -> Action | None:
        """Deliver or step a uniformly random enabled target."""
        pool = sim.in_flight
        count = len(pool)
        steppable = sim.steppable
        if count and (not steppable or self._rng.random() < self._deliver_bias):
            return pool.action_at(self._rng.randrange(count))
        if steppable:
            candidates = tuple(steppable)
            return Step(candidates[self._rng.randrange(len(candidates))])
        if count:
            return pool.action_at(self._rng.randrange(count))
        return None
