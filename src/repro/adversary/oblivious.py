"""A weak (oblivious) adversary: schedules without looking at state.

The oblivious adversary of [AA11, GW12a] fixes its schedule in advance.
We realize it as a randomized scheduler whose choices are a pure function
of its private seed and the *shape* of the enabled-action sets (counts,
never contents): it never inspects register views, coin logs, or message
payloads, so its decisions are statistically independent of the
processors' randomness.

Useful for contrasting with :class:`CoinAwareAdversary`: the naive sifter
from the paper's introduction actually works against this adversary, and
fails only once the scheduler can see the flips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.rng import make_stream
from ..sim.runtime import Action, Step
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class ObliviousAdversary(Adversary):
    """State-blind randomized scheduler (the paper's weak adversary)."""

    name = "oblivious"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # chooses by pool position (action_at)

    def __init__(self, seed: int = 0, deliver_bias: float = 0.75) -> None:
        self._seed = seed
        self._rng = make_stream(seed, "adversary/oblivious")
        self._deliver_bias = deliver_bias

    def setup(self, sim: "Simulation") -> None:
        """Re-derive the scheduling RNG (adversary reuse contract)."""
        self._rng = make_stream(self._seed, "adversary/oblivious")

    def choose(self, sim: "Simulation") -> Action | None:
        """Pick a delivery or step from private randomness only (state-blind)."""
        pool = sim.in_flight
        count = len(pool)
        steppable = sim.steppable
        if count and (not steppable or self._rng.random() < self._deliver_bias):
            return pool.action_at(self._rng.randrange(count))
        if steppable:
            candidates = sorted(steppable)
            return Step(candidates[self._rng.randrange(len(candidates))])
        if count:
            return pool.action_at(self._rng.randrange(count))
        return None
