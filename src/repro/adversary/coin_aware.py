"""The coin-examining attack from the paper's introduction.

Against the *naive* sifting strawman — flip a biased coin first, then
announce it, and survive unless you flipped 0 and saw a 1 — the strong
adversary wins by looking at the flips: it starts every participant (so
all coins are flipped and announcements are in flight but undelivered),
then runs the 0-flippers to completion *before any 1-flipper's
announcement is delivered*.  Every 0-flipper sees no 1 and survives;
every 1-flipper survives by definition: nobody is eliminated.

The attack needs delivery isolation: while a 0-flipper is the focus, only
messages sent by or addressed to the focus are delivered, so the
1-flippers' announcements stay in flight.  Against PoisonPill the same
schedule is harmless — participants only *commit* in their first step, the
coin is flipped after the commit is propagated, so the commit states kill
the late 0-flippers regardless (the "catch-22" of Section 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.runtime import Action, Deliver, Step
from .base import Adversary, fallback_action

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class CoinAwareAdversary(Adversary):
    """Start everyone, inspect coins, then serialize 0-flippers first."""

    name = "coin_aware"
    # Reads the sent_by/addressed_to index views (Message objects), so it
    # keeps the defaults: indexed, materialized pool.
    uses_endpoint_indexes = True
    uses_message_objects = True

    def __init__(self) -> None:
        self._started_all = False
        self._order: list[int] | None = None

    def setup(self, sim: "Simulation") -> None:
        """Forget the previous run's coin ordering (adversary reuse contract)."""
        self._started_all = False
        self._order = None

    def _ordered_focus(self, sim: "Simulation") -> int | None:
        if self._order is None:
            # All coins that will ever matter for ordering are flipped by
            # now; 0-flippers (and processors with no flips yet) go first.
            def sort_key(pid: int) -> tuple[int, int]:
                last = sim.process(pid).coins.last()
                return ((last[1] if last is not None else 0), pid)

            self._order = sorted(sim.undecided, key=sort_key)
        undecided = sim.undecided
        for pid in self._order:
            if pid in undecided:
                return pid
        return None

    def choose(self, sim: "Simulation") -> Action | None:
        """Start everyone once, then run 0-flippers to completion first."""
        if not self._started_all:
            # Phase A: give every participant exactly one computation step
            # so each one flips (or commits) and its first announcement is
            # parked in flight.
            for pid in sorted(sim.steppable):
                if sim.process(pid).coroutine is None:
                    return Step(pid)
            self._started_all = True
        focus = self._ordered_focus(sim)
        if focus is None:
            return fallback_action(sim)
        if focus in sim.steppable:
            return Step(focus)
        # Serve the focus's quorums only through "clean" channels: a
        # participant that flipped 1 would reveal its coin through its
        # parked announcement or through a COLLECT reply, so all traffic to
        # or from 1-flippers stays frozen as long as enough clean
        # processors exist (the adversary never needs more than a bare
        # majority to resolve a communicate call).
        dirty = set()
        for process in sim.processes:
            if not process.is_participant or process.pid == focus:
                continue
            last = process.coins.last()
            if last is not None and last[1] == 1:
                dirty.add(process.pid)
        held_back = None
        for message in sim.in_flight.addressed_to(focus):
            if message.sender not in dirty:
                return Deliver(message)
            held_back = message
        for message in sim.in_flight.sent_by(focus):
            if message.recipient not in dirty:
                return Deliver(message)
            held_back = message
        if held_back is not None:
            # Not enough clean channels to complete the quorum; leak
            # minimally rather than deadlock.
            return Deliver(held_back)
        # Nothing involves the focus: it genuinely needs traffic from a
        # blocked source.  Fall back to keep the run live.
        return fallback_action(sim)
