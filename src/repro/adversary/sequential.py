"""The sequential attack of Section 3.2.

The adversary serializes the participants: it lets exactly one "focus"
processor advance its protocol at a time, delivering whatever traffic is
needed for the focus's quorums while never scheduling a computation step
for anyone else.  Everyone else still acknowledges (acknowledgement happens
at delivery in this model), so the focus completes its entire procedure
solo, then the next participant runs, and so on.

Against plain PoisonPill this is the worst case: the first processors to
run all flip 0, see nobody else, and survive, so the expected number of
survivors is Theta(sqrt(n)) — the lower bound the paper's Section 3.2 uses
to motivate the heterogeneous variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.runtime import Action, Step
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class SequentialAdversary(Adversary):
    """Run participants one at a time, in ``order`` (default: pid order)."""

    name = "sequential"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # delivers via last_action()

    def __init__(self, order: Sequence[int] | None = None) -> None:
        self._order_arg = list(order) if order is not None else None
        self._order: list[int] | None = self._order_arg

    def setup(self, sim: "Simulation") -> None:
        """Re-derive the default order per run (adversary reuse contract)."""
        self._order = (
            self._order_arg
            if self._order_arg is not None
            else sorted(sim.undecided)
        )

    def _focus(self, sim: "Simulation") -> int | None:
        assert self._order is not None
        undecided = sim.undecided
        for pid in self._order:
            if pid in undecided:
                return pid
        return None

    def choose(self, sim: "Simulation") -> Action | None:
        """Advance the current focus processor; feed it only the traffic it needs."""
        focus = self._focus(sim)
        if focus is not None and focus in sim.steppable:
            return Step(focus)
        action = sim.in_flight.last_action()
        if action is not None:
            return action
        steppable = sim.steppable
        if steppable:
            # The focus is blocked with no traffic left (quorum unreachable,
            # e.g. due to crashes); degrade gracefully to keep others live.
            return Step(min(steppable))
        return None
