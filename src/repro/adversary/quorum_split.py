"""View-fragmenting scheduler.

Section 1 of the paper distinguishes two extreme schedules for a phase:
everyone communicating with everyone (similar views) versus processors
observing "fragmented views, observing just a subset of other processors".
This adversary produces the second extreme: it partitions the processors
into two halves and preferentially delivers messages whose endpoints lie
in the same half, letting cross-half messages through only when nothing
same-half is available.  Because a quorum needs ``floor(n/2) + 1``
processors, each communicate call is forced to graze the other half only
minimally, so collected views stay as lopsided as the model allows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..sim.runtime import Action, Step
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class QuorumSplitAdversary(Adversary):
    """Prefer same-half deliveries to keep the two halves' views disjoint."""

    name = "quorum_split"
    uses_endpoint_indexes = False  # positional pool API only
    uses_message_objects = False  # scans endpoints_at(), not Message objects

    def __init__(self, first_half: Iterable[int] | None = None) -> None:
        self._half_arg: frozenset[int] | None = (
            frozenset(first_half) if first_half is not None else None
        )
        self._half: frozenset[int] | None = self._half_arg

    def setup(self, sim: "Simulation") -> None:
        """Re-derive the default split per run (adversary reuse contract)."""
        self._half = (
            self._half_arg
            if self._half_arg is not None
            else frozenset(range(sim.n // 2))
        )

    def _same_half(self, sender: int, recipient: int) -> bool:
        assert self._half is not None
        return (sender in self._half) == (recipient in self._half)

    def choose(self, sim: "Simulation") -> Action | None:
        """Deliver same-half traffic when possible, leaking cross-half minimally."""
        pool = sim.in_flight
        count = len(pool)
        # Newest-first bounded scan: same-half messages are usually near the
        # top because cross-half ones are exactly the ones we keep skipping.
        for index in range(count - 1, max(count - 64, 0) - 1, -1):
            if self._same_half(*pool.endpoints_at(index)):
                return pool.action_at(index)
        steppable = sim.steppable
        if steppable:
            return Step(min(steppable))
        if count:
            for index in range(count - 1, -1, -1):
                if self._same_half(*pool.endpoints_at(index)):
                    return pool.action_at(index)
            return pool.action_at(count - 1)  # forced cross-half leakage
        return None
