"""The lower-bound "bubble" strategy of Theorem B.2.

The adversary picks a subset ``S`` of roughly ``k/4`` participants and
places them in a bubble: every message sent by or addressed to a bubbled
processor is suspended in a buffer.  A processor is freed from the bubble
only once at least ``n/4`` messages have accumulated for it.  Processors
outside the bubble run in lock-step.

The indistinguishability argument of Theorem B.2 shows a bubbled processor
can never decide while inside the bubble (it has neither sent nor received
anything), so each of the ``~k/4`` bubbled processors is forced to
send-or-receive ``~n/4`` messages before returning — at least
``alpha * k * n / 16`` messages in expectation.  The bench E6 measures the
realized message count under this strategy and compares it to that floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..sim.messages import Message
from ..sim.runtime import Action, Deliver, Step
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.runtime import Simulation


class BubbleAdversary(Adversary):
    """Buffer all traffic of a chosen subset until ``n/4`` messages pile up."""

    name = "bubble"
    # Buffers concrete Message objects across actions, so it keeps the
    # defaults: indexed, materialized pool.
    uses_endpoint_indexes = True
    uses_message_objects = True

    def __init__(
        self,
        bubble: Iterable[int] | None = None,
        threshold: int | None = None,
    ) -> None:
        self._bubble_arg = frozenset(bubble) if bubble is not None else None
        self._threshold_arg = threshold
        self._unreleased: set[int] = set()
        self._threshold = 0

    def setup(self, sim: "Simulation") -> None:
        """Build this run's bubble set and release threshold."""
        if self._bubble_arg is not None:
            bubble = set(self._bubble_arg)
        else:
            participants = sorted(sim.undecided)
            bubble = set(participants[: max(1, len(participants) // 4)])
        self._unreleased = bubble
        self._threshold = (
            self._threshold_arg if self._threshold_arg is not None else max(1, sim.n // 4)
        )

    @property
    def unreleased(self) -> frozenset[int]:
        """Processors currently held in the bubble."""
        return frozenset(self._unreleased)

    def _suspended(self, message: Message) -> bool:
        return (
            message.sender in self._unreleased
            or message.recipient in self._unreleased
        )

    def _apply_releases(self, sim: "Simulation") -> None:
        pool = sim.in_flight
        for pid in list(self._unreleased):
            buffered = len(pool.sent_by(pid)) + len(pool.addressed_to(pid))
            if buffered >= self._threshold:
                self._unreleased.discard(pid)

    def choose(self, sim: "Simulation") -> Action | None:
        """Deliver/step outside the bubble; release members as traffic piles up."""
        self._apply_releases(sim)
        pool = sim.in_flight.messages
        for message in reversed(pool):
            if not self._suspended(message):
                return Deliver(message)
        steppable = [pid for pid in sim.steppable if pid not in self._unreleased]
        if steppable:
            return Step(min(steppable))
        # Only bubbled traffic and bubbled processors remain.  The system
        # would otherwise deadlock (the theorem's argument has played out:
        # bubbled processors cannot decide inside the bubble), so force the
        # fullest member out to preserve liveness.
        if self._unreleased:
            fullest = max(
                self._unreleased,
                key=lambda pid: len(sim.in_flight.sent_by(pid))
                + len(sim.in_flight.addressed_to(pid)),
            )
            self._unreleased.discard(fullest)
            return self.choose(sim)
        if pool:
            return Deliver(pool[-1])
        return None
