"""Shared-memory emulation over message passing ([ABND95]).

Atomic registers implemented with quorum operations, plus the
shared-memory rendition of the tournament baseline — the combination the
paper's Related Work describes for deploying shared-memory algorithms in
the message-passing model.
"""

from .abd import AtomicRegister, Stamped
from .tournament import make_register_tournament, register_tournament

__all__ = [
    "AtomicRegister",
    "Stamped",
    "make_register_tournament",
    "register_tournament",
]
