"""The tournament baseline as a *shared-memory* algorithm over ABD registers.

This is the closest executable rendering of the baseline the paper
actually cites: [AGTV92] is a shared-memory construction, deployed in
message passing through the register emulation of [ABND95] ("This
preserves time complexity, but communication may be increased...").
Every inter-processor interaction below is an atomic register read or
write; the network only appears through :mod:`repro.memory.abd`.

A match between the two sides of a bracket node runs the round race:

* each side owns a round register; write your round, read the other's —
  two ahead wins, two behind loses (the [SSW91] rule);
* on a tie, a register-based poison-pill round breaks it: commit to your
  per-round status register, read the opponent's, flip (certainly-high
  if the opponent is invisible, fair otherwise), publish the priority,
  read the opponent once more, and die if you are low while the opponent
  is committed or high.  Atomicity of the registers guarantees at least
  one survivor: the later reader always sees the earlier low-priority
  write.

A solo contender (bye) wins after two rounds via the round race — no
bye detection needed, as in the native tournament.
"""

from __future__ import annotations

from typing import Iterator

from ..core.baselines.tournament import bracket_levels
from ..core.protocol import Outcome
from ..sim.communicate import Request
from ..sim.process import AlgorithmFactory, ProcessAPI
from .abd import AtomicRegister

_COMMIT = "commit"
_LOW = "low"
_HIGH = "high"


def _register_match(
    api: ProcessAPI, namespace: str, side: int
) -> Iterator[Request]:
    """Decide one bracket match through registers only; WIN or LOSE."""
    mine = AtomicRegister(f"{namespace}.round{side}", default=0)
    theirs = AtomicRegister(f"{namespace}.round{1 - side}", default=0)
    r = 1
    while True:
        yield from mine.write(api, r)
        other_round = yield from theirs.read(api)
        if r < other_round:
            return Outcome.LOSE
        if other_round < r - 1:
            return Outcome.WIN
        # Tie: register-based poison pill for two contenders.
        my_status = AtomicRegister(f"{namespace}.s{side}.r{r}")
        other_status = AtomicRegister(f"{namespace}.s{1 - side}.r{r}")
        yield from my_status.write(api, _COMMIT)
        observed = yield from other_status.read(api)
        probability = 1.0 if observed is None else 0.5
        coin = api.flip(probability, label=f"{namespace}.match.r{r}")
        priority = _HIGH if coin == 1 else _LOW
        yield from my_status.write(api, priority)
        observed = yield from other_status.read(api)
        if priority == _LOW and observed in (_COMMIT, _HIGH):
            return Outcome.LOSE
        r += 1


def register_tournament(
    api: ProcessAPI, namespace: str = "smt"
) -> Iterator[Request]:
    """Compete through the bracket using registers only; WIN or LOSE."""
    index = api.pid
    for level in range(bracket_levels(api.n)):
        side = index % 2
        index //= 2
        outcome = yield from _register_match(
            api, f"{namespace}.L{level}.M{index}", side
        )
        if outcome is Outcome.LOSE:
            return Outcome.LOSE
    return Outcome.WIN


def make_register_tournament(namespace: str = "smt") -> AlgorithmFactory:
    """Factory adapter for :class:`~repro.sim.runtime.Simulation`."""

    def factory(api: ProcessAPI):
        return register_tournament(api, namespace=namespace)

    return factory
