"""Atomic registers over message passing — the ABD emulation [ABND95].

The paper's Related Work leans on the classic result of Attiya, Bar-Noy
and Dolev: shared-memory algorithms can be run in message passing by
emulating each atomic register with quorum reads/writes, preserving time
complexity at the cost of ``Theta(n)`` messages per register operation.
This module provides that emulation on the same ``communicate``
substrate the rest of the library uses, so shared-memory baselines (the
register-based tournament of :mod:`repro.memory.tournament`) run under
identical adversaries and metrics.

A register value carries a ``(sequence, writer)`` timestamp; reconciling
by maximum timestamp makes the cell a monotone join, and the standard
two-phase protocols give linearizability:

* ``write``: collect timestamps from a quorum, then propagate the value
  stamped one above the largest seen;
* ``read``: collect values from a quorum, pick the largest stamp, then
  *write back* that value to a quorum before returning it (the write-back
  is what prevents new-old inversion between non-overlapping reads).
"""

from __future__ import annotations

import functools
from typing import Any, Iterator

from ..sim.communicate import Collect, Propagate, Request
from ..sim.process import ProcessAPI
from ..sim.registers import POLICY_MAX

#: The single key under which a register's cell is stored.
_CELL = 0


@functools.total_ordering
class Stamped:
    """A register value with its ``(sequence, writer)`` timestamp.

    Ordering compares timestamps only: two writes never share a stamp
    (sequence ties are broken by writer id), and equal stamps imply the
    identical write, so the payload never participates in comparisons.
    """

    __slots__ = ("sequence", "writer", "value")

    def __init__(self, sequence: int, writer: int, value: Any) -> None:
        self.sequence = sequence
        self.writer = writer
        self.value = value

    def _stamp(self) -> tuple[int, int]:
        return (self.sequence, self.writer)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stamped) and self._stamp() == other._stamp()

    def __lt__(self, other: "Stamped") -> bool:
        return self._stamp() < other._stamp()

    def __hash__(self) -> int:
        return hash(self._stamp())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stamped(seq={self.sequence}, writer={self.writer}, value={self.value!r})"


class AtomicRegister:
    """A multi-writer multi-reader atomic register named ``name``.

    Operations are generators (like everything protocol-level in this
    library): drive them with ``yield from`` inside an algorithm
    coroutine.  Each operation performs exactly two ``communicate``
    calls, so emulation preserves time complexity up to a factor of two
    per shared-memory step.
    """

    __slots__ = ("name", "_var", "_default")

    def __init__(self, name: str, default: Any = None) -> None:
        self.name = name
        self._var = f"abd.{name}"
        self._default = default

    def _best(self, api: ProcessAPI, views) -> Stamped | None:
        best: Stamped | None = None
        for view in views:
            stamped = view.get(_CELL)
            if stamped is not None and (best is None or best < stamped):
                best = stamped
        own = api.get(self._var, _CELL)
        if own is not None and (best is None or best < own):
            best = own
        return best

    def read(self, api: ProcessAPI) -> Iterator[Request]:
        """Linearizable read; returns the register value (or the default)."""
        views = yield Collect(self._var)
        best = self._best(api, views)
        if best is None:
            return self._default
        # Write-back: make the value we are about to return visible to a
        # quorum, so any later read sees at least this stamp.
        api.put(self._var, _CELL, best, policy=POLICY_MAX)
        yield Propagate(self._var, (_CELL,))
        return best.value

    def write(self, api: ProcessAPI, value: Any) -> Iterator[Request]:
        """Linearizable write of ``value``; returns the stamp used."""
        views = yield Collect(self._var)
        best = self._best(api, views)
        sequence = (best.sequence if best is not None else 0) + 1
        stamped = Stamped(sequence, api.pid, value)
        api.put(self._var, _CELL, stamped, policy=POLICY_MAX)
        yield Propagate(self._var, (_CELL,))
        return stamped
