"""Load-test driver for the election service: thousands of keyed elections.

The ROADMAP's acceptance bar for the service layer is quantitative:
sustain **thousands of concurrent named elections in one service
process** and report acquire latency percentiles plus crash-to-new-
leader failover latency through the :mod:`repro.obs.metrics` registry.
This driver is that measurement: it starts an in-process
:class:`~repro.net.service.ElectionService`, fans ``contenders``
logical clients per key over a handful of multiplexed sessions, runs
``rounds`` full acquire → hold → release cycles per key (every
contested handoff is one election), then crashes holder sessions and
times the failover re-elections.

The output is one merged metrics snapshot — client-side wall-clock
acquire latency folded together with the service's own registry via
:func:`~repro.obs.metrics.merge_snapshots` — plus the grant history
judged by :func:`~repro.check.invariants.evaluate_service_run`: at most
one holder per ``(key, epoch)``, strictly increasing epochs, and
non-overlapping holds, under whatever seeded chaos plan the run was
given.  The Kutten et al. line of PAPERS.md frames the per-election
message budget; ``svc.frames_sent / svc.grants`` in the report is the
measured analogue.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from ..obs.metrics import MetricsRegistry, merge_snapshots
from .chaos import CLEAN_PLAN, ChaosPlan
from .client import ServiceClient
from .service import ElectionService, ServiceError, ServiceRun

#: Sessions the logical clients multiplex over (one TCP connection each).
DEFAULT_SESSIONS = 8


@dataclass(slots=True)
class LoadReport:
    """Everything one load run produced: metrics, history, verdicts."""

    keys: int
    contenders: int
    rounds: int
    grants: int
    crashes: int
    wall_s: float
    snapshot: dict[str, Any]
    violations: list[tuple[str, str]] = field(default_factory=list)
    run: ServiceRun | None = None

    @property
    def ok(self) -> bool:
        """True iff every serve-task invariant held on the grant history."""
        return not self.violations

    def describe(self) -> str:
        """Human-readable summary block (the CLI's output)."""
        lines = [
            f"keys:          {self.keys:,} "
            f"({self.contenders} contenders each, {self.rounds} rounds)",
            f"grants:        {self.grants:,} "
            f"({self.grants / self.wall_s:,.0f}/s over {self.wall_s:.2f}s)",
        ]
        histograms = self.snapshot.get("histograms", {})
        for name, title in (
            ("load.acquire_ms", "acquire ms"),
            ("svc.failover_ms", "failover ms"),
            ("svc.crash_failover_ms", "crash-failover ms"),
        ):
            hist = histograms.get(name)
            if hist and hist.get("count"):
                lines.append(
                    f"{title + ':':<15}p50={hist['p50']:.2f} "
                    f"p90={hist['p90']:.2f} p99={hist['p99']:.2f} "
                    f"max={hist['max']:.2f} (n={hist['count']})"
                )
        counters = self.snapshot.get("counters", {})
        frames = counters.get("svc.frames_sent", 0)
        if self.grants:
            lines.append(
                f"frames/grant:  {frames / self.grants:.1f} "
                f"({frames:,} service frames total)"
            )
        fenced = counters.get("svc.fenced", 0)
        reelections = counters.get("svc.reelections", 0)
        lines.append(
            f"re-elections:  {reelections:,} (fenced rejections: {fenced:,}, "
            f"crashes injected: {self.crashes})"
        )
        if self.violations:
            for name, message in self.violations:
                lines.append(f"VIOLATION:     {name}: {message}")
        else:
            lines.append("invariants:    all hold (one holder per (key, epoch))")
        return "\n".join(lines)


async def _contender_body(
    client: ServiceClient,
    key: str,
    rounds: int,
    ttl_ms: float,
    hold_ms: float,
    wait_ms: float,
    registry: MetricsRegistry,
    stop: asyncio.Event,
) -> None:
    """One logical contender: acquire, hold, release, ``rounds`` times."""
    for _ in range(rounds):
        if stop.is_set():
            return
        issued = time.perf_counter()
        try:
            lease = await client.acquire(key, ttl_ms=ttl_ms, wait_ms=wait_ms)
        except Exception:
            registry.counter("load.errors").inc()
            return
        if lease is None:
            registry.counter("load.busy").inc()
            continue
        registry.histogram("load.acquire_ms").observe(
            (time.perf_counter() - issued) * 1e3
        )
        registry.counter("load.grants").inc()
        if hold_ms > 0:
            await asyncio.sleep(hold_ms / 1000.0)
        try:
            await client.release(lease)
        except Exception:
            registry.counter("load.errors").inc()
            return


async def _run_load_async(
    keys: int,
    contenders: int,
    rounds: int,
    sessions: int,
    ttl_ms: float,
    hold_ms: float,
    wait_ms: float,
    crash_sessions: int,
    seed: int,
    election: str,
    plan: ChaosPlan,
    telemetry_path: str | None,
    telemetry_interval_s: float,
    deadline_s: float,
) -> LoadReport:
    """The driver's async body: start service, fan out, crash, report."""
    service = ElectionService(
        seed=seed, election=election, plan=plan,
        telemetry_path=telemetry_path,
        telemetry_interval_s=telemetry_interval_s,
        default_ttl_ms=ttl_ms,
    )
    host, port = await service.start()
    registry = MetricsRegistry()
    stop = asyncio.Event()
    wall_start = time.perf_counter()
    clients: list[ServiceClient] = []
    crashed = 0
    try:
        clients = [
            await ServiceClient.connect(
                host, port, client_id=f"session-{index}", pid=index, plan=plan,
            )
            for index in range(sessions)
        ]
        tasks = []
        for key_index in range(keys):
            key = f"lock/{key_index:05d}"
            for contender in range(contenders):
                client = clients[(key_index * contenders + contender) % sessions]
                tasks.append(asyncio.create_task(_contender_body(
                    client, key, rounds, ttl_ms, hold_ms, wait_ms,
                    registry, stop,
                )))
        done, pending = await asyncio.wait(tasks, timeout=deadline_s)
        if pending:
            stop.set()
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            raise ServiceError(
                f"load run exceeded its {deadline_s:.0f}s deadline with "
                f"{len(pending)} contenders unfinished"
            )

        # Failover phase: re-contend a slice of keys, then crash the
        # sessions holding them and time the re-elections.
        if crash_sessions > 0:
            crash_sessions = min(crash_sessions, max(1, sessions - 1))
            victims = clients[:crash_sessions]
            survivors = clients[crash_sessions:]
            failover_keys = [
                f"lock/{key_index:05d}"
                for key_index in range(min(keys, 64))
            ]
            held = []
            for index, key in enumerate(failover_keys):
                lease = await victims[index % len(victims)].acquire(
                    key, ttl_ms=max(ttl_ms, 30_000.0), wait_ms=2_000.0
                )
                if lease is not None:
                    held.append(key)
            rescue_tasks = [
                asyncio.create_task(_contender_body(
                    survivors[index % max(1, len(survivors))], key, 1,
                    ttl_ms, 0.0, 10_000.0, registry, stop,
                ))
                for index, key in enumerate(held)
            ]
            await asyncio.sleep(0.05)  # rescuers enqueue behind the victims
            for victim in victims:
                victim.abort()
                crashed += 1
            if rescue_tasks:
                done, pending = await asyncio.wait(rescue_tasks, timeout=30.0)
                for task in pending:
                    task.cancel()
            clients = survivors
    finally:
        stop.set()
        for client in clients:
            try:
                await client.close()
            except Exception:
                pass
        wall_s = time.perf_counter() - wall_start
        run = ServiceRun.of(service)
        await service.stop()

    from ..check.invariants import evaluate_service_run

    snapshot = merge_snapshots([registry.snapshot(), service.snapshot()])
    return LoadReport(
        keys=keys,
        contenders=contenders,
        rounds=rounds,
        grants=len(run.history),
        crashes=crashed,
        wall_s=wall_s,
        snapshot=snapshot,
        violations=evaluate_service_run(run),
        run=run,
    )


def run_load(
    keys: int = 1000,
    contenders: int = 3,
    rounds: int = 2,
    sessions: int = DEFAULT_SESSIONS,
    ttl_ms: float = 5000.0,
    hold_ms: float = 1.0,
    wait_ms: float = 30_000.0,
    crash_sessions: int = 1,
    seed: int = 0,
    election: str = "draw",
    plan: ChaosPlan | None = None,
    telemetry_path: str | None = None,
    telemetry_interval_s: float = 0.5,
    deadline_s: float = 300.0,
) -> LoadReport:
    """Run the service load scenario and return its :class:`LoadReport`.

    ``keys * contenders`` contender coroutines run concurrently against
    one service process; every key sees ``contenders * rounds`` grant
    handoffs, each one an election.  ``crash_sessions`` sessions are
    then aborted while holding leases, and the resulting crash-to-new-
    leader latencies land in the ``svc.crash_failover_ms`` histogram.
    Raises :class:`~repro.net.service.ServiceError` on bad parameters
    or a blown deadline.
    """
    if keys < 1:
        raise ServiceError(f"keys must be at least 1, got {keys}")
    if contenders < 1:
        raise ServiceError(f"contenders must be at least 1, got {contenders}")
    if rounds < 1:
        raise ServiceError(f"rounds must be at least 1, got {rounds}")
    if sessions < 2 and crash_sessions > 0:
        raise ServiceError(
            "crashing sessions needs at least 2 sessions "
            f"(got sessions={sessions})"
        )
    if ttl_ms <= 0:
        raise ServiceError(f"ttl_ms must be positive, got {ttl_ms}")
    return asyncio.run(_run_load_async(
        keys=keys, contenders=contenders, rounds=rounds, sessions=sessions,
        ttl_ms=ttl_ms, hold_ms=hold_ms, wait_ms=wait_ms,
        crash_sessions=crash_sessions, seed=seed, election=election,
        plan=plan if plan is not None else CLEAN_PLAN,
        telemetry_path=telemetry_path,
        telemetry_interval_s=telemetry_interval_s,
        deadline_s=deadline_s,
    ))
