"""Election-as-a-service: a keyed, multi-tenant election namespace.

Every other entry point in this repo is one-shot batch: spawn ``n``
processes, elect, exit.  This module is the long-lived coordination
layer the ROADMAP asks for: a persistent asyncio service that owns a
namespace of *named* elections and serves them to external clients over
the versioned frame codec of :mod:`repro.net.wire`.

The mapping onto the paper is direct.  Figure 3 / Theorem 4.2 build
strong renaming out of **one independent leader election per name** —
a grid of test-and-set objects, each settled by its own election.  This
service generalizes exactly that construction: each *key* is a name,
each handoff of a key is one leader-election instance among the current
contenders, and the winner holds the key under a **lease** until it
releases, crashes, or lets the lease expire.  Epochs make the sequence
of elections per key explicit: every grant carries a strictly
increasing ``(key, epoch)`` fencing token, and any write (renew /
release) presenting a stale epoch is rejected with FENCED at the wire
layer — the service-side analogue of "a LOSE must never overwrite the
winner" (Lemma A.3).

Lease state machine, per key::

    FREE ──acquire──> HELD ──(ttl - grace elapses)──> EXPIRING
      ^                 │  ^                             │
      │             release renew                        │ (ttl elapses,
      │(no waiters)     │  └────────── EXPIRING ─────────┘  or holder
      └──────────── RE-ELECTING <── crash ──┘               crashes)
                        │
                        └─(winner drawn among waiters)─> HELD, epoch+1

Contested handoffs are decided by :meth:`ElectionService._elect`: by
default a deterministic draw from a per-``(key, epoch)`` RNG stream
(:func:`~repro.sim.rng.make_stream`), or — ``election="sim"`` — by
running the paper's actual O(log* k) leader-election algorithm in the
simulator with one pid per contender, making each handoff a literal
instance of the reproduced protocol.

Delivery semantics under chaos: replies and watch events pass through
the seeded fault plan of :mod:`repro.net.chaos` (link ``SERVICE_PID ->
client``), so a granted reply can be dropped or delayed exactly like a
lossy network would.  Clients retry with the same ``rpc`` nonce; the
service keeps a bounded per-session reply cache and resends the
*recorded* reply instead of re-executing, making every request
at-most-once — a retried ACQUIRE can never double-grant.

Everything the service decides lands in an append-only grant history;
:func:`repro.check.invariants.evaluate_service_run` judges it with the
run-invariant machinery (at most one holder per ``(key, epoch)``,
strictly increasing epochs, non-overlapping holds).
"""

from __future__ import annotations

import asyncio
import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..obs.live import SnapshotWriter
from ..obs.metrics import MetricsRegistry
from ..sim.rng import make_stream
from ..sim.runtime import SimulationResult
from ..sim.trace import Metrics, Trace
from .chaos import CLEAN_PLAN, ChaosPlan, LinkChaos
from .wire import Frame, FrameType, WireError, pack_frame, read_frame

#: The service's sender id on reply/event frames (the driver uses -1).
SERVICE_PID = -2

#: Reply statuses carried in the ``status`` field of SVC_REPLY frames.
class ReplyStatus:
    """String constants for every service reply outcome."""

    GRANTED = "granted"
    BUSY = "busy"
    FENCED = "fenced"
    OK = "ok"
    STATE = "state"
    ERROR = "error"


class LeaseState:
    """String constants for the per-key lease state machine."""

    FREE = "free"
    HELD = "held"
    EXPIRING = "expiring"
    REELECTING = "re-electing"


#: Watch event kinds pushed to watchers as SVC_EVENT frames.
class WatchEvent:
    """String constants for the watch notification kinds."""

    GRANTED = "granted"
    EXPIRING = "expiring"
    EXPIRED = "expired"
    RELEASED = "released"
    CRASHED = "crashed"


#: How many replies each session's at-most-once cache retains.
REPLY_CACHE_LIMIT = 1024

#: How many chaos-dropped frames the dead-letter queue retains for
#: post-heal replay; older drops fall off the front (the client-side
#: retry path still recovers them via the at-most-once reply cache).
DLQ_LIMIT = 4096

#: Default lease TTL when the client does not specify one (milliseconds).
DEFAULT_TTL_MS = 5000.0

#: Contender-count ceiling for ``election="sim"``; larger fields fall
#: back to the seeded draw (a simulated election over hundreds of pids
#: would stall the event loop the service shares with every key).
SIM_ELECTION_MAX_CONTENDERS = 16


class ServiceError(RuntimeError):
    """A service run failed to complete: bad configuration or runtime fault."""


@dataclass(slots=True)
class GrantRecord:
    """One completed or in-flight grant: the unit of the decision log.

    ``ended_ns`` is ``None`` while the lease is live; ``reason`` is one
    of ``release`` / ``expire`` / ``crash`` / ``open`` once settled.
    """

    key: str
    epoch: int
    holder: str
    session: int
    granted_ns: int
    ended_ns: int | None = None
    reason: str = "open"

    def to_obj(self) -> dict[str, Any]:
        """JSON-safe form for artifacts and telemetry dumps."""
        return {
            "key": self.key, "epoch": self.epoch, "holder": self.holder,
            "session": self.session, "granted_ns": self.granted_ns,
            "ended_ns": self.ended_ns, "reason": self.reason,
        }


@dataclass(slots=True)
class FencedRecord:
    """One stale-epoch (or non-holder) rejection, for the fencing invariant."""

    key: str
    request_epoch: int
    current_epoch: int
    verb: str
    client: str


@dataclass(slots=True)
class _Waiter:
    """One queued contender for a held key."""

    client: str
    session: "_Session"
    rpc: int
    enqueued: float
    deadline: float | None  # monotonic seconds; None = wait forever


@dataclass(slots=True)
class _KeyState:
    """Everything the service tracks about one key."""

    key: str
    epoch: int = 0
    state: str = LeaseState.FREE
    holder: str | None = None
    holder_session: "_Session | None" = None
    expires_at: float = 0.0
    ttl_s: float = 0.0
    waiters: list[_Waiter] = field(default_factory=list)
    watchers: set["_Session"] = field(default_factory=set)
    #: When the current vacancy began (crash/expiry), for failover latency.
    vacated_at: float | None = None
    vacated_by_crash: bool = False


class _Session:
    """One client connection: identity, writer, chaos link, reply cache."""

    __slots__ = (
        "sid", "pid", "writer", "link", "replied", "replied_order", "closed",
    )

    def __init__(self, sid: int, pid: int, writer: asyncio.StreamWriter,
                 link: LinkChaos) -> None:
        self.sid = sid
        self.pid = pid
        self.writer = writer
        self.link = link
        self.replied: dict[int, Frame] = {}
        self.replied_order: list[int] = []
        self.closed = False

    def cache_reply(self, rpc: int, frame: Frame) -> None:
        """Remember a reply so a chaos-dropped one can be resent verbatim."""
        if rpc in self.replied:
            self.replied[rpc] = frame
            return
        self.replied[rpc] = frame
        self.replied_order.append(rpc)
        if len(self.replied_order) > REPLY_CACHE_LIMIT:
            self.replied.pop(self.replied_order.pop(0), None)


class ElectionService:
    """The keyed election namespace: one asyncio server, many elections.

    Construct, then either :meth:`serve_forever` (the ``repro serve``
    CLI path) or ``await start()`` / ``await stop()`` around client
    traffic (tests and the load driver).  All state is owned by the
    event loop; there are no locks because there is no preemption.
    """

    def __init__(
        self,
        seed: int = 0,
        default_ttl_ms: float = DEFAULT_TTL_MS,
        grace_fraction: float = 0.25,
        election: str = "draw",
        plan: ChaosPlan = CLEAN_PLAN,
        telemetry_path: str | None = None,
        telemetry_interval_s: float = 0.5,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: Mapping[str, int] | None = None,
        grant_hook: "Callable[[GrantRecord], None] | None" = None,
    ) -> None:
        if default_ttl_ms <= 0:
            raise ServiceError(f"default ttl must be positive, got {default_ttl_ms}")
        if not 0.0 < grace_fraction < 1.0:
            raise ServiceError(
                f"grace fraction must be in (0, 1), got {grace_fraction}"
            )
        if election not in ("draw", "sim"):
            raise ServiceError(
                f"unknown election mode {election!r}; expected 'draw' or 'sim'"
            )
        self.seed = seed
        self.default_ttl_s = default_ttl_ms / 1000.0
        self.grace_fraction = grace_fraction
        self.election = election
        self.plan = plan
        self.host = host
        self.port = port
        self.keys: dict[str, _KeyState] = {}
        if namespace:
            # Restart-and-recover: re-seed keys at their last known epoch
            # (all FREE — leases do not survive a restart) so post-restart
            # grants keep fencing tokens issued before it.
            for key, epoch in namespace.items():
                if epoch < 0:
                    raise ServiceError(
                        f"namespace epoch for {key!r} must be >= 0, got {epoch}"
                    )
                self.keys[str(key)] = _KeyState(key=str(key), epoch=int(epoch))
        self.history: list[GrantRecord] = []
        self.fenced: list[FencedRecord] = []
        self.grant_hook = grant_hook
        #: Chaos-dropped frames awaiting post-heal replay: (sid, frame).
        self.dlq: deque[tuple[int, Frame]] = deque(maxlen=DLQ_LIMIT)
        self.metrics = MetricsRegistry()
        self._sessions: dict[int, _Session] = {}
        self._session_counter = 0
        self._server: asyncio.base_events.Server | None = None
        self._expiry_heap: list[tuple[float, int, str]] = []
        self._heap_counter = 0
        self._sweeper: asyncio.Task | None = None
        self._telemetry_path = telemetry_path
        self._telemetry_interval_s = telemetry_interval_s
        self._telemetry_task: asyncio.Task | None = None
        self._snapshot_writer: SnapshotWriter | None = None
        self._background: set[asyncio.Task] = set()
        self._stopped = False
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the server and start the sweeper; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_session, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._sweeper = asyncio.create_task(self._sweep_loop())
        if self._telemetry_path is not None:
            self._snapshot_writer = SnapshotWriter(self._telemetry_path, meta={
                "backend": "service", "seed": self.seed,
                "election": self.election,
                "interval_s": self._telemetry_interval_s,
                "chaos": self.plan.to_obj(),
            })
            self._telemetry_task = asyncio.create_task(self._telemetry_loop())
        return self.host, self.port

    async def stop(self) -> None:
        """Close the server, cancel background work, end the telemetry stream.

        Idempotent: the CLI path stops once from ``serve_forever`` and
        once from its own cleanup, and the second call is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        for task in (self._sweeper, self._telemetry_task, *self._background):
            if task is not None:
                task.cancel()
        for session in list(self._sessions.values()):
            session.closed = True
            session.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Settle the log: leases still held at shutdown end as "open".
        if self._snapshot_writer is not None:
            self._snapshot_writer.write_snapshot(
                self._clock_ms(), self.snapshot()
            )
            self._snapshot_writer.write_end(self._clock_ms())
            self._snapshot_writer.close()

    async def serve_forever(self, duration_s: float | None = None) -> None:
        """Run until cancelled (or for ``duration_s`` seconds).

        Starts the server first if :meth:`start` has not run yet, so it
        works both standalone and after an explicit ``start()``.
        """
        if self._server is None:
            await self.start()
        try:
            if duration_s is None:
                await asyncio.Event().wait()  # until cancelled
            else:
                await asyncio.sleep(duration_s)
        finally:
            await self.stop()

    def _clock_ms(self) -> int:
        return int((time.monotonic() - self._started_at) * 1000)

    def snapshot(self) -> dict[str, Any]:
        """The service's current metrics snapshot (gauges refreshed)."""
        registry = self.metrics
        registry.gauge("svc.keys").set(len(self.keys))
        registry.gauge("svc.leases_held").set(sum(
            1 for state in self.keys.values()
            if state.state in (LeaseState.HELD, LeaseState.EXPIRING)
        ))
        registry.gauge("svc.waiters").set(sum(
            len(state.waiters) for state in self.keys.values()
        ))
        registry.gauge("svc.sessions").set(len(self._sessions))
        return registry.snapshot()

    async def _telemetry_loop(self) -> None:
        """Append a metrics snapshot to the stream every interval."""
        assert self._snapshot_writer is not None
        try:
            while True:
                await asyncio.sleep(self._telemetry_interval_s)
                self._snapshot_writer.write_snapshot(
                    self._clock_ms(), self.snapshot()
                )
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection until EOF; disconnect = crash."""
        self._session_counter += 1
        sid = self._session_counter
        session: _Session | None = None
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if session is None:
                    # First frame pins the session's pid (= chaos link id).
                    session = _Session(
                        sid, frame.sender, writer,
                        self.plan.link(SERVICE_PID, frame.sender),
                    )
                    self._sessions[sid] = session
                    self.metrics.counter("svc.sessions_opened").inc()
                self._dispatch(session, frame)
        except (WireError, OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if session is not None:
                self._session_crashed(session)
            writer.close()

    def _dispatch(self, session: _Session, frame: Frame) -> None:
        """Route one request frame; replies go back through chaos."""
        rpc = frame.fields.get("rpc")
        if not isinstance(rpc, int):
            self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
                "rpc": -1, "status": ReplyStatus.ERROR,
                "message": f"request {frame.ftype!r} missing int rpc nonce",
            }), cache=False)
            return
        cached = session.replied.get(rpc)
        if cached is not None:
            # At-most-once: the reply was computed but (possibly) lost to
            # chaos; resend the recorded frame without re-executing.
            self.metrics.counter("svc.replays").inc()
            self._send(session, cached)
            return
        handlers = {
            FrameType.ACQUIRE: self._on_acquire,
            FrameType.RENEW: self._on_renew,
            FrameType.RELEASE: self._on_release,
            FrameType.WATCH: self._on_watch,
            FrameType.SVC_STATS: self._on_stats,
        }
        handler = handlers.get(frame.ftype)
        if handler is None:
            self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
                "rpc": rpc, "status": ReplyStatus.ERROR,
                "message": f"unexpected frame type {frame.ftype!r}",
            }), cache=False)
            return
        handler(session, rpc, frame.fields)

    def _reply(self, session: _Session, frame: Frame, cache: bool = True) -> None:
        """Record (for at-most-once resends) and send one reply frame."""
        rpc = frame.fields.get("rpc")
        if cache and isinstance(rpc, int) and rpc >= 0:
            session.cache_reply(rpc, frame)
        self._send(session, frame)

    def _send(self, session: _Session, frame: Frame) -> None:
        """Write one frame through the session's chaos link."""
        if session.closed or session.writer.is_closing():
            return
        fate = session.link.next_fate(self._clock_ms())
        if fate.drop:
            self.metrics.counter("svc.frames_dropped").inc()
            self.dlq.append((session.sid, frame))
            return
        if fate.delay_s > 0.0:
            self.metrics.counter("svc.frames_delayed").inc()
            task = asyncio.get_running_loop().create_task(
                self._delayed_send(session, frame, fate.delay_s)
            )
            self._background.add(task)
            task.add_done_callback(self._background.discard)
            return
        self._write(session, frame)
        for _ in range(fate.duplicates):
            self._write(session, frame)

    async def _delayed_send(
        self, session: _Session, frame: Frame, delay_s: float
    ) -> None:
        await asyncio.sleep(delay_s)
        self._write(session, frame)

    def _write(self, session: _Session, frame: Frame) -> None:
        if session.closed or session.writer.is_closing():
            return
        session.writer.write(pack_frame(frame))
        self.metrics.counter("svc.frames_sent").inc()

    def replay_dlq(self) -> int:
        """Re-deliver chaos-dropped frames to their still-open sessions.

        The dead-letter replay path for a healed partition: frames the
        fault plan swallowed are written directly (no second chaos
        draw — they already paid theirs).  Receivers are idempotent by
        construction: replies carry their original ``rpc`` nonce and
        watch events are monotone state announcements.  Frames whose
        session has since closed are discarded.  Returns the number of
        frames actually re-sent.
        """
        replayed = 0
        while self.dlq:
            sid, frame = self.dlq.popleft()
            session = self._sessions.get(sid)
            if session is None or session.closed:
                continue
            self._write(session, frame)
            replayed += 1
        if replayed:
            self.metrics.counter("svc.dlq_replayed").inc(replayed)
        return replayed

    def export_namespace(self) -> dict[str, int]:
        """The namespace's fencing floor: every key's current epoch.

        Feed this to a new service's ``namespace`` parameter to restart
        it without forgetting epochs — grants after the restart continue
        each key's sequence, so tokens issued before it stay fenced.
        """
        return {key: state.epoch for key, state in self.keys.items()}

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------

    def _key(self, key: str) -> _KeyState:
        state = self.keys.get(key)
        if state is None:
            state = self.keys[key] = _KeyState(key=key)
        return state

    def _on_acquire(self, session: _Session, rpc: int,
                    fields: Mapping[str, Any]) -> None:
        """ACQUIRE: grant now, queue as a contender, or reply BUSY."""
        self.metrics.counter("svc.acquires").inc()
        key, client = str(fields["key"]), str(fields["client"])
        ttl_ms = float(fields.get("ttl_ms") or self.default_ttl_s * 1000.0)
        wait_ms = float(fields.get("wait_ms", 0.0))
        if ttl_ms <= 0:
            self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
                "rpc": rpc, "status": ReplyStatus.ERROR,
                "message": f"ttl_ms must be positive, got {ttl_ms}",
            }))
            return
        state = self._key(key)
        if state.state in (LeaseState.HELD, LeaseState.EXPIRING):
            if state.holder == client and state.holder_session is session:
                # Idempotent re-acquire by the live holder: current token.
                self._reply(session, self._grant_reply(rpc, state, ttl_ms))
                return
            if wait_ms <= 0:
                self.metrics.counter("svc.busy").inc()
                self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
                    "rpc": rpc, "status": ReplyStatus.BUSY,
                    "key": key, "holder": state.holder, "epoch": state.epoch,
                }))
                return
            for waiter in state.waiters:
                if waiter.session is session and waiter.rpc == rpc:
                    # A chaos-retried ACQUIRE: the contender is already
                    # queued and will be answered once; don't double-enter.
                    return
            now = time.monotonic()
            state.waiters.append(_Waiter(
                client=client, session=session, rpc=rpc,
                enqueued=now, deadline=now + wait_ms / 1000.0,
            ))
            self._push_expiry(now + wait_ms / 1000.0, key)
            return
        # FREE (or RE-ELECTING with no contest in flight): grant now.
        self._grant(state, client, session, rpc, ttl_ms)

    def _on_renew(self, session: _Session, rpc: int,
                  fields: Mapping[str, Any]) -> None:
        """RENEW: extend the lease iff the fencing token is current."""
        self.metrics.counter("svc.renews").inc()
        key, client = str(fields["key"]), str(fields["client"])
        epoch = int(fields["epoch"])
        state = self.keys.get(key)
        if (
            state is None
            or state.state not in (LeaseState.HELD, LeaseState.EXPIRING)
            or state.epoch != epoch
            or state.holder != client
        ):
            self._fence(session, rpc, key, epoch, client, "renew")
            return
        ttl_ms = float(fields.get("ttl_ms") or state.ttl_s * 1000.0)
        state.ttl_s = ttl_ms / 1000.0
        state.expires_at = time.monotonic() + state.ttl_s
        state.state = LeaseState.HELD
        self._push_expiry(
            state.expires_at - state.ttl_s * self.grace_fraction, key
        )
        self._reply(session, self._grant_reply(rpc, state, ttl_ms))

    def _on_release(self, session: _Session, rpc: int,
                    fields: Mapping[str, Any]) -> None:
        """RELEASE: end the lease iff the fencing token is current."""
        self.metrics.counter("svc.releases").inc()
        key, client = str(fields["key"]), str(fields["client"])
        epoch = int(fields["epoch"])
        state = self.keys.get(key)
        if (
            state is None
            or state.state not in (LeaseState.HELD, LeaseState.EXPIRING)
            or state.epoch != epoch
            or state.holder != client
        ):
            self._fence(session, rpc, key, epoch, client, "release")
            return
        self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
            "rpc": rpc, "status": ReplyStatus.OK, "key": key, "epoch": epoch,
        }))
        self._end_grant(state, "release", WatchEvent.RELEASED)
        self._handoff(state)

    def _on_watch(self, session: _Session, rpc: int,
                  fields: Mapping[str, Any]) -> None:
        """WATCH: subscribe the session; reply with the key's current state."""
        key = str(fields["key"])
        state = self._key(key)
        state.watchers.add(session)
        self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
            "rpc": rpc, "status": ReplyStatus.STATE, "key": key,
            "state": state.state, "epoch": state.epoch, "holder": state.holder,
        }))

    def _on_stats(self, session: _Session, rpc: int,
                  fields: Mapping[str, Any]) -> None:
        """SVC_STATS: reply with the service's metrics snapshot."""
        self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
            "rpc": rpc, "status": ReplyStatus.OK, "snapshot": self.snapshot(),
        }), cache=False)

    def _fence(self, session: _Session, rpc: int, key: str, epoch: int,
               client: str, verb: str) -> None:
        """Reject a write presenting a stale token; log it for the invariant."""
        current = self.keys[key].epoch if key in self.keys else 0
        self.metrics.counter("svc.fenced").inc()
        self.fenced.append(FencedRecord(
            key=key, request_epoch=epoch, current_epoch=current,
            verb=verb, client=client,
        ))
        self._reply(session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
            "rpc": rpc, "status": ReplyStatus.FENCED,
            "key": key, "epoch": epoch, "current": current,
        }))

    # ------------------------------------------------------------------
    # Lease transitions
    # ------------------------------------------------------------------

    def _grant_reply(self, rpc: int, state: _KeyState, ttl_ms: float) -> Frame:
        return Frame(FrameType.SVC_REPLY, SERVICE_PID, {
            "rpc": rpc, "status": ReplyStatus.GRANTED, "key": state.key,
            "epoch": state.epoch, "ttl_ms": ttl_ms, "holder": state.holder,
        })

    def _grant(self, state: _KeyState, client: str, session: _Session,
               rpc: int, ttl_ms: float) -> None:
        """Elect ``client`` the holder of ``state.key`` under a fresh epoch."""
        now = time.monotonic()
        state.epoch += 1
        state.state = LeaseState.HELD
        state.holder = client
        state.holder_session = session
        state.ttl_s = ttl_ms / 1000.0
        state.expires_at = now + state.ttl_s
        record = GrantRecord(
            key=state.key, epoch=state.epoch, holder=client,
            session=session.sid, granted_ns=time.monotonic_ns(),
        )
        self.history.append(record)
        self.metrics.counter("svc.grants").inc()
        if self.grant_hook is not None:
            self.grant_hook(record)
        if state.vacated_at is not None:
            failover_ms = (now - state.vacated_at) * 1000.0
            self.metrics.histogram("svc.failover_ms").observe(failover_ms)
            if state.vacated_by_crash:
                self.metrics.histogram("svc.crash_failover_ms").observe(
                    failover_ms
                )
            state.vacated_at = None
            state.vacated_by_crash = False
        self._push_expiry(
            state.expires_at - state.ttl_s * self.grace_fraction, state.key
        )
        self._reply(session, self._grant_reply(rpc, state, ttl_ms))
        self._notify(state, WatchEvent.GRANTED)

    def _end_grant(self, state: _KeyState, reason: str, event: str) -> None:
        """Close the key's open grant record and vacate the lease."""
        for record in reversed(self.history):
            if record.key == state.key and record.epoch == state.epoch:
                if record.ended_ns is None:
                    record.ended_ns = time.monotonic_ns()
                    record.reason = reason
                break
        state.holder = None
        state.holder_session = None
        state.state = LeaseState.FREE
        state.vacated_at = time.monotonic()
        state.vacated_by_crash = reason == "crash"
        self._notify(state, event)

    def _handoff(self, state: _KeyState) -> None:
        """After a vacancy: elect among live waiters, or fall back to FREE."""
        now = time.monotonic()
        live = [
            waiter for waiter in state.waiters
            if not waiter.session.closed
            and (waiter.deadline is None or waiter.deadline > now)
        ]
        expired = [
            waiter for waiter in state.waiters
            if waiter not in live and not waiter.session.closed
        ]
        state.waiters = []
        for waiter in expired:
            self.metrics.counter("svc.busy").inc()
            self._reply(waiter.session, Frame(FrameType.SVC_REPLY, SERVICE_PID, {
                "rpc": waiter.rpc, "status": ReplyStatus.BUSY,
                "key": state.key, "holder": None, "epoch": state.epoch,
            }))
        if not live:
            state.state = LeaseState.FREE
            return
        state.state = LeaseState.REELECTING
        winner = self._elect(state, live)
        self.metrics.counter("svc.reelections").inc()
        for waiter in live:
            if waiter is not winner:
                state.waiters.append(waiter)  # losers stay queued
        self.metrics.histogram("svc.acquire_wait_ms").observe(
            (now - winner.enqueued) * 1000.0
        )
        self._grant(
            state, winner.client, winner.session, winner.rpc,
            self.default_ttl_s * 1000.0,
        )

    def _elect(self, state: _KeyState, contenders: list[_Waiter]) -> _Waiter:
        """One leader election among the key's contenders.

        ``draw`` samples the winner from the per-``(key, epoch)`` RNG
        stream — the distributional shadow of the paper's election
        (uniform over contenders, Lemma 3.6's symmetry).  ``sim`` runs
        the real O(log* k) algorithm over the simulator with one pid per
        contender, so each handoff is a genuine protocol execution.
        """
        if len(contenders) == 1:
            return contenders[0]
        ordered = sorted(contenders, key=lambda waiter: waiter.client)
        stream = make_stream(self.seed, f"svc/{state.key}/{state.epoch + 1}")
        if (
            self.election == "sim"
            and len(ordered) <= SIM_ELECTION_MAX_CONTENDERS
        ):
            from ..harness.runners import run_leader_election

            run = run_leader_election(
                n=len(ordered), adversary="random",
                seed=stream.randrange(2**31),
            )
            return ordered[run.winner]
        return ordered[stream.randrange(len(ordered))]

    def _notify(self, state: _KeyState, event: str) -> None:
        """Push one SVC_EVENT frame to every live watcher of the key."""
        if not state.watchers:
            return
        frame = Frame(FrameType.SVC_EVENT, SERVICE_PID, {
            "key": state.key, "event": event,
            "epoch": state.epoch, "holder": state.holder,
        })
        for watcher in list(state.watchers):
            if watcher.closed:
                state.watchers.discard(watcher)
                continue
            self.metrics.counter("svc.events_pushed").inc()
            self._send(watcher, frame)

    def _session_crashed(self, session: _Session) -> None:
        """Disconnect semantics: every lease the session held fails over."""
        session.closed = True
        self._sessions.pop(session.sid, None)
        self.metrics.counter("svc.sessions_closed").inc()
        for state in self.keys.values():
            state.watchers.discard(session)
            state.waiters = [
                waiter for waiter in state.waiters
                if waiter.session is not session
            ]
            if (
                state.holder_session is session
                and state.state in (LeaseState.HELD, LeaseState.EXPIRING)
            ):
                self.metrics.counter("svc.crash_failovers").inc()
                self._end_grant(state, "crash", WatchEvent.CRASHED)
                self._handoff(state)

    # ------------------------------------------------------------------
    # Expiry sweeping
    # ------------------------------------------------------------------

    def _push_expiry(self, when: float, key: str) -> None:
        """Schedule a lazy wake-up for ``key`` around ``when`` (monotonic)."""
        self._heap_counter += 1
        heapq.heappush(self._expiry_heap, (when, self._heap_counter, key))

    async def _sweep_loop(self) -> None:
        """Drive lease expiry from one heap-ordered timer task.

        Entries are lazy: each wake-up re-validates the key's *current*
        deadline, so renewals and releases never have to unschedule
        anything (the stale entry pops, sees a healthy lease, and is
        discarded) — the timer-wheel discipline that keeps thousands of
        keys on one task.
        """
        try:
            while True:
                now = time.monotonic()
                while self._expiry_heap and self._expiry_heap[0][0] <= now:
                    _, _, key = heapq.heappop(self._expiry_heap)
                    self._sweep_key(key, now)
                if self._expiry_heap:
                    pause = min(
                        max(self._expiry_heap[0][0] - now, 0.001), 0.05
                    )
                else:
                    pause = 0.05
                await asyncio.sleep(pause)
        except asyncio.CancelledError:
            pass

    def _sweep_key(self, key: str, now: float) -> None:
        """Apply any due transition for ``key``: EXPIRING, expiry, timeouts."""
        state = self.keys.get(key)
        if state is None:
            return
        # Waiter timeouts fire regardless of the lease's health.
        timed_out = [
            waiter for waiter in state.waiters
            if waiter.deadline is not None and waiter.deadline <= now
            and not waiter.session.closed
        ]
        if timed_out:
            state.waiters = [
                waiter for waiter in state.waiters if waiter not in timed_out
            ]
            for waiter in timed_out:
                self.metrics.counter("svc.busy").inc()
                self._reply(waiter.session, Frame(
                    FrameType.SVC_REPLY, SERVICE_PID, {
                        "rpc": waiter.rpc, "status": ReplyStatus.BUSY,
                        "key": key, "holder": state.holder,
                        "epoch": state.epoch,
                    },
                ))
        if state.state not in (LeaseState.HELD, LeaseState.EXPIRING):
            return
        if state.expires_at <= now:
            self.metrics.counter("svc.expirations").inc()
            self._end_grant(state, "expire", WatchEvent.EXPIRED)
            self._handoff(state)
        elif (
            state.state == LeaseState.HELD
            and state.expires_at - state.ttl_s * self.grace_fraction <= now
        ):
            state.state = LeaseState.EXPIRING
            self._notify(state, WatchEvent.EXPIRING)
            self._push_expiry(state.expires_at, key)


# ---------------------------------------------------------------------------
# The checkable run digest
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ServiceRun:
    """A service execution's decision log, shaped for ``repro.check``.

    ``result`` is an empty :class:`~repro.sim.runtime.SimulationResult`
    so :class:`~repro.check.invariants.CheckContext` accepts the run;
    the serve-task invariants read :attr:`history` and :attr:`fenced`
    instead of processor decisions.
    """

    n: int
    k: int
    history: list[GrantRecord]
    fenced: list[FencedRecord]
    result: SimulationResult = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.result is None:
            self.result = SimulationResult(
                n=self.n, decisions={}, metrics=Metrics(self.n), trace=Trace(),
                undecided=frozenset(), crashed=frozenset(), start_times={},
            )

    @classmethod
    def of(cls, service: ElectionService) -> "ServiceRun":
        """Snapshot a service's decision log into a checkable run."""
        return cls(
            n=len(service.keys) or 1,
            k=len(service.history),
            history=list(service.history),
            fenced=list(service.fenced),
        )
