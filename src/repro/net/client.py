"""Thin client for the keyed election namespace of :mod:`repro.net.service`.

One :class:`ServiceClient` owns one TCP connection (= one *session*:
the service treats a disconnect as the crash of everything the session
holds) and multiplexes any number of concurrent requests over it by
``rpc`` nonce, exactly like the data-plane peers of
:mod:`repro.net.node`.  Requests ride the same chaos discipline as the
rest of the backend: each outbound frame consults the client's seeded
link fate and may be dropped or delayed; the client retries with the
*same* nonce after ``rpc_timeout_s``, and the service's at-most-once
reply cache guarantees a retried ACQUIRE can never double-grant.

API surface (all coroutines)::

    client = await ServiceClient.connect(host, port, client_id="worker-3")
    lease  = await client.acquire("primary", ttl_ms=2000, wait_ms=5000)
    ok     = await client.renew(lease)           # False => fenced out
    await client.release(lease)
    async for event in client.watch("primary"):  # granted/expired/...
        ...

:meth:`acquire` returns a :class:`Lease` (the ``(key, epoch)`` fencing
token plus TTL bookkeeping) or ``None`` when the key stayed busy past
``wait_ms`` — the lock-style timeout.  :class:`FencedError` is never
raised by :meth:`renew` / :meth:`release`; losing a fencing race is a
normal outcome (the paper's LOSE), reported as a return value.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Mapping

from .chaos import CLEAN_PLAN, ChaosPlan, LinkChaos
from .service import SERVICE_PID, ReplyStatus
from .wire import Frame, FrameType, pack_frame, read_frame

#: Default per-request timeout before a same-nonce resend (seconds).
DEFAULT_RPC_TIMEOUT_S = 0.25

#: Resend backoff: ``min(base * 2**attempt, cap)`` seconds.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 0.5


class ServiceClientError(RuntimeError):
    """The connection to the service failed mid-request."""


@dataclass(frozen=True, slots=True)
class Lease:
    """One granted ``(key, epoch)`` fencing token.

    ``deadline`` is the client-side monotonic estimate of expiry; it is
    advisory (the service's clock is authoritative) but good enough to
    schedule renewals at a safe margin.
    """

    key: str
    epoch: int
    ttl_ms: float
    deadline: float

    @property
    def remaining_s(self) -> float:
        """Client-side estimate of seconds until expiry."""
        return max(0.0, self.deadline - time.monotonic())


@dataclass(frozen=True, slots=True)
class KeyEvent:
    """One watch notification: what happened to a key, under which epoch."""

    key: str
    event: str
    epoch: int
    holder: str | None


class ServiceClient:
    """One session against an :class:`~repro.net.service.ElectionService`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: str,
        pid: int = 0,
        plan: ChaosPlan = CLEAN_PLAN,
        rpc_timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
    ) -> None:
        self.client_id = client_id
        self.pid = pid
        self.rpc_timeout_s = rpc_timeout_s
        self._reader = reader
        self._writer = writer
        self._link: LinkChaos = plan.link(pid, SERVICE_PID)
        self._rpc_counter = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._watch_queues: dict[str, asyncio.Queue] = {}
        self._closed = False
        self._background: set[asyncio.Task] = set()
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client_id: str,
        pid: int = 0,
        plan: ChaosPlan = CLEAN_PLAN,
        rpc_timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
    ) -> "ServiceClient":
        """Open one session to the service at ``host:port``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, client_id, pid=pid, plan=plan,
                   rpc_timeout_s=rpc_timeout_s)

    async def close(self) -> None:
        """Drop the session (the service sees this as a crash)."""
        self._closed = True
        self._read_task.cancel()
        for task in list(self._background):
            task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ServiceClientError("client closed mid-request")
                )
        for queue in self._watch_queues.values():
            queue.put_nowait(None)

    def abort(self) -> None:
        """Kill the TCP connection immediately — the crash-test hammer.

        Unlike :meth:`close` this does not wait for anything; the
        service observes an abrupt EOF, exactly like a process crash,
        and fails over every lease the session held.
        """
        self._closed = True
        self._read_task.cancel()
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    # ------------------------------------------------------------------
    # Inbound demultiplexing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                if frame.ftype == FrameType.SVC_EVENT:
                    key = frame.fields.get("key")
                    queue = self._watch_queues.get(key)
                    if queue is not None:
                        queue.put_nowait(KeyEvent(
                            key=key, event=frame.fields.get("event"),
                            epoch=frame.fields.get("epoch", 0),
                            holder=frame.fields.get("holder"),
                        ))
                    continue
                rpc = frame.fields.get("rpc")
                future = self._pending.get(rpc)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception:
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceClientError("connection to service lost")
                    )
            for queue in self._watch_queues.values():
                queue.put_nowait(None)

    # ------------------------------------------------------------------
    # Request plumbing: chaos on sends, same-nonce retries
    # ------------------------------------------------------------------

    def _send(self, frame: Frame) -> None:
        """Write one request frame through the client's chaos link."""
        fate = self._link.next_fate(0.0)
        if fate.drop:
            return
        if fate.delay_s > 0.0:
            task = asyncio.get_running_loop().create_task(
                self._delayed_send(frame, fate.delay_s)
            )
            self._background.add(task)
            task.add_done_callback(self._background.discard)
            return
        self._write(frame)
        for _ in range(fate.duplicates):
            self._write(frame)

    async def _delayed_send(self, frame: Frame, delay_s: float) -> None:
        await asyncio.sleep(delay_s)
        self._write(frame)

    def _write(self, frame: Frame) -> None:
        if self._closed or self._writer.is_closing():
            return
        self._writer.write(pack_frame(frame))

    async def _call(
        self,
        ftype: str,
        fields: Mapping[str, Any],
        overall_timeout_s: float | None = None,
    ) -> Frame:
        """Issue one request; resend the same nonce until a reply lands.

        ``overall_timeout_s`` bounds the whole exchange (used by waiting
        acquires, whose reply legitimately takes up to ``wait_ms``); the
        per-attempt timeout only drives resends.
        """
        self._rpc_counter += 1
        rpc = self._rpc_counter
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rpc] = future
        deadline = (
            None if overall_timeout_s is None
            else time.monotonic() + overall_timeout_s
        )
        attempt = 0
        try:
            while True:
                if self._closed:
                    raise ServiceClientError("client is closed")
                self._send(Frame(ftype, self.pid, {**fields, "rpc": rpc}))
                per_attempt = self.rpc_timeout_s * (2 ** min(attempt, 4))
                if deadline is not None:
                    per_attempt = min(
                        per_attempt, max(deadline - time.monotonic(), 0.01)
                    )
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), timeout=per_attempt
                    )
                except asyncio.TimeoutError:
                    if deadline is not None and time.monotonic() >= deadline:
                        raise ServiceClientError(
                            f"{ftype} {fields.get('key')!r} timed out after "
                            f"{overall_timeout_s}s"
                        ) from None
                    attempt += 1
                    await asyncio.sleep(
                        min(BACKOFF_BASE_S * (2 ** attempt), BACKOFF_CAP_S)
                    )
        finally:
            self._pending.pop(rpc, None)

    # ------------------------------------------------------------------
    # The lease API
    # ------------------------------------------------------------------

    async def acquire(
        self,
        key: str,
        ttl_ms: float | None = None,
        wait_ms: float = 0.0,
    ) -> Lease | None:
        """Acquire ``key``, waiting up to ``wait_ms`` for the election.

        Returns the granted :class:`Lease`, or ``None`` if the key was
        (and stayed) busy — the BUSY outcome is the service-side LOSE.
        """
        fields: dict[str, Any] = {
            "key": key, "client": self.client_id, "wait_ms": wait_ms,
        }
        if ttl_ms is not None:
            fields["ttl_ms"] = ttl_ms
        margin = max(self.rpc_timeout_s * 8, 2.0)
        reply = await self._call(
            FrameType.ACQUIRE, fields,
            overall_timeout_s=wait_ms / 1000.0 + margin,
        )
        return self._lease_of(reply)

    async def renew(self, lease: Lease, ttl_ms: float | None = None) -> Lease | None:
        """Extend ``lease``; returns the refreshed lease or ``None`` if fenced."""
        fields: dict[str, Any] = {
            "key": lease.key, "client": self.client_id, "epoch": lease.epoch,
        }
        if ttl_ms is not None:
            fields["ttl_ms"] = ttl_ms
        reply = await self._call(FrameType.RENEW, fields)
        return self._lease_of(reply)

    async def release(self, lease: Lease) -> bool:
        """Release ``lease``; returns False when fenced (already lost)."""
        reply = await self._call(FrameType.RELEASE, {
            "key": lease.key, "client": self.client_id, "epoch": lease.epoch,
        })
        return reply.fields.get("status") == ReplyStatus.OK

    async def watch(self, key: str) -> AsyncIterator[KeyEvent]:
        """Subscribe to ``key``; yields :class:`KeyEvent` until closed.

        The subscription's initial STATE reply is folded into a synthetic
        first event so consumers always see the current holder before
        any transition.
        """
        queue: asyncio.Queue = self._watch_queues.setdefault(
            key, asyncio.Queue()
        )
        reply = await self._call(FrameType.WATCH, {"key": key})
        yield KeyEvent(
            key=key, event=reply.fields.get("state", "unknown"),
            epoch=reply.fields.get("epoch", 0),
            holder=reply.fields.get("holder"),
        )
        while True:
            event = await queue.get()
            if event is None:
                return
            yield event

    async def stats(self) -> dict[str, Any]:
        """Fetch the service's current metrics snapshot."""
        reply = await self._call(FrameType.SVC_STATS, {})
        return dict(reply.fields.get("snapshot", {}))

    @staticmethod
    def _lease_of(reply: Frame) -> Lease | None:
        status = reply.fields.get("status")
        if status != ReplyStatus.GRANTED:
            return None
        ttl_ms = float(reply.fields.get("ttl_ms", 0.0))
        return Lease(
            key=reply.fields["key"], epoch=reply.fields["epoch"],
            ttl_ms=ttl_ms, deadline=time.monotonic() + ttl_ms / 1000.0,
        )
