"""repro.net — the socket backend: real processes, real asynchrony.

The simulator (:mod:`repro.sim`) realizes the paper's asynchronous
message-passing model as a discrete-event system where the adversary *is*
the scheduler.  This package is the second backend behind the same
``communicate`` abstraction: the **unchanged** generator coroutines of
:mod:`repro.core` run as separate OS processes that exchange the
PROPAGATE / COLLECT / ACK / COLLECT_REPLY traffic of [ABND95] over
localhost TCP sockets, so asynchrony, reordering, and delay come from a
genuine network stack and kernel scheduler instead of a simulated one.

Layers, bottom to top:

* :mod:`repro.net.wire` — length-prefixed, versioned frame codec with a
  lossless tagged encoding of every register value the protocols use;
* :mod:`repro.net.chaos` — seeded fault-injection plans (drop, delay,
  duplicate, partition) applied per link, per frame;
* :mod:`repro.net.node` — one processor: an asyncio server that services
  quorum traffic plus the client side that drives the protocol coroutine
  through retried, timed-out RPC broadcasts;
* :mod:`repro.net.driver` — launches ``n`` node processes, runs the
  control plane, collects outcomes into a
  :class:`~repro.sim.runtime.SimulationResult`, feeds them through the
  :mod:`repro.check` run-invariants, and merges per-node
  :mod:`repro.obs` traces;
* :mod:`repro.net.service` / :mod:`repro.net.client` — the long-lived
  layer on top: a keyed multi-tenant election namespace (``repro
  serve``) where every name is an independent, epoch-fenced leader
  election with a TTL lease, re-elected on expiry or crash;
* :mod:`repro.net.load` — the load driver that sustains thousands of
  concurrent named elections against one service process and reports
  acquire/failover latency percentiles.

Entry points: ``python -m repro net --task elect --n 6 --seed 0`` and
``python -m repro serve --load --keys 1000``.
"""

from .chaos import (
    CHAOS_PROFILES,
    ChaosPhase,
    ChaosPlan,
    Partition,
    PhasedChaosPlan,
    load_plan,
    make_phased_plan,
)
from .client import KeyEvent, Lease, ServiceClient, ServiceClientError
from .driver import NetRun, run_net
from .load import LoadReport, run_load
from .service import ElectionService, ServiceError, ServiceRun
from .wire import Frame, FrameDecoder, FrameType, WireError

__all__ = [
    "CHAOS_PROFILES",
    "ChaosPhase",
    "ChaosPlan",
    "PhasedChaosPlan",
    "Partition",
    "load_plan",
    "make_phased_plan",
    "NetRun",
    "run_net",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "WireError",
    "ElectionService",
    "ServiceError",
    "ServiceRun",
    "ServiceClient",
    "ServiceClientError",
    "Lease",
    "KeyEvent",
    "LoadReport",
    "run_load",
]
