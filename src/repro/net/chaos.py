"""Seeded fault-injection plans for the socket backend.

The simulator gives the adversary total scheduling power; a real network
gives whatever the kernel does.  A :class:`ChaosPlan` closes part of that
gap by perturbing the data-plane links deterministically from a seed:

* **drop** — the frame is never written (the sender's RPC times out and
  retries with backoff, exactly as it would on a lossy network);
* **delay** — the write is postponed by a uniform draw from
  ``delay_ms``, reordering traffic across links;
* **duplicate** — the frame is written twice (receivers must be
  idempotent — register merges are, by the join-semilattice argument);
* **partition** — every frame on the named directed links is dropped
  until the partition heals at ``heal_ms`` (``None`` = never heals).

Decisions are drawn per ``(src, dst)`` link from independent RNG streams
(:func:`~repro.sim.rng.make_stream`), so the *plan* — which frame
numbers on which links are dropped, delayed, or duplicated — is a pure
function of the seed, even though wall-clock interleaving is not.

Liveness: the quorum ``communicate`` primitive needs ``floor(n/2) + 1``
reachable processors (the caller included).  A plan with ``drop < 1``
and healing partitions always terminates (retries eventually land); a
permanent partition that cuts the caller off from every quorum makes the
run hang until the driver's deadline — the faithful analogue of the
paper's crashed-majority regime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..sim.rng import make_stream


@dataclass(frozen=True, slots=True)
class Partition:
    """A directed link cut: frames from ``src`` pids to ``dst`` pids drop.

    Cutting both directions takes two entries (or listing the pids in
    both ``src`` and ``dst``).  ``heal_ms`` is measured from node start.
    """

    src: tuple[int, ...]
    dst: tuple[int, ...]
    heal_ms: float | None = None

    def blocks(self, src: int, dst: int, elapsed_ms: float) -> bool:
        """True iff this partition currently drops ``src -> dst`` frames."""
        if self.heal_ms is not None and elapsed_ms >= self.heal_ms:
            return False
        return src in self.src and dst in self.dst

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form used inside a plan file."""
        return {"src": list(self.src), "dst": list(self.dst), "heal_ms": self.heal_ms}

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "Partition":
        """Rebuild a partition from its :meth:`to_obj` form."""
        return cls(
            src=tuple(int(pid) for pid in obj["src"]),
            dst=tuple(int(pid) for pid in obj["dst"]),
            heal_ms=None if obj.get("heal_ms") is None else float(obj["heal_ms"]),
        )


@dataclass(frozen=True, slots=True)
class FrameFate:
    """What the plan decided for one frame on one link."""

    drop: bool = False
    delay_s: float = 0.0
    duplicates: int = 0

    @property
    def clean(self) -> bool:
        """True iff the frame passes through untouched."""
        return not self.drop and self.delay_s == 0.0 and self.duplicates == 0


#: The fate of a frame under no chaos (shared: FrameFate is frozen).
CLEAN_FATE = FrameFate()


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A complete, seed-deterministic fault-injection configuration."""

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    delay_ms: tuple[float, float] = (1.0, 25.0)
    duplicate: float = 0.0
    partitions: tuple[Partition, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be within [0, 1], got {rate}")
        if self.drop >= 1.0 and self.drop != 0.0:
            # drop == 1.0 is allowed only through a partition (which can
            # heal); a blanket always-drop plan can never terminate.
            raise ValueError("blanket drop rate 1.0 can never terminate; "
                             "use a partition with heal_ms instead")
        lo, hi = self.delay_ms
        if lo < 0 or hi < lo:
            raise ValueError(f"delay_ms must be 0 <= lo <= hi, got {self.delay_ms}")

    @property
    def active(self) -> bool:
        """True iff the plan injects any fault at all."""
        return bool(
            self.drop or self.delay or self.duplicate or self.partitions
        )

    def link(self, src: int, dst: int) -> "LinkChaos":
        """The per-link decision stream for frames from ``src`` to ``dst``."""
        return LinkChaos(self, src, dst)

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form of the plan."""
        return {
            "seed": self.seed,
            "drop": self.drop,
            "delay": self.delay,
            "delay_ms": list(self.delay_ms),
            "duplicate": self.duplicate,
            "partitions": [partition.to_obj() for partition in self.partitions],
        }

    def to_json(self) -> str:
        """Canonical JSON text of the plan (sorted keys)."""
        return json.dumps(self.to_obj(), sort_keys=True, indent=2)

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ChaosPlan":
        """Rebuild a plan from its :meth:`to_obj` form."""
        unknown = set(obj) - {
            "seed", "drop", "delay", "delay_ms", "duplicate", "partitions"
        }
        if unknown:
            raise ValueError(f"unknown chaos plan keys: {sorted(unknown)}")
        delay_ms = obj.get("delay_ms", (1.0, 25.0))
        return cls(
            seed=int(obj.get("seed", 0)),
            drop=float(obj.get("drop", 0.0)),
            delay=float(obj.get("delay", 0.0)),
            delay_ms=(float(delay_ms[0]), float(delay_ms[1])),
            duplicate=float(obj.get("duplicate", 0.0)),
            partitions=tuple(
                Partition.from_obj(partition)
                for partition in obj.get("partitions", ())
            ),
        )


#: The no-fault plan, shared (ChaosPlan is frozen).
CLEAN_PLAN = ChaosPlan()


def load_plan(path: str) -> ChaosPlan:
    """Load a chaos plan from a JSON file written by :meth:`ChaosPlan.to_json`."""
    with open(path, "r", encoding="utf-8") as fp:
        obj = json.load(fp)
    if not isinstance(obj, dict):
        raise ValueError(f"{path}: chaos plan must be a JSON object")
    return ChaosPlan.from_obj(obj)


class LinkChaos:
    """The deterministic fate stream of one directed link.

    Frame ``i`` on link ``src -> dst`` always gets the same fate under
    the same plan, no matter how the surrounding run interleaves: each
    link owns an independent RNG stream derived from the plan seed.
    """

    __slots__ = ("_plan", "src", "dst", "_rng", "frames_seen")

    def __init__(self, plan: ChaosPlan, src: int, dst: int) -> None:
        self._plan = plan
        self.src = src
        self.dst = dst
        self._rng = make_stream(plan.seed, f"chaos/{src}->{dst}")
        self.frames_seen = 0

    def next_fate(self, elapsed_ms: float) -> FrameFate:
        """Decide the fate of the link's next frame.

        ``elapsed_ms`` (since node start) only gates partitions; the
        drop/delay/duplicate draws advance regardless, keeping the
        decision sequence aligned with the frame counter.
        """
        plan = self._plan
        self.frames_seen += 1
        if not plan.active:
            return CLEAN_FATE
        rng = self._rng
        dropped = plan.drop > 0.0 and rng.random() < plan.drop
        delay_s = 0.0
        if plan.delay > 0.0 and rng.random() < plan.delay:
            lo, hi = plan.delay_ms
            delay_s = rng.uniform(lo, hi) / 1000.0
        duplicates = 1 if plan.duplicate > 0.0 and rng.random() < plan.duplicate else 0
        for partition in plan.partitions:
            if partition.blocks(self.src, self.dst, elapsed_ms):
                dropped = True
                break
        if not dropped and delay_s == 0.0 and duplicates == 0:
            return CLEAN_FATE
        return FrameFate(drop=dropped, delay_s=delay_s, duplicates=duplicates)


def fates_for(
    plan: ChaosPlan, src: int, dst: int, count: int, elapsed_ms: float = 0.0
) -> list[FrameFate]:
    """The first ``count`` fates of one link — the testable plan surface."""
    link = plan.link(src, dst)
    return [link.next_fate(elapsed_ms) for _ in range(count)]


# Re-exported for plan-construction convenience in tests and tooling.
__all__ = [
    "ChaosPlan",
    "Partition",
    "FrameFate",
    "LinkChaos",
    "CLEAN_PLAN",
    "CLEAN_FATE",
    "load_plan",
    "fates_for",
]
