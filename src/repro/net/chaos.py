"""Seeded fault-injection plans for the socket backend.

The simulator gives the adversary total scheduling power; a real network
gives whatever the kernel does.  A :class:`ChaosPlan` closes part of that
gap by perturbing the data-plane links deterministically from a seed:

* **drop** — the frame is never written (the sender's RPC times out and
  retries with backoff, exactly as it would on a lossy network);
* **delay** — the write is postponed by a uniform draw from
  ``delay_ms``, reordering traffic across links;
* **duplicate** — the frame is written twice (receivers must be
  idempotent — register merges are, by the join-semilattice argument);
* **partition** — every frame on the named directed links is dropped
  until the partition heals at ``heal_ms`` (``None`` = never heals).

Decisions are drawn per ``(src, dst)`` link from independent RNG streams
(:func:`~repro.sim.rng.make_stream`), so the *plan* — which frame
numbers on which links are dropped, delayed, or duplicated — is a pure
function of the seed, even though wall-clock interleaving is not.

Liveness: the quorum ``communicate`` primitive needs ``floor(n/2) + 1``
reachable processors (the caller included).  A plan with ``drop < 1``
and healing partitions always terminates (retries eventually land); a
permanent partition that cuts the caller off from every quorum makes the
run hang until the driver's deadline — the faithful analogue of the
paper's crashed-majority regime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from ..sim.rng import derive_seed, make_stream


@dataclass(frozen=True, slots=True)
class Partition:
    """A directed link cut: frames from ``src`` pids to ``dst`` pids drop.

    Cutting both directions takes two entries (or listing the pids in
    both ``src`` and ``dst``).  ``heal_ms`` is measured from node start.
    """

    src: tuple[int, ...]
    dst: tuple[int, ...]
    heal_ms: float | None = None

    def blocks(self, src: int, dst: int, elapsed_ms: float) -> bool:
        """True iff this partition currently drops ``src -> dst`` frames."""
        if self.heal_ms is not None and elapsed_ms >= self.heal_ms:
            return False
        return src in self.src and dst in self.dst

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form used inside a plan file."""
        return {"src": list(self.src), "dst": list(self.dst), "heal_ms": self.heal_ms}

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "Partition":
        """Rebuild a partition from its :meth:`to_obj` form."""
        return cls(
            src=tuple(int(pid) for pid in obj["src"]),
            dst=tuple(int(pid) for pid in obj["dst"]),
            heal_ms=None if obj.get("heal_ms") is None else float(obj["heal_ms"]),
        )


@dataclass(frozen=True, slots=True)
class FrameFate:
    """What the plan decided for one frame on one link."""

    drop: bool = False
    delay_s: float = 0.0
    duplicates: int = 0

    @property
    def clean(self) -> bool:
        """True iff the frame passes through untouched."""
        return not self.drop and self.delay_s == 0.0 and self.duplicates == 0


#: The fate of a frame under no chaos (shared: FrameFate is frozen).
CLEAN_FATE = FrameFate()


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A complete, seed-deterministic fault-injection configuration."""

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    delay_ms: tuple[float, float] = (1.0, 25.0)
    duplicate: float = 0.0
    partitions: tuple[Partition, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be within [0, 1], got {rate}")
        if self.drop >= 1.0 and self.drop != 0.0:
            # drop == 1.0 is allowed only through a partition (which can
            # heal); a blanket always-drop plan can never terminate.
            raise ValueError("blanket drop rate 1.0 can never terminate; "
                             "use a partition with heal_ms instead")
        lo, hi = self.delay_ms
        if lo < 0 or hi < lo:
            raise ValueError(f"delay_ms must be 0 <= lo <= hi, got {self.delay_ms}")

    @property
    def active(self) -> bool:
        """True iff the plan injects any fault at all."""
        return bool(
            self.drop or self.delay or self.duplicate or self.partitions
        )

    def link(self, src: int, dst: int) -> "LinkChaos":
        """The per-link decision stream for frames from ``src`` to ``dst``."""
        return LinkChaos(self, src, dst)

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form of the plan."""
        return {
            "seed": self.seed,
            "drop": self.drop,
            "delay": self.delay,
            "delay_ms": list(self.delay_ms),
            "duplicate": self.duplicate,
            "partitions": [partition.to_obj() for partition in self.partitions],
        }

    def to_json(self) -> str:
        """Canonical JSON text of the plan (sorted keys)."""
        return json.dumps(self.to_obj(), sort_keys=True, indent=2)

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ChaosPlan":
        """Rebuild a plan from its :meth:`to_obj` form."""
        unknown = set(obj) - {
            "seed", "drop", "delay", "delay_ms", "duplicate", "partitions"
        }
        if unknown:
            raise ValueError(f"unknown chaos plan keys: {sorted(unknown)}")
        delay_ms = obj.get("delay_ms", (1.0, 25.0))
        return cls(
            seed=int(obj.get("seed", 0)),
            drop=float(obj.get("drop", 0.0)),
            delay=float(obj.get("delay", 0.0)),
            delay_ms=(float(delay_ms[0]), float(delay_ms[1])),
            duplicate=float(obj.get("duplicate", 0.0)),
            partitions=tuple(
                Partition.from_obj(partition)
                for partition in obj.get("partitions", ())
            ),
        )


#: The no-fault plan, shared (ChaosPlan is frozen).
CLEAN_PLAN = ChaosPlan()


def load_plan(path: str) -> ChaosPlan:
    """Load a chaos plan from a JSON file written by :meth:`ChaosPlan.to_json`."""
    with open(path, "r", encoding="utf-8") as fp:
        obj = json.load(fp)
    if not isinstance(obj, dict):
        raise ValueError(f"{path}: chaos plan must be a JSON object")
    return ChaosPlan.from_obj(obj)


class LinkChaos:
    """The deterministic fate stream of one directed link.

    Frame ``i`` on link ``src -> dst`` always gets the same fate under
    the same plan, no matter how the surrounding run interleaves: each
    link owns an independent RNG stream derived from the plan seed.
    """

    __slots__ = ("_plan", "src", "dst", "_rng", "frames_seen")

    def __init__(self, plan: ChaosPlan, src: int, dst: int) -> None:
        self._plan = plan
        self.src = src
        self.dst = dst
        self._rng = make_stream(plan.seed, f"chaos/{src}->{dst}")
        self.frames_seen = 0

    def next_fate(self, elapsed_ms: float) -> FrameFate:
        """Decide the fate of the link's next frame.

        ``elapsed_ms`` (since node start) only gates partitions; the
        drop/delay/duplicate draws advance regardless, keeping the
        decision sequence aligned with the frame counter.
        """
        plan = self._plan
        self.frames_seen += 1
        if not plan.active:
            return CLEAN_FATE
        rng = self._rng
        dropped = plan.drop > 0.0 and rng.random() < plan.drop
        delay_s = 0.0
        if plan.delay > 0.0 and rng.random() < plan.delay:
            lo, hi = plan.delay_ms
            delay_s = rng.uniform(lo, hi) / 1000.0
        duplicates = 1 if plan.duplicate > 0.0 and rng.random() < plan.duplicate else 0
        for partition in plan.partitions:
            if partition.blocks(self.src, self.dst, elapsed_ms):
                dropped = True
                break
        if not dropped and delay_s == 0.0 and duplicates == 0:
            return CLEAN_FATE
        return FrameFate(drop=dropped, delay_s=delay_s, duplicates=duplicates)


def fates_for(
    plan: ChaosPlan, src: int, dst: int, count: int, elapsed_ms: float = 0.0
) -> list[FrameFate]:
    """The first ``count`` fates of one link — the testable plan surface."""
    link = plan.link(src, dst)
    return [link.next_fate(elapsed_ms) for _ in range(count)]


# ---------------------------------------------------------------------------
# Rolling (phased) chaos
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosPhase:
    """One named segment of a rolling chaos schedule."""

    name: str
    duration_ms: float
    plan: ChaosPlan

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(
                f"phase {self.name!r}: duration_ms must be > 0, "
                f"got {self.duration_ms}"
            )

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form used inside a phased plan file."""
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "plan": self.plan.to_obj(),
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ChaosPhase":
        """Rebuild a phase from its :meth:`to_obj` form."""
        return cls(
            name=str(obj["name"]),
            duration_ms=float(obj["duration_ms"]),
            plan=ChaosPlan.from_obj(obj["plan"]),
        )


@dataclass(frozen=True, slots=True)
class PhasedChaosPlan:
    """A rolling schedule of :class:`ChaosPhase` segments.

    The plan is duck-type compatible with :class:`ChaosPlan` where the
    data plane cares — ``active`` and ``link()`` — so the socket backend
    and the election service accept either.  ``plan_at(elapsed_ms)``
    resolves which phase governs a moment; with ``cycle`` the schedule
    wraps around, so a soak of any duration keeps rotating through
    drop/delay/duplicate/partition/heal weather.

    Phased fates are deterministic *given the frame order within each
    phase*: each ``(phase, link)`` pair owns an independent RNG stream,
    but which phase a frame lands in depends on wall-clock timing.  The
    simulator keeps full determinism; the soak harness records the phase
    schedule (seed + profile) so incidents replay under the same plan.
    """

    seed: int = 0
    phases: tuple[ChaosPhase, ...] = ()
    cycle: bool = True

    @property
    def total_ms(self) -> float:
        """One full rotation of the schedule, in milliseconds."""
        return sum(phase.duration_ms for phase in self.phases)

    @property
    def active(self) -> bool:
        """True iff any phase injects any fault."""
        return any(phase.plan.active for phase in self.phases)

    def resolve(self, elapsed_ms: float) -> tuple[int, ChaosPhase, float] | None:
        """``(index, phase, ms into the phase)`` governing ``elapsed_ms``.

        ``None`` once a non-cycling schedule is exhausted (or if the
        plan has no phases): the weather is clean from then on.
        """
        total = self.total_ms
        if not self.phases or total <= 0:
            return None
        if elapsed_ms >= total:
            if not self.cycle:
                return None
            elapsed_ms = elapsed_ms % total
        at = 0.0
        for index, phase in enumerate(self.phases):
            if elapsed_ms < at + phase.duration_ms:
                return index, phase, elapsed_ms - at
            at += phase.duration_ms
        return len(self.phases) - 1, self.phases[-1], elapsed_ms - (
            total - self.phases[-1].duration_ms
        )

    def plan_at(self, elapsed_ms: float) -> ChaosPlan:
        """The :class:`ChaosPlan` governing ``elapsed_ms`` (clean if none)."""
        resolved = self.resolve(elapsed_ms)
        return CLEAN_PLAN if resolved is None else resolved[1].plan

    def link(self, src: int, dst: int) -> "PhasedLinkChaos":
        """The phase-aware decision stream for frames from ``src`` to ``dst``."""
        return PhasedLinkChaos(self, src, dst)

    def to_obj(self) -> dict[str, Any]:
        """The JSON object form of the phased plan."""
        return {
            "seed": self.seed,
            "cycle": self.cycle,
            "phases": [phase.to_obj() for phase in self.phases],
        }

    def to_json(self) -> str:
        """Canonical JSON text of the phased plan (sorted keys)."""
        return json.dumps(self.to_obj(), sort_keys=True, indent=2)

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "PhasedChaosPlan":
        """Rebuild a phased plan from its :meth:`to_obj` form."""
        unknown = set(obj) - {"seed", "cycle", "phases"}
        if unknown:
            raise ValueError(f"unknown phased plan keys: {sorted(unknown)}")
        return cls(
            seed=int(obj.get("seed", 0)),
            cycle=bool(obj.get("cycle", True)),
            phases=tuple(
                ChaosPhase.from_obj(phase) for phase in obj.get("phases", ())
            ),
        )


class PhasedLinkChaos:
    """The fate stream of one directed link under a rolling schedule.

    Each ``(phase index, link)`` pair owns an independent
    :class:`LinkChaos` stream (created lazily, reused across cycles), so
    fates within a phase stay a pure function of the phase plan's seed
    and the frame order on the link.  Partitions inside a phase are
    gated by time *into the phase*, so ``heal_ms`` shorter than the
    phase duration heals mid-phase.
    """

    __slots__ = ("_plan", "src", "dst", "_links", "frames_seen")

    def __init__(self, plan: PhasedChaosPlan, src: int, dst: int) -> None:
        self._plan = plan
        self.src = src
        self.dst = dst
        self._links: dict[int, LinkChaos] = {}
        self.frames_seen = 0

    def next_fate(self, elapsed_ms: float) -> FrameFate:
        """Decide the next frame's fate under the phase at ``elapsed_ms``."""
        self.frames_seen += 1
        resolved = self._plan.resolve(elapsed_ms)
        if resolved is None:
            return CLEAN_FATE
        index, phase, phase_elapsed = resolved
        link = self._links.get(index)
        if link is None:
            link = self._links[index] = phase.plan.link(self.src, self.dst)
        return link.next_fate(phase_elapsed)


def _split(n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """A quorum-preserving cut: (strict minority, rest of the cluster)."""
    quorum = n // 2 + 1
    majority = tuple(range(quorum))
    minority = tuple(range(quorum, n))
    return minority, majority


def _profile_gentle(seed: int, n: int) -> PhasedChaosPlan:
    """Light weather: mild loss and jitter with calm recovery windows."""
    def plan(label: str, **kwargs: Any) -> ChaosPlan:
        return ChaosPlan(seed=derive_seed(seed, f"chaos/{label}"), **kwargs)

    return PhasedChaosPlan(seed=seed, phases=(
        ChaosPhase("calm", 2000.0, plan("calm")),
        ChaosPhase("drizzle", 4000.0, plan("drizzle", drop=0.05, delay=0.1)),
        ChaosPhase("recover", 2000.0, plan("recover")),
    ))


def _profile_rolling(seed: int, n: int) -> PhasedChaosPlan:
    """The full rotation: drop, delay, duplicate, partition, heal."""
    def plan(label: str, **kwargs: Any) -> ChaosPlan:
        return ChaosPlan(seed=derive_seed(seed, f"chaos/{label}"), **kwargs)

    minority, majority = _split(n)
    partitions = (
        Partition(src=minority, dst=majority, heal_ms=2000.0),
        Partition(src=majority, dst=minority, heal_ms=2000.0),
    ) if minority else ()
    return PhasedChaosPlan(seed=seed, phases=(
        ChaosPhase("calm", 1500.0, plan("calm")),
        ChaosPhase("drop", 2500.0, plan("drop", drop=0.15)),
        ChaosPhase("delay", 2500.0, plan(
            "delay", delay=0.4, delay_ms=(1.0, 40.0)
        )),
        ChaosPhase("dup", 2000.0, plan("dup", duplicate=0.1)),
        # heal_ms < duration: the cut heals mid-phase, so every rotation
        # exercises the heal boundary while frames are still in flight.
        ChaosPhase("partition", 3000.0, plan(
            "partition", drop=0.02, partitions=partitions
        )),
        ChaosPhase("heal", 1500.0, plan("heal")),
    ))


def _profile_partition_heavy(seed: int, n: int) -> PhasedChaosPlan:
    """Long minority cuts with lossy recovery — the failover grinder."""
    def plan(label: str, **kwargs: Any) -> ChaosPlan:
        return ChaosPlan(seed=derive_seed(seed, f"chaos/{label}"), **kwargs)

    minority, majority = _split(n)
    partitions = (
        Partition(src=minority, dst=majority, heal_ms=3500.0),
        Partition(src=majority, dst=minority, heal_ms=3500.0),
    ) if minority else ()
    return PhasedChaosPlan(seed=seed, phases=(
        ChaosPhase("cut", 4000.0, plan("cut", partitions=partitions)),
        ChaosPhase("lossy-heal", 3000.0, plan(
            "lossy-heal", drop=0.1, delay=0.2
        )),
        ChaosPhase("calm", 2000.0, plan("calm")),
    ))


#: Named chaos profiles: ``name -> builder(seed, n) -> PhasedChaosPlan``.
#: Every builder is a pure function of ``(seed, n)``, so a profile name
#: plus a seed fully determines the soak's fault weather.
CHAOS_PROFILES: dict[str, Callable[[int, int], PhasedChaosPlan]] = {
    "gentle": _profile_gentle,
    "rolling": _profile_rolling,
    "partition-heavy": _profile_partition_heavy,
}


def make_phased_plan(profile: str, seed: int, n: int) -> PhasedChaosPlan:
    """Build a registered chaos profile for an ``n``-node cluster."""
    try:
        builder = CHAOS_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {profile!r}; "
            f"known: {sorted(CHAOS_PROFILES)}"
        ) from None
    return builder(seed, n)


# Re-exported for plan-construction convenience in tests and tooling.
__all__ = [
    "ChaosPlan",
    "ChaosPhase",
    "PhasedChaosPlan",
    "PhasedLinkChaos",
    "Partition",
    "FrameFate",
    "LinkChaos",
    "CLEAN_PLAN",
    "CLEAN_FATE",
    "CHAOS_PROFILES",
    "load_plan",
    "make_phased_plan",
    "fates_for",
]
