"""Launch, orchestrate, and check one run over real localhost sockets.

The driver is the control plane: it binds a control port, spawns ``n``
node processes (one OS process per processor), waits for every node's
HELLO (carrying the ephemeral data port it bound), broadcasts START with
the full port map, collects the participants' decision RESULTs, then
broadcasts SHUTDOWN and folds the final transport stats.

The outcome is assembled into a genuine
:class:`~repro.sim.runtime.SimulationResult` — decisions with globally
comparable invocation/response timestamps (``CLOCK_MONOTONIC`` is
system-wide on Linux), per-processor communicate-call and message
counters — so the **existing** :mod:`repro.check` run-invariants
(unique winner, linearizability, termination, valid outcomes, ...)
evaluate a socket run exactly as they evaluate a simulated one.

When tracing is enabled, every node streams its structured events
(:mod:`repro.obs` schema plus ``net.*`` transport events) to a per-node
JSONL file; the driver merges them into one time-sorted trace with a
meta header describing the run and the chaos plan.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core import (
    make_get_name,
    make_heterogeneous_poison_pill,
    make_leader_elect,
    make_poison_pill,
)
from ..core.baselines import (
    make_linear_renaming,
    make_naive_sifter,
    make_tournament,
)
from ..core.protocol import Outcome
from ..harness.workloads import choose_participants
from ..obs.jsonl import obj_to_event, read_trace, write_events
from ..obs.live import SnapshotWriter
from ..obs.metrics import merge_snapshots
from ..sim.messages import MessageKind
from ..sim.process import AlgorithmFactory
from ..sim.runtime import Decision, SimulationResult
from ..sim.trace import Metrics, Trace
from .chaos import CLEAN_PLAN, ChaosPlan
from .node import DRIVER_PID, NodeRuntime
from .wire import Frame, FrameType, read_frame, write_frame

#: Default wall-clock budget for a whole run, HELLO to SHUTDOWN (seconds).
DEFAULT_DEADLINE_S = 120.0

#: How long the driver waits for final stats frames after SHUTDOWN.
FINAL_STATS_TIMEOUT_S = 5.0

#: Wire frame kinds folded into the per-kind message counters.
_KIND_BY_FRAME = {
    FrameType.PROPAGATE: MessageKind.PROPAGATE,
    FrameType.COLLECT: MessageKind.COLLECT,
    FrameType.ACK: MessageKind.ACK,
    FrameType.COLLECT_REPLY: MessageKind.COLLECT_REPLY,
}


class NetError(RuntimeError):
    """A socket run failed to complete: timeout, node crash, or protocol error."""


#: ``(task, algorithm)`` to factory constructors; algorithm ``None`` maps
#: to the task's default, mirroring the harness runners.
TASK_DEFAULTS = {"elect": "poison_pill", "sift": "heterogeneous", "rename": "paper"}

_FACTORIES = {
    ("elect", "poison_pill"): make_leader_elect,
    ("elect", "poison_pill_basic"): lambda: make_leader_elect(sifter="poison_pill"),
    ("elect", "tournament"): make_tournament,
    ("sift", "poison_pill"): make_poison_pill,
    ("sift", "heterogeneous"): make_heterogeneous_poison_pill,
    ("sift", "naive"): make_naive_sifter,
    ("rename", "paper"): make_get_name,
    ("rename", "linear"): make_linear_renaming,
}

#: ``(task, algorithm)`` to the repro.check protocol registry name, so a
#: net run is judged by the same invariant sets as a simulated one.
_PROTOCOL_NAMES = {
    ("elect", "poison_pill"): "leader_election",
    ("elect", "poison_pill_basic"): "leader_election_basic",
    ("elect", "tournament"): "tournament",
    ("sift", "poison_pill"): "poison_pill",
    ("sift", "heterogeneous"): "heterogeneous",
    ("sift", "naive"): "naive_sifter",
    ("rename", "paper"): "renaming",
    ("rename", "linear"): "linear_renaming",
}


def resolve_factory(task: str, algorithm: str | None) -> tuple[str, AlgorithmFactory]:
    """Resolve ``(task, algorithm)`` to a concrete coroutine factory.

    Returns the normalized algorithm name plus the factory; raises
    ``ValueError`` for unknown combinations (listing the valid ones).
    """
    if task not in TASK_DEFAULTS:
        raise ValueError(f"unknown task {task!r}; expected one of {sorted(TASK_DEFAULTS)}")
    name = algorithm or TASK_DEFAULTS[task]
    try:
        constructor = _FACTORIES[(task, name)]
    except KeyError:
        known = sorted(alg for (t, alg) in _FACTORIES if t == task)
        raise ValueError(
            f"unknown algorithm {name!r} for task {task!r}; expected one of {known}"
        ) from None
    return name, constructor()


# ---------------------------------------------------------------------------
# Node child process entry
# ---------------------------------------------------------------------------


def _node_entry(config_json: str) -> None:
    """Entry point of one spawned node process.

    Takes the whole configuration as a JSON string so the ``spawn``
    start method has nothing to pickle beyond one flat value.
    """
    import asyncio

    config = json.loads(config_json)
    factory = None
    if config["participant"]:
        _, factory = resolve_factory(config["task"], config["algorithm"])
    node = NodeRuntime(
        pid=config["pid"],
        n=config["n"],
        seed=config["seed"],
        driver_port=config["driver_port"],
        factory=factory,
        plan=ChaosPlan.from_obj(config["plan"]),
        rpc_timeout_s=config["rpc_timeout_s"],
        trace_path=config["trace_path"],
        telemetry_interval_s=config.get("telemetry_interval_s"),
    )
    asyncio.run(node.run())


# ---------------------------------------------------------------------------
# The run result
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class NetRun:
    """One completed socket-backend execution, checked and summarized.

    Mirrors the harness Run objects closely enough that
    :class:`repro.check.invariants.CheckContext` accepts it unchanged:
    it exposes ``n``, ``k``, and ``result`` (a real
    :class:`~repro.sim.runtime.SimulationResult`).
    """

    n: int
    k: int
    task: str
    algorithm: str
    seed: int
    plan: ChaosPlan
    result: SimulationResult
    violations: list[tuple[str, str]] = field(default_factory=list)
    node_stats: dict[int, dict[str, Any]] = field(default_factory=dict)
    trace_path: str | None = None
    telemetry_path: str | None = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff every checked run-invariant held."""
        return not self.violations

    @property
    def winner(self) -> int | None:
        """The elected pid (elect task), or None."""
        winners = [
            pid for pid, decision in self.result.decisions.items()
            if decision.result is Outcome.WIN
        ]
        return winners[0] if len(winners) == 1 else None

    @property
    def survivors(self) -> int:
        """SURVIVE count (sift task)."""
        return sum(
            1 for decision in self.result.decisions.values()
            if decision.result is Outcome.SURVIVE
        )

    @property
    def names(self) -> dict[int, Any]:
        """Decided names (rename task)."""
        return dict(self.result.outcomes)

    @property
    def frames_sent(self) -> int:
        """Total data frames written across all nodes (retries included)."""
        return sum(stats.get("frames_sent", 0) for stats in self.node_stats.values())

    @property
    def frames_dropped(self) -> int:
        """Total frames swallowed by the chaos plan."""
        return sum(stats.get("frames_dropped", 0) for stats in self.node_stats.values())


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


class _ControlPlane:
    """The driver's view of the run while it is in flight."""

    def __init__(
        self,
        n: int,
        participants: Sequence[int],
        snapshot_writer: SnapshotWriter | None = None,
    ) -> None:
        import asyncio

        self.n = n
        self.participants = frozenset(participants)
        self.ports: dict[int, int] = {}
        self.writers: dict[int, Any] = {}
        self.decisions: dict[int, dict[str, Any]] = {}
        self.finals: dict[int, dict[str, Any]] = {}
        self.coins: dict[int, list] = {}
        self.node_snapshots: dict[int, dict[str, Any]] = {}
        self.snapshot_writer = snapshot_writer
        self.started_at = time.monotonic()
        self.all_registered = asyncio.Event()
        self.all_decided = asyncio.Event()
        self.all_final = asyncio.Event()
        self.failure: str | None = None
        self.failed = asyncio.Event()

    def fail(self, message: str) -> None:
        """Record a fatal run error and wake the orchestrator."""
        if self.failure is None:
            self.failure = message
        self.failed.set()

    def note_decision(self, pid: int, fields: Mapping[str, Any]) -> None:
        """Record one participant's decision RESULT."""
        self.decisions[pid] = dict(fields)
        if self.participants <= set(self.decisions):
            self.all_decided.set()

    def note_final(self, pid: int, fields: Mapping[str, Any]) -> None:
        """Record one node's final transport-stats RESULT."""
        self.finals[pid] = dict(fields)
        if len(self.finals) == self.n:
            self.all_final.set()

    @property
    def clock_ms(self) -> int:
        """Milliseconds since the control plane came up."""
        return int((time.monotonic() - self.started_at) * 1000)

    def note_stats(self, pid: int, fields: Mapping[str, Any]) -> None:
        """Fold one node's periodic telemetry RESULT into the cluster view.

        Every stats frame refreshes that node's latest snapshot; the
        merged cluster snapshot (counters summed, histogram buckets
        combined across nodes) is appended to the live snapshot stream
        that ``repro watch`` tails.
        """
        self.node_snapshots[pid] = dict(fields.get("snapshot", {}))
        if self.snapshot_writer is not None:
            self.snapshot_writer.write_snapshot(
                self.clock_ms, merge_snapshots(self.node_snapshots.values())
            )


async def _orchestrate(
    n: int,
    participants: Sequence[int],
    seed: int,
    task: str,
    algorithm: str,
    plan: ChaosPlan,
    rpc_timeout_s: float,
    deadline_s: float,
    trace_paths: Mapping[int, str] | None,
    telemetry_interval_s: float | None = None,
    snapshot_writer: SnapshotWriter | None = None,
) -> _ControlPlane:
    """The driver's async body: serve the control plane, spawn, collect."""
    import asyncio

    plane = _ControlPlane(n, participants, snapshot_writer=snapshot_writer)

    handler_tasks: set[asyncio.Task] = set()

    async def handle_node(reader, writer) -> None:
        handler_tasks.add(asyncio.current_task())
        pid = None
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                if frame.ftype == FrameType.HELLO:
                    pid = frame.sender
                    plane.ports[pid] = frame.fields["port"]
                    plane.writers[pid] = writer
                    if len(plane.ports) == n:
                        plane.all_registered.set()
                elif frame.ftype == FrameType.RESULT:
                    # Explicit kind dispatch: periodic "stats" frames must
                    # not be mistaken for the final transport counters, or
                    # the first telemetry tick would mark the node final.
                    kind = frame.fields.get("kind")
                    if kind == "decision":
                        plane.note_decision(frame.sender, frame.fields)
                    elif kind == "stats":
                        plane.note_stats(frame.sender, frame.fields)
                    else:
                        plane.note_final(frame.sender, frame.fields)
                elif frame.ftype == FrameType.ERROR:
                    plane.fail(
                        f"node {frame.sender} failed: {frame.fields.get('message')}"
                    )
        except Exception as error:  # connection loss mid-run is fatal
            if not plane.all_final.is_set():
                plane.fail(f"control connection to node {pid} broke: {error!r}")

    server = await asyncio.start_server(handle_node, "127.0.0.1", 0)
    driver_port = server.sockets[0].getsockname()[1]

    context = multiprocessing.get_context("spawn")
    children = []
    participant_set = set(participants)
    for pid in range(n):
        config = {
            "pid": pid,
            "n": n,
            "seed": seed,
            "driver_port": driver_port,
            "task": task,
            "algorithm": algorithm,
            "participant": pid in participant_set,
            "plan": plan.to_obj(),
            "rpc_timeout_s": rpc_timeout_s,
            "trace_path": trace_paths.get(pid) if trace_paths else None,
            "telemetry_interval_s": telemetry_interval_s,
        }
        child = context.Process(
            target=_node_entry, args=(json.dumps(config),), name=f"repro-net-{pid}"
        )
        child.start()
        children.append(child)

    async def monitor_children() -> None:
        while True:
            for child in children:
                if child.exitcode not in (None, 0):
                    plane.fail(
                        f"node process {child.name} exited with {child.exitcode}"
                    )
                    return
            await asyncio.sleep(0.2)

    monitor = asyncio.create_task(monitor_children())

    async def await_or_fail(event: asyncio.Event, what: str, timeout: float) -> None:
        waiter = asyncio.create_task(event.wait())
        failer = asyncio.create_task(plane.failed.wait())
        done, pending = await asyncio.wait(
            (waiter, failer), timeout=timeout, return_when=asyncio.FIRST_COMPLETED
        )
        for pending_task in pending:
            pending_task.cancel()
        if failer in done:
            raise NetError(plane.failure or "run failed")
        if waiter not in done:
            raise NetError(f"timed out after {timeout:.0f}s waiting for {what}")

    try:
        await await_or_fail(plane.all_registered, "node registration", deadline_s)
        start_fields = {
            "ports": dict(plane.ports),
            "participants": sorted(participant_set),
            "rpc_timeout_s": rpc_timeout_s,
        }
        for writer in plane.writers.values():
            await write_frame(writer, Frame(FrameType.START, DRIVER_PID, start_fields))
        await await_or_fail(plane.all_decided, "participant decisions", deadline_s)
        for writer in plane.writers.values():
            await write_frame(writer, Frame(FrameType.SHUTDOWN, DRIVER_PID, {}))
        try:
            await await_or_fail(
                plane.all_final, "final stats", FINAL_STATS_TIMEOUT_S
            )
        except NetError:
            if plane.failure is not None:
                raise
            # Missing final stats degrade the counters, not the run.
    finally:
        monitor.cancel()
        server.close()
        await server.wait_closed()
        deadline = time.monotonic() + 5.0
        for child in children:
            child.join(timeout=max(0.0, deadline - time.monotonic()))
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join(timeout=2.0)
        # Close the control connections so every handler task ends on its
        # own (EOF) before the loop shuts down: a handler still parked in
        # read_frame at teardown would be *cancelled*, and the 3.11
        # streams done-callback logs that cancellation as a spurious
        # "Exception in callback" traceback.
        for writer in plane.writers.values():
            writer.close()
        live = [task for task in handler_tasks if not task.done()]
        if live:
            await asyncio.wait(live, timeout=1.0)
    return plane


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def run_net(
    task: str = "elect",
    algorithm: str | None = None,
    n: int = 6,
    k: int | None = None,
    pattern: str = "first",
    seed: int = 0,
    plan: ChaosPlan | None = None,
    rpc_timeout_s: float = 0.25,
    deadline_s: float = DEFAULT_DEADLINE_S,
    trace_path: str | None = None,
    check: bool = True,
    telemetry_path: str | None = None,
    telemetry_interval_s: float = 1.0,
) -> NetRun:
    """Run one task over localhost sockets and check its invariants.

    The unchanged protocol coroutine runs in ``n`` spawned OS processes;
    ``plan`` injects seeded faults (default: clean network).  With
    ``trace_path`` set, per-node obs streams are merged into one
    time-sorted JSONL trace at that path.  ``check`` evaluates the
    :mod:`repro.check` run-invariants registered for the protocol; the
    violations land in :attr:`NetRun.violations` (never raised, so
    callers can inspect the failing run).

    With ``telemetry_path`` set, every node reports a metrics snapshot
    (per-RPC latency histogram, retry counts, chaos drop/delay counters)
    to the driver every ``telemetry_interval_s`` seconds; the driver
    merges them into a cluster-wide snapshot stream at that path, which
    ``repro watch`` can tail while the run is still in flight.
    """
    import asyncio

    algorithm, _ = resolve_factory(task, algorithm)
    participants = choose_participants(n, k, pattern, seed)
    plan = plan if plan is not None else CLEAN_PLAN

    snapshot_writer: SnapshotWriter | None = None
    if telemetry_path is not None:
        snapshot_writer = SnapshotWriter(telemetry_path, meta={
            "backend": "net", "task": task, "algorithm": algorithm,
            "n": n, "k": len(participants), "seed": seed,
            "interval_s": telemetry_interval_s,
        })

    trace_paths: dict[int, str] | None = None
    trace_dir = None
    if trace_path is not None:
        trace_dir = tempfile.TemporaryDirectory(prefix="repro-net-")
        trace_paths = {
            pid: os.path.join(trace_dir.name, f"node-{pid}.jsonl")
            for pid in range(n)
        }

    wall_start = time.perf_counter()
    try:
        plane = asyncio.run(_orchestrate(
            n, participants, seed, task, algorithm, plan,
            rpc_timeout_s, deadline_s, trace_paths,
            telemetry_interval_s if telemetry_path is not None else None,
            snapshot_writer,
        ))
    except NetError:
        if trace_dir is not None:
            trace_dir.cleanup()
        if snapshot_writer is not None:
            # No end marker: a tailing `repro watch` should report the
            # stream as interrupted rather than complete.
            snapshot_writer.close()
        raise
    wall_s = time.perf_counter() - wall_start
    if snapshot_writer is not None:
        # Final cluster snapshot from the latest per-node reports, then
        # the end marker so watchers terminate cleanly.
        if plane.node_snapshots:
            snapshot_writer.write_snapshot(
                plane.clock_ms, merge_snapshots(plane.node_snapshots.values())
            )
        snapshot_writer.write_end(plane.clock_ms)
        snapshot_writer.close()

    result = _assemble_result(n, plane)
    events = None
    if trace_paths is not None:
        events = _merge_traces(
            trace_path, trace_paths, task=task, algorithm=algorithm, n=n,
            k=len(participants), seed=seed, pattern=pattern, plan=plan,
        )
        trace_dir.cleanup()

    run = NetRun(
        n=n,
        k=len(participants),
        task=task,
        algorithm=algorithm,
        seed=seed,
        plan=plan,
        result=result,
        node_stats={pid: dict(fields) for pid, fields in plane.finals.items()},
        trace_path=trace_path,
        telemetry_path=telemetry_path,
        wall_s=wall_s,
    )
    if check:
        run.violations = check_net_run(run, events)
    return run


def _assemble_result(n: int, plane: _ControlPlane) -> SimulationResult:
    """Fold the control-plane reports into a ``SimulationResult``.

    Timestamps are rebased to the earliest invocation so decision times
    are small, zero-anchored integers; ``CLOCK_MONOTONIC`` is the same
    clock in every process, so the rebased intervals remain a faithful
    real-time order for the linearizability invariant.
    """
    metrics = Metrics(n)
    decisions: dict[int, Decision] = {}
    start_times: dict[int, int] = {}
    t0 = min(
        (fields["start_ns"] for fields in plane.decisions.values()), default=0
    )
    for pid, fields in sorted(plane.decisions.items()):
        start = fields["start_ns"] - t0
        decide = fields["decide_ns"] - t0
        decisions[pid] = Decision(
            pid=pid, result=fields["outcome"], start_time=start, decide_time=decide
        )
        start_times[pid] = start
        metrics.comm_calls_by[pid] = fields.get("comm_calls", 0)
    for pid, fields in plane.finals.items():
        sent = fields.get("frames_sent", 0)
        metrics.messages_sent_by[pid] = sent
        metrics.messages_total += sent
        metrics.deliveries += fields.get("frames_received", 0)
        for kind_name, count in fields.get("frames_by_kind", {}).items():
            kind = _KIND_BY_FRAME.get(kind_name)
            if kind is not None:
                metrics.messages_by_kind[kind] += count
    undecided = plane.participants - set(decisions)
    return SimulationResult(
        n=n,
        decisions=decisions,
        metrics=metrics,
        trace=Trace(),
        undecided=frozenset(undecided),
        crashed=frozenset(),
        start_times=start_times,
    )


def _merge_traces(
    out_path: str,
    trace_paths: Mapping[int, str],
    **meta: Any,
) -> list:
    """Merge per-node JSONL streams into one time-sorted trace file.

    Returns the merged event list so invariant checks can reuse it
    without re-reading the file.
    """
    from ..obs.events import json_safe

    events = []
    for pid, path in sorted(trace_paths.items()):
        if not os.path.exists(path):
            continue
        _, objects = read_trace(path)
        events.extend(obj_to_event(obj) for obj in objects)
    events.sort(key=lambda event: (event.time, event.pid))
    plan = meta.pop("plan")
    header = {
        "backend": "net",
        "format": 1,
        **{key: json_safe(value) for key, value in meta.items()},
        "chaos": plan.to_obj(),
        "nodes": len(trace_paths),
    }
    write_events(out_path, events, meta=header)
    return events


def check_net_run(run: NetRun, events=None) -> list[tuple[str, str]]:
    """Evaluate the protocol's run-invariants against a socket run.

    Uses the same invariant registry as ``repro check``; ensemble
    invariants (statistical, many-run) are skipped by construction.
    """
    from ..check.invariants import PROTOCOLS, evaluate_run, invariants_for

    spec = PROTOCOLS[_PROTOCOL_NAMES[(run.task, run.algorithm)]]
    invariants = invariants_for(spec.task)
    return evaluate_run(spec, run, events, invariants)
