"""Length-prefixed, versioned wire framing for the socket backend.

A frame on the wire is::

    +----------+---------+------------------+------------------+
    | magic(2) | ver(1)  | length(4, BE)    | body (JSON utf-8)|
    +----------+---------+------------------+------------------+

``magic`` is ``b"RW"`` (Repro Wire), ``ver`` the :data:`WIRE_VERSION`
byte, and ``length`` the body size in bytes, capped at
:data:`MAX_FRAME_BYTES` so a corrupted length cannot make a reader
allocate unbounded memory.  The body is one JSON object with sorted keys
— identical frames serialize to identical bytes.

Register values cross the wire through a **lossless tagged encoding**
(:func:`encode_value` / :func:`decode_value`).  The simulator's
``json_safe`` is deliberately lossy (``repr`` fallback for display);
the wire codec must instead round-trip every value the protocols store:
primitives, tuples, lists, sets/frozensets, dicts with non-string keys,
and the protocol vocabulary (:class:`~repro.core.protocol.Outcome`,
``PillState``, ``HetStatus``).  Register entries — ``(version, value,
policy)`` triples keyed by arbitrary hashables — ride on top of it via
:func:`encode_entries` / :func:`decode_entries`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from ..core.protocol import HetStatus, Outcome, PillState

#: Bumped when the frame layout or tagged encoding changes incompatibly.
WIRE_VERSION = 1

#: First two bytes of every frame.
MAGIC = b"RW"

#: Header size: magic + version + 4-byte big-endian body length.
HEADER_BYTES = 7

#: Upper bound on a frame body.  The largest legitimate payload is a full
#: register variable (n entries of small tuples); 16 MiB is orders of
#: magnitude above that, while still rejecting garbage lengths instantly.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WireError(ValueError):
    """Any malformed frame: bad magic, version, length, or body."""


class FrameType:
    """String constants naming every frame the backend exchanges.

    Data plane (between nodes) mirrors
    :class:`~repro.sim.messages.MessageKind`; the control plane (node ↔
    driver) carries run orchestration.
    """

    # Data plane — the [ABND95] communicate primitive.
    PROPAGATE = "propagate"
    COLLECT = "collect"
    ACK = "ack"
    COLLECT_REPLY = "collect_reply"
    # Control plane — driver orchestration.
    HELLO = "hello"
    START = "start"
    RESULT = "result"
    SHUTDOWN = "shutdown"
    ERROR = "error"
    # Service plane — the keyed election namespace (repro.net.service).
    # Requests carry an ``rpc`` nonce; SVC_REPLY echoes it with a
    # ``status`` field (granted/busy/fenced/ok/state/error), and
    # SVC_EVENT frames are unsolicited watch notifications.
    ACQUIRE = "acquire"
    RENEW = "renew"
    RELEASE = "release"
    WATCH = "watch"
    SVC_STATS = "svc_stats"
    SVC_REPLY = "svc_reply"
    SVC_EVENT = "svc_event"


#: Every valid frame type, for decode-time validation.
FRAME_TYPES = frozenset(
    value for name, value in vars(FrameType).items() if not name.startswith("_")
)


@dataclass(frozen=True, slots=True)
class Frame:
    """One unit of traffic: a type, the sending pid, and a field mapping.

    ``fields`` values go through the tagged value codec, so any register
    value — and nested containers of them — survive the round trip.
    The driver uses pid ``-1`` as its sender id on control frames.
    """

    ftype: str
    sender: int
    fields: Mapping[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Tagged value codec
# ---------------------------------------------------------------------------

#: Tag names for the non-primitive value shapes.
_TAG_TUPLE = "t"
_TAG_LIST = "l"
_TAG_SET = "s"
_TAG_FROZENSET = "fs"
_TAG_MAP = "m"
_TAG_OUTCOME = "outcome"
_TAG_PILL = "pill"
_TAG_HET = "het"


def encode_value(value: Any) -> Any:
    """Encode one register value into a JSON-serializable tagged form.

    Primitives pass through unchanged; containers and the protocol enums
    become ``{"__t": tag, "v": ...}`` objects.  Raises :class:`WireError`
    for types outside the protocol value domain, so an unserializable
    value fails at the sender instead of poisoning the stream.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Outcome):
        return {"__t": _TAG_OUTCOME, "v": value.value}
    if isinstance(value, PillState):
        return {"__t": _TAG_PILL, "v": value.value}
    if isinstance(value, HetStatus):
        return {
            "__t": _TAG_HET,
            "v": [encode_value(value.state), encode_value(value.members)],
        }
    if isinstance(value, tuple):
        return {"__t": _TAG_TUPLE, "v": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"__t": _TAG_LIST, "v": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(item) for item in value]
        # Canonical member order so identical sets yield identical bytes.
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        tag = _TAG_FROZENSET if isinstance(value, frozenset) else _TAG_SET
        return {"__t": tag, "v": encoded}
    if isinstance(value, Mapping):
        pairs = [
            [encode_value(key), encode_value(item)] for key, item in value.items()
        ]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__t": _TAG_MAP, "v": pairs}
    raise WireError(f"value not wire-encodable: {value!r} ({type(value).__name__})")


def decode_value(obj: Any) -> Any:
    """Invert :func:`encode_value`; raises :class:`WireError` on bad tags."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        # Bare JSON lists never come out of encode_value; reject so that a
        # hand-crafted ambiguous body fails loudly instead of guessing.
        raise WireError("bare JSON array in value position (expected a tag)")
    if not isinstance(obj, dict) or "__t" not in obj or "v" not in obj:
        raise WireError(f"untagged object in value position: {obj!r}")
    tag, inner = obj["__t"], obj["v"]
    if tag == _TAG_OUTCOME:
        return Outcome(inner)
    if tag == _TAG_PILL:
        return PillState(inner)
    if tag == _TAG_HET:
        state, members = inner
        return HetStatus(decode_value(state), decode_value(members))
    if tag == _TAG_TUPLE:
        return tuple(decode_value(item) for item in inner)
    if tag == _TAG_LIST:
        return [decode_value(item) for item in inner]
    if tag == _TAG_SET:
        return {decode_value(item) for item in inner}
    if tag == _TAG_FROZENSET:
        return frozenset(decode_value(item) for item in inner)
    if tag == _TAG_MAP:
        return {decode_value(key): decode_value(item) for key, item in inner}
    raise WireError(f"unknown value tag {tag!r}")


def encode_entries(entries: Mapping[Hashable, tuple[int, Any, str]]) -> Any:
    """Encode a register entry mapping ``{key: (version, value, policy)}``."""
    return encode_value(dict(entries))


def decode_entries(obj: Any) -> dict[Hashable, tuple[int, Any, str]]:
    """Decode an entry mapping, validating the ``(int, value, str)`` shape."""
    decoded = decode_value(obj)
    if not isinstance(decoded, dict):
        raise WireError(f"entries payload is not a mapping: {decoded!r}")
    for key, entry in decoded.items():
        if (
            not isinstance(entry, tuple)
            or len(entry) != 3
            or not isinstance(entry[0], int)
            or not isinstance(entry[2], str)
        ):
            raise WireError(f"malformed register entry for key {key!r}: {entry!r}")
    return decoded


# ---------------------------------------------------------------------------
# Frame packing
# ---------------------------------------------------------------------------


def pack_frame(frame: Frame) -> bytes:
    """Serialize one frame to its canonical byte form."""
    if frame.ftype not in FRAME_TYPES:
        raise WireError(f"unknown frame type {frame.ftype!r}")
    body = json.dumps(
        {
            "t": frame.ftype,
            "s": frame.sender,
            "f": {key: encode_value(value) for key, value in frame.fields.items()},
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame body {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return MAGIC + bytes([WIRE_VERSION]) + len(body).to_bytes(4, "big") + body


def _decode_body(body: bytes) -> Frame:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable frame body: {error}") from None
    if not isinstance(obj, dict):
        raise WireError(f"frame body is not an object: {obj!r}")
    try:
        ftype, sender, fields = obj["t"], obj["s"], obj["f"]
    except KeyError as error:
        raise WireError(f"frame body missing key {error}") from None
    if ftype not in FRAME_TYPES:
        raise WireError(f"unknown frame type {ftype!r}")
    if not isinstance(sender, int) or isinstance(sender, bool):
        raise WireError(f"frame sender is not an int: {sender!r}")
    if not isinstance(fields, dict):
        raise WireError(f"frame fields is not an object: {fields!r}")
    return Frame(
        ftype=ftype,
        sender=sender,
        fields={key: decode_value(value) for key, value in fields.items()},
    )


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, collect frames.

    TCP gives a byte stream, not message boundaries, so receivers buffer
    and cut frames out as headers complete.  Any malformed header or body
    raises :class:`WireError` immediately — a corrupted stream cannot be
    resynchronized, so the connection must be dropped.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Consume ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            frame = self._try_cut()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_cut(self) -> Frame | None:
        buffer = self._buffer
        if len(buffer) < HEADER_BYTES:
            return None
        if bytes(buffer[:2]) != MAGIC:
            raise WireError(f"bad frame magic {bytes(buffer[:2])!r}")
        if buffer[2] != WIRE_VERSION:
            raise WireError(
                f"wire version {buffer[2]} unsupported (expected {WIRE_VERSION})"
            )
        length = int.from_bytes(buffer[3:7], "big")
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        if len(buffer) < HEADER_BYTES + length:
            return None
        body = bytes(buffer[HEADER_BYTES:HEADER_BYTES + length])
        del buffer[:HEADER_BYTES + length]
        return _decode_body(body)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert stream end on a frame boundary; raise if bytes remain."""
        if self._buffer:
            raise WireError(
                f"stream truncated mid-frame ({len(self._buffer)} bytes pending)"
            )


# ---------------------------------------------------------------------------
# asyncio stream helpers
# ---------------------------------------------------------------------------


async def read_frame(reader) -> Frame | None:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`WireError` on EOF mid-frame or any malformed header/body.
    """
    header = await reader.read(HEADER_BYTES)
    if not header:
        return None
    while len(header) < HEADER_BYTES:
        more = await reader.read(HEADER_BYTES - len(header))
        if not more:
            raise WireError("stream truncated mid-header")
        header += more
    decoder = FrameDecoder()
    frames = decoder.feed(header)
    assert not frames  # header alone never completes a frame (length >= 2 body)
    length = int.from_bytes(header[3:7], "big")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("stream truncated mid-body") from None
    frames = decoder.feed(body)
    if len(frames) != 1:
        raise WireError("frame did not complete at declared length")
    return frames[0]


async def write_frame(writer, frame: Frame) -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    writer.write(pack_frame(frame))
    await writer.drain()
