"""One processor of the socket backend: server, client, protocol driver.

A :class:`NodeRuntime` is the real-process counterpart of one simulated
:class:`~repro.sim.process.Process` — and in fact *wraps* one, reusing
its register file, coin log, and :class:`~repro.sim.process.ProcessAPI`
facade, so the protocol coroutine cannot tell which backend it runs on.
What changes is only who resolves the ``communicate`` requests:

* the **server** half accepts peer connections and services PROPAGATE /
  COLLECT frames exactly like the simulator's delivery step — merge the
  entries, or snapshot the requested variable — replying ACK /
  COLLECT_REPLY over the same connection (the model's standing
  assumption that every non-faulty processor assists, participant or
  not, decided or not);
* the **client** half implements one ``communicate`` call as a broadcast
  of retried, timed-out RPCs: per-peer tasks resend with exponential
  backoff until a reply lands, and the call resolves as soon as
  ``floor(n/2) + 1`` processors (the caller included) have contributed —
  the quorum condition of [ABND95].  Leftover per-peer attempts are
  cancelled at quorum, which is precisely the adversary "never
  delivering" those messages in the simulated model.

Fault injection (:mod:`repro.net.chaos`) sits on the *sender* side of
every directed link: each outgoing data frame — requests and replies
alike — consults the link's seeded fate stream and may be dropped,
delayed (rescheduled as its own task, so later frames overtake it),
or duplicated (receivers are idempotent: merges are semilattice joins
and replies are matched by RPC nonce).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..obs.events import Event, EventType
from ..obs.jsonl import JsonlSink
from ..obs.metrics import MetricsRegistry
from ..sim.communicate import Collect, Propagate
from ..sim.process import AlgorithmFactory, Process
from ..sim.rng import make_stream
from .chaos import CLEAN_PLAN, ChaosPlan, LinkChaos
from .wire import Frame, FrameType, WireError, pack_frame, read_frame, write_frame

#: Seconds between attempts to reach a not-yet-listening peer or driver.
CONNECT_RETRY_S = 0.05

#: Default per-RPC timeout before a resend (seconds).
DEFAULT_RPC_TIMEOUT_S = 0.25

#: Exponential backoff: ``min(base * 2**attempt, cap)`` seconds.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0

#: The driver's sender id on control frames.
DRIVER_PID = -1

#: Map data-plane frame types onto the simulator's message-kind names,
#: used for per-kind stats parity with :class:`~repro.sim.trace.Metrics`.
DATA_FRAME_TYPES = (
    FrameType.PROPAGATE,
    FrameType.COLLECT,
    FrameType.ACK,
    FrameType.COLLECT_REPLY,
)


@dataclass(slots=True)
class NodeStats:
    """Transport counters one node reports back to the driver."""

    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped: int = 0
    frames_delayed: int = 0
    frames_duplicated: int = 0
    rpc_retries: int = 0
    frames_by_kind: dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in DATA_FRAME_TYPES}
    )

    def to_fields(self) -> dict[str, Any]:
        """The wire-field form carried inside the final RESULT frame."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
            "frames_delayed": self.frames_delayed,
            "frames_duplicated": self.frames_duplicated,
            "rpc_retries": self.rpc_retries,
            "frames_by_kind": dict(self.frames_by_kind),
        }


class PeerClient:
    """The outbound half of one directed link: connection, RPCs, chaos.

    One persistent connection per destination, demultiplexed by RPC
    nonce: concurrent calls (quorum broadcasts, straggler retries) share
    it, and a reader task routes each reply to its waiting future.
    Duplicate and stale replies resolve no future and are dropped —
    matching the simulator, where stale acknowledgements for resolved
    calls are ignored.
    """

    def __init__(self, node: "NodeRuntime", dst: int, port: int) -> None:
        self._node = node
        self.dst = dst
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._connect_lock = asyncio.Lock()
        self.link: LinkChaos = node.plan.link(node.pid, dst)

    async def _ensure_connected(self) -> asyncio.StreamWriter:
        async with self._connect_lock:
            if self._writer is not None and not self._writer.is_closing():
                return self._writer
            reader, writer = await asyncio.open_connection("127.0.0.1", self.port)
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.create_task(self._read_loop(reader))
            return writer

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self._node.note_received(frame)
                rpc = frame.fields.get("rpc")
                future = self._pending.get(rpc)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (WireError, OSError, ConnectionError):
            pass
        finally:
            self._fail_pending(ConnectionResetError(f"link to {self.dst} lost"))
            if self._writer is not None:
                self._writer.close()
            self._reader = self._writer = None

    def _fail_pending(self, error: BaseException) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)

    async def call(self, ftype: str, fields: Mapping[str, Any], rpc: int) -> Frame:
        """Send one request frame and await the reply matching ``rpc``.

        The frame may be dropped or delayed by the link's chaos stream;
        the caller owns the timeout-and-retry policy, so this simply
        waits until a matching reply arrives or the connection fails.
        """
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rpc] = future
        try:
            writer = await self._ensure_connected()
            await self._node.send_through_chaos(
                writer, Frame(ftype, self._node.pid, {**fields, "rpc": rpc}), self.link
            )
            return await future
        finally:
            self._pending.pop(rpc, None)

    async def close(self) -> None:
        """Tear the connection down and cancel the reader task."""
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None


@dataclass(slots=True)
class _QuorumCall:
    """Progress of one in-flight ``communicate`` broadcast."""

    call_id: int
    needed: int
    successes: int = 0
    views: list[dict] | None = None
    resolved: asyncio.Event = field(default_factory=asyncio.Event)

    def contribute(self, view: dict | None) -> None:
        """Record one peer's contribution; set the event at quorum.

        Contributions past the quorum are ignored, like stale
        acknowledgements for an already-resolved call in the simulator.
        """
        if self.resolved.is_set():
            return
        self.successes += 1
        if view is not None and self.views is not None:
            self.views.append(view)
        if self.successes >= self.needed:
            self.resolved.set()


class NodeRuntime:
    """One OS-process processor: serve quorum traffic, run the protocol.

    Lifecycle (driven by :meth:`run`): bind the peer server on an
    ephemeral port, register with the driver (HELLO), receive the peer
    port map (START), drive the protocol coroutine if participating
    (reporting the decision with a RESULT frame), keep serving peers
    until SHUTDOWN, then report transport stats and exit.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        seed: int,
        driver_port: int,
        factory: AlgorithmFactory | None = None,
        plan: ChaosPlan = CLEAN_PLAN,
        rpc_timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
        trace_path: str | None = None,
        telemetry_interval_s: float | None = None,
    ) -> None:
        self.pid = pid
        self.n = n
        self.seed = seed
        self.driver_port = driver_port
        self.plan = plan
        self.rpc_timeout_s = rpc_timeout_s
        self.stats = NodeStats()
        self.process = Process(pid, n, make_stream(seed, f"proc/{pid}"), factory)
        self._peers: dict[int, PeerClient] = {}
        self._server: asyncio.base_events.Server | None = None
        self._call_counter = 0
        self._rpc_counter = 0
        self._closing = False
        self._started_ns = time.monotonic_ns()
        self._background: set[asyncio.Task] = set()
        self._sink: JsonlSink | None = (
            JsonlSink(trace_path) if trace_path is not None else None
        )
        if self._sink is not None:
            self.process.obs = self._emit
            self.process.put_hook = self._put_hook
        # Live telemetry: a registry of wall-clock instruments (per-RPC
        # latency, retry counts, chaos drops/delays) reported to the
        # driver as periodic RESULT kind="stats" frames.  None when the
        # run was launched without --telemetry: the hot paths then pay
        # only an ``is None`` check, like the simulator's sink guard.
        self._telemetry_interval_s = telemetry_interval_s
        self._telemetry: MetricsRegistry | None = (
            MetricsRegistry() if telemetry_interval_s is not None else None
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _now_ns(self) -> int:
        return time.monotonic_ns()

    def _emit(self, etype: str, fields: Mapping[str, Any], raw: Any = None) -> None:
        """Emit one structured event (no-op when tracing is off)."""
        if self._sink is not None:
            self._sink.emit(Event(self._now_ns(), etype, self.pid, dict(fields)))

    def _put_hook(self, var, key, value) -> None:
        self._emit(EventType.REG_PUT, {"var": var, "key": key, "value": repr(value)})

    def telemetry_snapshot(self) -> dict[str, Any]:
        """The node's current metrics snapshot (telemetry must be on).

        Folds the transport counters of :class:`NodeStats` into the
        registry (as ``net.*`` counters) next to the live per-RPC latency
        histogram, so one snapshot carries everything the driver merges
        into the cluster view.
        """
        assert self._telemetry is not None
        registry = self._telemetry
        stats = self.stats
        registry.counter("net.frames_sent").value = stats.frames_sent
        registry.counter("net.frames_received").value = stats.frames_received
        registry.counter("net.frames_dropped").value = stats.frames_dropped
        registry.counter("net.frames_delayed").value = stats.frames_delayed
        registry.counter("net.frames_duplicated").value = stats.frames_duplicated
        registry.counter("net.rpc_retries").value = stats.rpc_retries
        for kind, count in stats.frames_by_kind.items():
            registry.counter(f"net.frames.{kind}").value = count
        registry.gauge("net.comm_calls").set(self.process.comm_calls)
        return registry.snapshot()

    async def _telemetry_loop(self, writer: "asyncio.StreamWriter") -> None:
        """Report a stats snapshot to the driver every telemetry interval."""
        assert self._telemetry_interval_s is not None
        try:
            while not self._closing:
                await asyncio.sleep(self._telemetry_interval_s)
                if self._closing:
                    return
                await write_frame(writer, Frame(
                    FrameType.RESULT, self.pid,
                    {"kind": "stats", "snapshot": self.telemetry_snapshot()},
                ))
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    # Chaos-aware sending
    # ------------------------------------------------------------------

    def _elapsed_ms(self) -> float:
        return (time.monotonic_ns() - self._started_ns) / 1e6

    async def send_through_chaos(
        self, writer: asyncio.StreamWriter, frame: Frame, link: LinkChaos
    ) -> None:
        """Write one data frame, subject to the link's next chaos fate."""
        fate = link.next_fate(self._elapsed_ms())
        self.stats.frames_by_kind[frame.ftype] = (
            self.stats.frames_by_kind.get(frame.ftype, 0) + 1
        )
        if fate.drop:
            self.stats.frames_dropped += 1
            self._emit("net.drop", {"dst": link.dst, "kind": frame.ftype})
            return
        if fate.delay_s > 0.0:
            self.stats.frames_delayed += 1
            self._emit(
                "net.delay",
                {"dst": link.dst, "kind": frame.ftype, "ms": fate.delay_s * 1e3},
            )
            task = asyncio.create_task(self._delayed_write(writer, frame, fate.delay_s))
            self._track(task)
        else:
            self._write_now(writer, frame)
        for _ in range(fate.duplicates):
            self.stats.frames_duplicated += 1
            self._write_now(writer, frame)

    def _write_now(self, writer: asyncio.StreamWriter, frame: Frame) -> None:
        if writer.is_closing():
            return
        writer.write(pack_frame(frame))
        self.stats.frames_sent += 1
        self._emit(
            EventType.MSG_SEND,
            {"kind": frame.ftype, "src": self.pid, "dst": -1,
             "call": frame.fields.get("call", -1), "var": frame.fields.get("var", "")},
        )

    async def _delayed_write(
        self, writer: asyncio.StreamWriter, frame: Frame, delay_s: float
    ) -> None:
        await asyncio.sleep(delay_s)
        self._write_now(writer, frame)

    def _track(self, task: asyncio.Task) -> None:
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    def note_received(self, frame: Frame) -> None:
        """Account one inbound data frame (called by connection readers)."""
        self.stats.frames_received += 1
        self._emit(
            EventType.MSG_DELIVER,
            {"kind": frame.ftype, "src": frame.sender, "dst": self.pid,
             "call": frame.fields.get("call", -1), "var": frame.fields.get("var", "")},
        )

    # ------------------------------------------------------------------
    # Server half: service quorum traffic
    # ------------------------------------------------------------------

    async def _handle_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one inbound peer connection until EOF.

        Replies travel back over the same connection and pass through
        the chaos stream of the *reply* link (this node -> requester).
        """
        links: dict[int, LinkChaos] = {}
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self.note_received(frame)
                link = links.get(frame.sender)
                if link is None:
                    # Reply-path chaos keyed per requester; independent of
                    # the request path, like two directions of a cable.
                    link = links[frame.sender] = self.plan.link(self.pid, frame.sender)
                reply = self._serve(frame)
                if reply is not None:
                    await self.send_through_chaos(writer, reply, link)
        except (WireError, OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _serve(self, frame: Frame) -> Frame | None:
        """The delivery-step semantics: merge or snapshot, then reply."""
        fields = frame.fields
        if frame.ftype == FrameType.PROPAGATE:
            self.process.registers.merge(fields["var"], fields["entries"])
            return Frame(
                FrameType.ACK,
                self.pid,
                {"call": fields["call"], "rpc": fields["rpc"]},
            )
        if frame.ftype == FrameType.COLLECT:
            entries = dict(self.process.registers.entries(fields["var"]))
            return Frame(
                FrameType.COLLECT_REPLY,
                self.pid,
                {"call": fields["call"], "rpc": fields["rpc"],
                 "var": fields["var"], "entries": entries},
            )
        # ACK / COLLECT_REPLY never arrive here: replies flow through the
        # client connections.  Anything else is a protocol error; drop it.
        return None

    # ------------------------------------------------------------------
    # Client half: the communicate primitive over RPC broadcasts
    # ------------------------------------------------------------------

    async def _communicate(self, request: Propagate | Collect) -> list[dict] | None:
        """Resolve one yielded request against a quorum of peers."""
        self._call_counter += 1
        call_id = self._call_counter
        self.process.comm_calls += 1
        registers = self.process.registers
        if isinstance(request, Propagate):
            payload = dict(registers.entries(request.var, request.keys))
            fields = {"call": call_id, "var": request.var, "entries": payload}
            ftype = FrameType.PROPAGATE
            call = _QuorumCall(call_id=call_id, needed=self.n // 2)
        else:
            fields = {"call": call_id, "var": request.var}
            ftype = FrameType.COLLECT
            call = _QuorumCall(
                call_id=call_id,
                needed=self.n // 2,
                views=[registers.view(request.var)],
            )
        self._emit(
            EventType.COMM_CALL,
            {"call": call_id,
             "kind": "propagate" if ftype == FrameType.PROPAGATE else "collect",
             "var": request.var},
        )
        if call.needed == 0:
            # Degenerate quorum (n == 1): resolvable with no remote help.
            self._emit(EventType.COMM_DONE, {"call": call_id, "acks": 0})
            return call.views if call.views is not None else None
        tasks = [
            asyncio.create_task(self._deliver_until_acked(peer, ftype, fields, call))
            for peer in self._peers.values()
        ]
        try:
            await call.resolved.wait()
        finally:
            # Quorum reached (or the node is dying): the adversary never
            # delivers the leftover messages of this call.
            for task in tasks:
                task.cancel()
        self._emit(EventType.COMM_DONE, {"call": call_id, "acks": call.successes})
        if call.views is not None:
            return list(call.views)
        return None

    async def _deliver_until_acked(
        self,
        peer: PeerClient,
        ftype: str,
        fields: Mapping[str, Any],
        call: _QuorumCall,
    ) -> None:
        """Retry one peer's RPC with exponential backoff until it lands."""
        attempt = 0
        while not self._closing:
            self._rpc_counter += 1
            rpc = self._rpc_counter
            issued = time.perf_counter()
            try:
                reply = await asyncio.wait_for(
                    peer.call(ftype, fields, rpc), timeout=self.rpc_timeout_s
                )
            except (asyncio.TimeoutError, OSError, ConnectionError):
                self.stats.rpc_retries += 1
                self._emit(
                    "net.retry",
                    {"dst": peer.dst, "call": call.call_id, "attempt": attempt},
                )
                await asyncio.sleep(
                    min(BACKOFF_BASE_S * (2 ** attempt), BACKOFF_CAP_S)
                )
                attempt += 1
                continue
            if self._telemetry is not None:
                self._telemetry.histogram("net.rpc_latency_ms").observe(
                    (time.perf_counter() - issued) * 1e3
                )
            view = None
            if reply.ftype == FrameType.COLLECT_REPLY:
                view = {
                    key: entry[1] for key, entry in reply.fields["entries"].items()
                }
            call.contribute(view)
            return

    # ------------------------------------------------------------------
    # Protocol driving
    # ------------------------------------------------------------------

    async def _run_protocol(self) -> tuple[Any, int, int]:
        """Drive the participant coroutine; returns (result, start, decide) ns."""
        start_ns = time.monotonic_ns()
        self._emit(EventType.PROC_START, {})
        coroutine = self.process.start()
        value: Any = None
        while True:
            try:
                request = coroutine.send(value)
            except StopIteration as stop:
                decide_ns = time.monotonic_ns()
                self.process.result = stop.value
                # The raw value, not its repr: the sink's ``json_safe``
                # maps Outcome enums to "win"/"lose" exactly as the sim
                # backend does, so net traces stay auditable by the same
                # streaming checker.
                self._emit(EventType.PROC_DECIDE, {"result": stop.value})
                return stop.value, start_ns, decide_ns
            if not isinstance(request, (Propagate, Collect)):
                raise WireError(
                    f"processor {self.pid} yielded {request!r}; expected a "
                    "Propagate or Collect request"
                )
            value = await self._communicate(request)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """The node's whole life: register, run, serve, report, exit."""
        self._server = await asyncio.start_server(
            self._handle_peer, "127.0.0.1", 0
        )
        port = self._server.sockets[0].getsockname()[1]
        reader, writer = await self._connect_driver()
        try:
            await write_frame(
                writer, Frame(FrameType.HELLO, self.pid, {"port": port})
            )
            start = await read_frame(reader)
            if start is None or start.ftype != FrameType.START:
                raise WireError(f"expected START from driver, got {start!r}")
            ports: dict[int, int] = start.fields["ports"]
            self.rpc_timeout_s = float(start.fields.get("rpc_timeout_s", self.rpc_timeout_s))
            for pid, peer_port in ports.items():
                if pid != self.pid:
                    self._peers[pid] = PeerClient(self, pid, peer_port)
            stats_task: asyncio.Task | None = None
            if self._telemetry is not None:
                stats_task = asyncio.create_task(self._telemetry_loop(writer))
                self._track(stats_task)
            if self.process.is_participant:
                try:
                    result, start_ns, decide_ns = await self._run_protocol()
                except Exception as error:  # report, then re-raise for exit code
                    await write_frame(writer, Frame(
                        FrameType.ERROR, self.pid, {"message": repr(error)}
                    ))
                    raise
                await write_frame(writer, Frame(
                    FrameType.RESULT, self.pid,
                    {"kind": "decision", "outcome": result,
                     "start_ns": start_ns, "decide_ns": decide_ns,
                     "comm_calls": self.process.comm_calls,
                     "coins": list(self.process.coins.all())},
                ))
            # Participant or responder: keep serving until SHUTDOWN — the
            # model's non-faulty processors assist forever, decided or not.
            shutdown = await read_frame(reader)
            if shutdown is not None and shutdown.ftype != FrameType.SHUTDOWN:
                raise WireError(f"expected SHUTDOWN from driver, got {shutdown!r}")
            self._closing = True
            if stats_task is not None:
                # Stop periodic stats before the final RESULT so the
                # driver's control stream ends on the final frame.
                stats_task.cancel()
            if self._telemetry is not None:
                # One last stats report: a run faster than the interval
                # would otherwise leave the snapshot stream empty.
                await write_frame(writer, Frame(
                    FrameType.RESULT, self.pid,
                    {"kind": "stats", "snapshot": self.telemetry_snapshot()},
                ))
            await write_frame(writer, Frame(
                FrameType.RESULT, self.pid,
                {"kind": "final",
                 "role": "participant" if self.process.is_participant else "responder",
                 **self.stats.to_fields()},
            ))
        finally:
            writer.close()
            await self._shutdown()

    async def _connect_driver(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Dial the driver's control port, retrying while it comes up."""
        deadline = time.monotonic() + 10.0
        while True:
            try:
                return await asyncio.open_connection("127.0.0.1", self.driver_port)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                await asyncio.sleep(CONNECT_RETRY_S)

    async def _shutdown(self) -> None:
        """Cancel background work, close peers and the server, flush obs."""
        self._closing = True
        for task in list(self._background):
            task.cancel()
        for peer in self._peers.values():
            await peer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sink is not None:
            self._sink.close()
