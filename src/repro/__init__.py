"""repro — a reproduction of "How to Elect a Leader Faster than a Tournament".

Alistarh, Gelashvili, Vladu (PODC 2015, arXiv:1411.1001): randomized
leader election in expected ``O(log* n)`` time and ``O(n^2)`` messages in
the asynchronous message-passing model against a strong adaptive
adversary, plus message-optimal strong renaming in ``O(log^2 n)`` time.

The package is organized in four layers:

* :mod:`repro.sim` — the asynchronous message-passing model itself: a
  deterministic discrete-event simulator where the adversary schedules
  every message delivery and computation step;
* :mod:`repro.adversary` — scheduling strategies, from fair random to the
  paper's sequential, coin-examining, and lower-bound "bubble" attacks;
* :mod:`repro.core` — the algorithms: PoisonPill, Heterogeneous
  PoisonPill, the full leader election, renaming, and baselines
  (tournament tree, naive sifting, linear renaming);
* :mod:`repro.analysis` / :mod:`repro.harness` — theory oracle,
  correctness checkers, statistics, and the experiment harness behind
  the benchmark suite.

Quickstart::

    from repro import run_leader_election

    run = run_leader_election(n=32, adversary="random", seed=1)
    print(run.winner, run.max_comm_calls, run.messages_total)
"""

from .adversary import (
    ADVERSARY_FACTORIES,
    Adversary,
    BubbleAdversary,
    CoinAwareAdversary,
    CrashingAdversary,
    EagerAdversary,
    ObliviousAdversary,
    QuorumSplitAdversary,
    RandomAdversary,
    RandomCrashAdversary,
    RoundRobinAdversary,
    SequentialAdversary,
)
from .analysis import (
    SpecificationViolation,
    check_leader_election,
    check_renaming,
    check_sifting_phase,
    log_star,
)
from .core import (
    HetStatus,
    Outcome,
    PillState,
    get_name,
    heterogeneous_poison_pill,
    leader_elect,
    make_get_name,
    make_heterogeneous_poison_pill,
    make_leader_elect,
    make_poison_pill,
    poison_pill,
)
from .core.baselines import (
    linear_renaming,
    make_linear_renaming,
    make_naive_sifter,
    make_tournament,
    naive_sifter,
    tournament,
)
from .core.extensions import do_all, make_do_all, make_replicated_do_all
from .harness import (
    LeaderElectionRun,
    RenamingRun,
    SiftingRun,
    choose_participants,
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)
from .memory import AtomicRegister, make_register_tournament, register_tournament
from .sim import Collect, Propagate, ProcessAPI, Simulation, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "ADVERSARY_FACTORIES",
    "Adversary",
    "AtomicRegister",
    "BubbleAdversary",
    "CoinAwareAdversary",
    "Collect",
    "do_all",
    "make_do_all",
    "make_register_tournament",
    "make_replicated_do_all",
    "register_tournament",
    "CrashingAdversary",
    "EagerAdversary",
    "HetStatus",
    "LeaderElectionRun",
    "ObliviousAdversary",
    "Outcome",
    "PillState",
    "Propagate",
    "ProcessAPI",
    "QuorumSplitAdversary",
    "RandomAdversary",
    "RandomCrashAdversary",
    "RenamingRun",
    "RoundRobinAdversary",
    "SequentialAdversary",
    "SiftingRun",
    "Simulation",
    "SimulationResult",
    "SpecificationViolation",
    "check_leader_election",
    "check_renaming",
    "check_sifting_phase",
    "choose_participants",
    "get_name",
    "heterogeneous_poison_pill",
    "leader_elect",
    "linear_renaming",
    "log_star",
    "make_get_name",
    "make_heterogeneous_poison_pill",
    "make_leader_elect",
    "make_linear_renaming",
    "make_naive_sifter",
    "make_poison_pill",
    "make_tournament",
    "naive_sifter",
    "poison_pill",
    "run_leader_election",
    "run_renaming",
    "run_sifting_phase",
    "tournament",
    "__version__",
]
