"""Chaos-plan tests: validation, determinism, and serialization.

The whole point of seeded fault injection is that a failing chaotic run
can be re-run: the fate of frame ``i`` on link ``src -> dst`` must be a
pure function of ``(plan, src, dst, i)``.  These tests pin that down,
plus the plan-file round trip the CLI and CI smoke jobs rely on.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.chaos import (
    CLEAN_FATE,
    CLEAN_PLAN,
    ChaosPlan,
    Partition,
    fates_for,
    load_plan,
)

plans = st.builds(
    ChaosPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    drop=st.floats(min_value=0.0, max_value=0.9),
    delay=st.floats(min_value=0.0, max_value=1.0),
    duplicate=st.floats(min_value=0.0, max_value=1.0),
)


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="drop rate"):
            ChaosPlan(drop=1.5)
        with pytest.raises(ValueError, match="delay rate"):
            ChaosPlan(delay=-0.1)

    def test_blanket_total_drop_rejected(self):
        with pytest.raises(ValueError, match="never terminate"):
            ChaosPlan(drop=1.0)

    def test_delay_range_ordering(self):
        with pytest.raises(ValueError, match="delay_ms"):
            ChaosPlan(delay_ms=(10.0, 5.0))

    def test_clean_plan_is_inactive(self):
        assert not CLEAN_PLAN.active
        assert ChaosPlan(drop=0.1).active
        assert ChaosPlan(partitions=(Partition((0,), (1,)),)).active


class TestDeterminism:
    @given(plans, st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=50)
    def test_fates_are_pure_functions_of_the_seed(self, plan, src, dst):
        assert fates_for(plan, src, dst, 50) == fates_for(plan, src, dst, 50)

    def test_links_draw_independent_streams(self):
        plan = ChaosPlan(seed=7, drop=0.5)
        assert fates_for(plan, 0, 1, 64) != fates_for(plan, 1, 0, 64)

    def test_clean_plan_touches_nothing(self):
        assert fates_for(CLEAN_PLAN, 0, 1, 32) == [CLEAN_FATE] * 32

    def test_drop_rate_is_roughly_honored(self):
        fates = fates_for(ChaosPlan(seed=1, drop=0.3), 0, 1, 2000)
        dropped = sum(1 for fate in fates if fate.drop)
        assert 0.2 < dropped / len(fates) < 0.4

    def test_delay_draws_stay_in_range(self):
        plan = ChaosPlan(seed=2, delay=1.0, delay_ms=(5.0, 10.0))
        for fate in fates_for(plan, 0, 1, 200):
            assert 0.005 <= fate.delay_s <= 0.010


class TestPartitions:
    def test_partition_drops_matching_direction_only(self):
        partition = Partition(src=(0, 1), dst=(2,))
        assert partition.blocks(0, 2, elapsed_ms=0.0)
        assert partition.blocks(1, 2, elapsed_ms=0.0)
        assert not partition.blocks(2, 0, elapsed_ms=0.0)

    def test_partition_heals(self):
        partition = Partition(src=(0,), dst=(1,), heal_ms=100.0)
        assert partition.blocks(0, 1, elapsed_ms=99.9)
        assert not partition.blocks(0, 1, elapsed_ms=100.0)

    def test_partitioned_link_drops_every_frame_until_heal(self):
        plan = ChaosPlan(partitions=(Partition((0,), (1,), heal_ms=50.0),))
        assert all(fate.drop for fate in fates_for(plan, 0, 1, 16, elapsed_ms=0.0))
        assert all(
            fate.clean for fate in fates_for(plan, 0, 1, 16, elapsed_ms=60.0)
        )

    def test_unrelated_link_unaffected(self):
        plan = ChaosPlan(partitions=(Partition((0,), (1,)),))
        assert all(fate.clean for fate in fates_for(plan, 2, 3, 16))


class TestSerialization:
    @given(plans)
    @settings(max_examples=50)
    def test_obj_round_trip(self, plan):
        assert ChaosPlan.from_obj(plan.to_obj()) == plan

    def test_round_trip_with_partitions(self):
        plan = ChaosPlan(
            seed=3,
            drop=0.25,
            partitions=(
                Partition((0, 1), (2, 3), heal_ms=250.0),
                Partition((4,), (0,)),
            ),
        )
        assert ChaosPlan.from_obj(json.loads(plan.to_json())) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan keys"):
            ChaosPlan.from_obj({"seed": 0, "jitter": 1.0})

    def test_load_plan_file(self, tmp_path):
        plan = ChaosPlan(seed=9, drop=0.1, delay=0.2, delay_ms=(2.0, 8.0))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert load_plan(str(path)) == plan

    def test_load_plan_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError, match="must be a JSON object"):
            load_plan(str(path))
