"""Driver integration tests: real processes, real sockets, checked runs.

Each test here spawns actual OS processes exchanging frames over
localhost TCP, so the suite keeps ``n`` small and the run count low —
the goal is one genuine end-to-end exercise per behavior (clean, chaos,
every task, tracing), with the cheap logic (factory resolution, result
assembly) covered by unit tests below them.
"""

from __future__ import annotations

import pytest

from repro.check.invariants import PENDING_TIME
from repro.core.protocol import Outcome
from repro.net.chaos import ChaosPlan, Partition
from repro.net.driver import (
    NetError,
    NetRun,
    _assemble_result,
    check_net_run,
    resolve_factory,
    run_net,
)
from repro.obs.jsonl import read_trace


class TestResolveFactory:
    def test_task_defaults(self):
        assert resolve_factory("elect", None)[0] == "poison_pill"
        assert resolve_factory("sift", None)[0] == "heterogeneous"
        assert resolve_factory("rename", None)[0] == "paper"

    def test_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            resolve_factory("gossip", None)

    def test_unknown_algorithm_lists_valid_ones(self):
        with pytest.raises(ValueError, match="tournament"):
            resolve_factory("elect", "bully")

    def test_factories_build_generators(self):
        for task, algorithm in (
            ("elect", "tournament"),
            ("sift", "poison_pill"),
            ("rename", "linear"),
        ):
            _, factory = resolve_factory(task, algorithm)
            assert callable(factory)


class TestElectOverSockets:
    def test_clean_run_elects_unique_winner(self):
        run = run_net(task="elect", n=4, seed=0)
        assert run.ok, run.violations
        winners = [
            pid for pid, decision in run.result.decisions.items()
            if decision.result is Outcome.WIN
        ]
        assert len(winners) == 1
        assert run.winner == winners[0]
        assert len(run.result.decisions) == 4
        assert not run.result.undecided
        assert run.frames_sent > 0

    def test_chaotic_run_still_elects(self):
        plan = ChaosPlan(seed=1, drop=0.15, delay=0.4, duplicate=0.1)
        run = run_net(task="elect", n=4, seed=0, plan=plan)
        assert run.ok, run.violations
        assert run.winner is not None
        assert run.frames_dropped > 0

    def test_decision_times_are_linearizable_inputs(self):
        """Rebased times: zero-anchored, start < decide, below PENDING."""
        run = run_net(task="elect", n=4, seed=2)
        starts = [d.start_time for d in run.result.decisions.values()]
        assert min(starts) == 0
        for decision in run.result.decisions.values():
            assert 0 <= decision.start_time < decision.decide_time < PENDING_TIME


class TestOtherTasksOverSockets:
    def test_sift(self):
        run = run_net(task="sift", n=4, seed=3)
        assert run.ok, run.violations
        assert 1 <= run.survivors <= 4

    def test_rename(self):
        run = run_net(task="rename", n=4, seed=1)
        assert run.ok, run.violations
        names = run.names
        assert len(names) == 4
        assert len(set(names.values())) == 4  # strong renaming: unique


class TestChaosAtTheTransport:
    def test_healing_partition_delays_but_does_not_kill(self):
        plan = ChaosPlan(
            partitions=(Partition(src=(0,), dst=(1, 2, 3), heal_ms=300.0),)
        )
        run = run_net(task="elect", n=4, seed=0, plan=plan)
        assert run.ok, run.violations
        assert run.winner is not None

    def test_unreachable_quorum_times_out(self):
        """Cutting every link starves all quorums: the driver deadline fires."""
        everyone = (0, 1, 2)
        plan = ChaosPlan(partitions=(Partition(src=everyone, dst=everyone),))
        with pytest.raises(NetError, match="timed out"):
            run_net(task="elect", n=3, seed=0, plan=plan, deadline_s=4.0)


class TestTracing:
    def test_merged_trace_is_time_sorted_and_complete(self, tmp_path):
        out = tmp_path / "net.jsonl"
        run = run_net(task="elect", n=4, seed=0, trace_path=str(out))
        assert run.ok, run.violations
        meta, objects = read_trace(str(out))
        assert meta["backend"] == "net"
        assert meta["chaos"]["drop"] == 0.0
        assert meta["n"] == 4
        times = [obj["t"] for obj in objects]
        assert times == sorted(times)
        etypes = {obj["e"] for obj in objects}
        assert "proc.start" in etypes
        assert "proc.decide" in etypes
        assert "comm.call" in etypes
        assert "msg.send" in etypes
        assert {obj["p"] for obj in objects} == {0, 1, 2, 3}

    def test_chaos_events_recorded(self, tmp_path):
        out = tmp_path / "net.jsonl"
        plan = ChaosPlan(seed=5, drop=0.3)
        run = run_net(task="elect", n=4, seed=0, plan=plan, trace_path=str(out))
        assert run.ok, run.violations
        _, objects = read_trace(str(out))
        assert any(obj["e"] == "net.drop" for obj in objects)


class TestResultAssembly:
    """Unit tests against a hand-built control plane — no sockets."""

    class _Plane:
        def __init__(self):
            self.participants = frozenset({0, 1})
            self.decisions = {
                0: {"outcome": Outcome.WIN, "start_ns": 1000, "decide_ns": 5000,
                    "comm_calls": 7},
                1: {"outcome": Outcome.LOSE, "start_ns": 1200, "decide_ns": 4000,
                    "comm_calls": 6},
            }
            self.finals = {
                0: {"frames_sent": 10, "frames_received": 9,
                    "frames_by_kind": {"propagate": 4, "ack": 6}},
                1: {"frames_sent": 8, "frames_received": 11,
                    "frames_by_kind": {"collect": 3, "collect_reply": 5}},
            }

    def test_times_rebased_and_metrics_folded(self):
        result = _assemble_result(2, self._Plane())
        assert result.decisions[0].start_time == 0
        assert result.decisions[0].decide_time == 4000
        assert result.decisions[1].start_time == 200
        assert result.metrics.comm_calls_by[0] == 7
        assert result.metrics.messages_total == 18
        assert result.metrics.deliveries == 20
        assert not result.undecided

    def test_missing_decision_becomes_undecided(self):
        plane = self._Plane()
        del plane.decisions[1]
        result = _assemble_result(2, plane)
        assert result.undecided == frozenset({1})

    def test_check_net_run_flags_two_winners(self):
        plane = self._Plane()
        plane.decisions[1]["outcome"] = Outcome.WIN
        result = _assemble_result(2, plane)
        run = NetRun(
            n=2, k=2, task="elect", algorithm="poison_pill", seed=0,
            plan=ChaosPlan(), result=result,
        )
        violations = check_net_run(run)
        assert any(name == "unique_winner" for name, _ in violations)
        assert run.winner is None  # two winners -> no unique winner
