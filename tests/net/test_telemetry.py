"""Net telemetry tests: node snapshots, the cluster stream, zero-cost off.

The node-side registry only exists when a telemetry interval is set (the
hot paths must pay nothing when ``--telemetry`` is absent), and one real
socket run verifies the whole chain: per-node stats frames, the driver's
merged cluster snapshots, the end marker, and frame counts that agree
with the run's own transport totals.
"""

from __future__ import annotations

from repro.net.chaos import ChaosPlan
from repro.net.driver import run_net
from repro.net.node import NodeRuntime
from repro.obs.live import read_snapshots


def _bare_node(telemetry_interval_s):
    """A NodeRuntime constructed but never run (unit-level access)."""
    return NodeRuntime(
        pid=0, n=2, seed=1, driver_port=1, factory=None,
        plan=ChaosPlan(seed=0), rpc_timeout_s=1.0,
        telemetry_interval_s=telemetry_interval_s,
    )


class TestNodeSide:
    def test_registry_absent_when_telemetry_off(self):
        # Zero-cost-off discipline: no interval, no registry, so the RPC
        # hot path's guard short-circuits on an attribute that is None.
        assert _bare_node(None)._telemetry is None
        assert _bare_node(0.5)._telemetry is not None

    def test_snapshot_folds_transport_counters(self):
        node = _bare_node(0.5)
        node.stats.frames_sent = 7
        node.stats.frames_dropped = 2
        node.stats.rpc_retries = 3
        node.stats.frames_by_kind["collect"] = 7
        snapshot = node.telemetry_snapshot()
        counters = snapshot["counters"]
        assert counters["net.frames_sent"] == 7
        assert counters["net.frames_dropped"] == 2
        assert counters["net.rpc_retries"] == 3
        assert counters["net.frames.collect"] == 7

    def test_snapshot_is_idempotent(self):
        # Counters are set (not incremented) from NodeStats, so repeated
        # periodic reports never double-count.
        node = _bare_node(0.5)
        node.stats.frames_sent = 7
        first = node.telemetry_snapshot()
        second = node.telemetry_snapshot()
        assert first == second


class TestClusterStream:
    def test_net_run_writes_complete_merged_stream(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        run = run_net(
            task="elect", n=4, seed=0,
            telemetry_path=path, telemetry_interval_s=0.2,
        )
        assert run.ok, run.violations
        assert run.telemetry_path == path
        meta, snapshots, end = read_snapshots(path)
        assert meta["backend"] == "net" and meta["n"] == 4
        # Every node reports at least once (a final stats frame is sent
        # at shutdown even when the run beats the interval), and the
        # driver appends one merged cluster snapshot before the end
        # marker.
        assert len(snapshots) >= 2
        assert end is not None and end["snapshots"] == len(snapshots)
        merged = snapshots[-1]["metrics"]
        assert merged["counters"]["net.frames_sent"] == run.frames_sent
        assert "net.rpc_latency_ms" in merged["histograms"]
        assert merged["histograms"]["net.rpc_latency_ms"]["count"] > 0

    def test_no_stream_written_when_telemetry_off(self, tmp_path):
        run = run_net(task="elect", n=4, seed=0)
        assert run.telemetry_path is None
        assert list(tmp_path.iterdir()) == []
