"""Tests for the socket backend: wire codec, chaos plans, and the driver."""
