"""Wire-codec tests: lossless round trips and hostile-input rejection.

The tagged value codec must round-trip **every** value the protocols
store in registers — the hypothesis strategies below generate the full
recursive value domain (primitives, protocol enums, tuples, lists,
sets, frozensets, maps with non-string keys) and assert
``decode(encode(v)) == v`` with types preserved.  The frame layer must
reject anything malformed — truncation, garbage, bad magic, wrong
version, oversized lengths — with :class:`WireError`, never a crash or
a silently wrong frame.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import HetStatus, Outcome, PillState
from repro.net.wire import (
    FRAME_TYPES,
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    Frame,
    FrameDecoder,
    FrameType,
    WireError,
    decode_entries,
    decode_value,
    encode_entries,
    encode_value,
    pack_frame,
)

# ---------------------------------------------------------------------------
# Strategies over the protocol value domain
# ---------------------------------------------------------------------------

primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=20),
    st.sampled_from(list(Outcome)),
    st.sampled_from(list(PillState)),
)

hashable_primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=10),
)


def _extend(children):
    hashables = st.one_of(
        hashable_primitives,
        st.tuples(hashable_primitives, hashable_primitives),
        st.frozensets(hashable_primitives, max_size=3),
    )
    return st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.sets(hashable_primitives, max_size=4),
        st.frozensets(hashable_primitives, max_size=4),
        st.dictionaries(hashables, children, max_size=4),
        st.builds(
            HetStatus,
            st.sampled_from(["low", "high", "commit"]),
            # members is a pidset bitmask int (see repro.sim.pidset).
            st.integers(min_value=0, max_value=2**64 - 1),
        ),
    )


values = st.recursive(primitives, _extend, max_leaves=12)

entry_maps = st.dictionaries(
    st.one_of(
        st.integers(min_value=0, max_value=255),
        st.text(max_size=8),
        st.tuples(st.integers(min_value=0, max_value=15), st.text(max_size=4)),
    ),
    st.tuples(
        st.integers(min_value=0, max_value=2**31),
        values,
        st.sampled_from(["version", "or", "max"]),
    ),
    max_size=6,
)

field_maps = st.dictionaries(
    st.text(min_size=1, max_size=12), values, max_size=5
)

frames = st.builds(
    Frame,
    st.sampled_from(sorted(FRAME_TYPES)),
    st.integers(min_value=-1, max_value=1023),
    field_maps,
)


class TestValueCodec:
    @given(values)
    @settings(max_examples=200)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    def test_round_trip_preserves_type(self, value):
        decoded = decode_value(encode_value(value))
        assert type(decoded) is type(value)

    @given(st.sets(st.integers(), max_size=6))
    def test_set_encoding_is_canonical(self, members):
        """Identical sets built in any order serialize identically."""
        forward = encode_value(set(sorted(members)))
        backward = encode_value(set(sorted(members, reverse=True)))
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )

    @given(st.dictionaries(st.integers(), st.integers(), max_size=6))
    def test_map_encoding_is_canonical(self, mapping):
        forward = encode_value(dict(sorted(mapping.items())))
        backward = encode_value(dict(sorted(mapping.items(), reverse=True)))
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )

    def test_unencodable_value_rejected_at_sender(self):
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_value(object())

    def test_bare_array_rejected_at_receiver(self):
        with pytest.raises(WireError, match="bare JSON array"):
            decode_value([1, 2, 3])

    def test_untagged_object_rejected(self):
        with pytest.raises(WireError, match="untagged object"):
            decode_value({"v": 1})

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError, match="unknown value tag"):
            decode_value({"__t": "zebra", "v": 1})

    def test_protocol_enums_round_trip_by_identity(self):
        for member in (*Outcome, *PillState):
            assert decode_value(encode_value(member)) is member


class TestEntryCodec:
    @given(entry_maps)
    @settings(max_examples=100)
    def test_entries_round_trip(self, entries):
        assert decode_entries(encode_entries(entries)) == entries

    def test_malformed_entry_rejected(self):
        bad = encode_value({"x": (1, 2)})  # two-tuple, not a triple
        with pytest.raises(WireError, match="malformed register entry"):
            decode_entries(bad)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(WireError, match="not a mapping"):
            decode_entries(encode_value((1, 2, 3)))


class TestFrameRoundTrip:
    @given(frames)
    @settings(max_examples=200)
    def test_pack_then_decode(self, frame):
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(pack_frame(frame))
        assert decoded.ftype == frame.ftype
        assert decoded.sender == frame.sender
        assert dict(decoded.fields) == dict(frame.fields)
        decoder.finish()  # buffer must end exactly on the boundary

    @given(st.lists(frames, min_size=1, max_size=5), st.randoms())
    @settings(max_examples=50)
    def test_arbitrary_chunking(self, frame_list, rng):
        """TCP may deliver any byte split; the decoder must not care."""
        stream = b"".join(pack_frame(frame) for frame in frame_list)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(stream):
            cut = rng.randint(position + 1, len(stream))
            out.extend(decoder.feed(stream[position:cut]))
            position = cut
        decoder.finish()
        assert [frame.ftype for frame in out] == [
            frame.ftype for frame in frame_list
        ]
        assert [frame.sender for frame in out] == [
            frame.sender for frame in frame_list
        ]

    @given(frames)
    def test_pack_is_deterministic(self, frame):
        assert pack_frame(frame) == pack_frame(frame)

    def test_unknown_frame_type_rejected_at_pack(self):
        with pytest.raises(WireError, match="unknown frame type"):
            pack_frame(Frame("gossip", 0, {}))


class TestHostileInput:
    def test_bad_magic(self):
        with pytest.raises(WireError, match="bad frame magic"):
            FrameDecoder().feed(b"XX" + bytes(20))

    def test_wrong_version(self):
        raw = bytearray(pack_frame(Frame(FrameType.ACK, 0, {})))
        raw[2] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version"):
            FrameDecoder().feed(bytes(raw))

    def test_oversized_length_rejected_before_buffering(self):
        header = MAGIC + bytes([WIRE_VERSION]) + (MAX_FRAME_BYTES + 1).to_bytes(
            4, "big"
        )
        with pytest.raises(WireError, match="exceeds"):
            FrameDecoder().feed(header)

    def test_truncated_stream_detected_at_finish(self):
        raw = pack_frame(Frame(FrameType.HELLO, 3, {"port": 1}))
        decoder = FrameDecoder()
        assert decoder.feed(raw[:-1]) == []
        assert decoder.pending_bytes == len(raw) - 1
        with pytest.raises(WireError, match="truncated mid-frame"):
            decoder.finish()

    def test_garbage_body_rejected(self):
        body = b"\xff\xfenot json"
        raw = MAGIC + bytes([WIRE_VERSION]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(WireError, match="undecodable frame body"):
            FrameDecoder().feed(raw)

    @given(st.binary(min_size=HEADER_BYTES, max_size=64))
    @settings(max_examples=100)
    def test_random_bytes_never_crash(self, data):
        """Arbitrary garbage either yields frames or raises WireError."""
        decoder = FrameDecoder()
        try:
            decoder.feed(data)
        except WireError:
            pass

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2]).encode()
        raw = MAGIC + bytes([WIRE_VERSION]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(WireError, match="not an object"):
            FrameDecoder().feed(raw)

    def test_bool_sender_rejected(self):
        body = json.dumps({"t": "ack", "s": True, "f": {}}).encode()
        raw = MAGIC + bytes([WIRE_VERSION]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(WireError, match="sender is not an int"):
            FrameDecoder().feed(raw)

    def test_missing_key_rejected(self):
        body = json.dumps({"t": "ack", "s": 0}).encode()
        raw = MAGIC + bytes([WIRE_VERSION]) + len(body).to_bytes(4, "big") + body
        with pytest.raises(WireError, match="missing key"):
            FrameDecoder().feed(raw)
