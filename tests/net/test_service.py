"""Election-service tests: lease edge cases, fencing, failover, invariants.

The service generalizes the paper's per-name election construction
(Fig. 3 / Theorem 4.2) into a long-lived keyed namespace, so the tests
here mirror the classic lease-safety traps: renewal racing expiry,
stale-epoch writes after a holder was deposed, release by a non-holder,
and crash-triggered re-election — each asserted against the serve-task
invariants of :mod:`repro.check.invariants` (at most one holder per
``(key, epoch)``, strictly increasing epochs, non-overlapping holds).
Network-level tests run a real in-process asyncio server over localhost
TCP; the invariant checks also get pure-synthetic histories so a
violation message is tested without needing to force a live one.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.check.invariants import (
    INVARIANTS,
    SERVICE_SPEC,
    evaluate_service_run,
    invariants_for,
)
from repro.net.chaos import ChaosPlan
from repro.net.client import Lease, ServiceClient
from repro.net.load import run_load
from repro.net.service import (
    ElectionService,
    GrantRecord,
    ServiceError,
    ServiceRun,
)

#: Chaos plan used by the degraded-network tests: lossy and slow but
#: seeded, so every failure is reproducible.
LOSSY = ChaosPlan(seed=11, drop=0.15, delay=0.3, delay_ms=(1.0, 10.0))


def run_scenario(body, **service_kwargs):
    """Start a service, run ``body(service, host, port)``, return its result.

    The service is always stopped, and the grant history is checked
    against every serve-task invariant afterwards — every scenario in
    this file doubles as an invariant exercise.
    """

    async def _main():
        service = ElectionService(**service_kwargs)
        host, port = await service.start()
        try:
            result = await asyncio.wait_for(body(service, host, port), 60.0)
        finally:
            run = ServiceRun.of(service)
            await service.stop()
        assert evaluate_service_run(run) == []
        return result, run

    return asyncio.run(_main())


class TestLeaseLifecycle:
    def test_acquire_renew_release(self):
        async def body(service, host, port):
            client = await ServiceClient.connect(host, port, client_id="a")
            lease = await client.acquire("k", ttl_ms=5000)
            assert isinstance(lease, Lease)
            assert lease.epoch == 1
            renewed = await client.renew(lease)
            assert renewed is not None and renewed.epoch == 1
            assert await client.release(renewed)
            # Released key is immediately re-acquirable at the next epoch.
            again = await client.acquire("k")
            assert again.epoch == 2
            await client.close()

        _, run = run_scenario(body)
        assert [record.epoch for record in run.history] == [1, 2]
        assert run.history[0].reason == "release"

    def test_busy_key_and_waiting_acquire(self):
        async def body(service, host, port):
            a = await ServiceClient.connect(host, port, client_id="a")
            b = await ServiceClient.connect(host, port, client_id="b")
            lease = await a.acquire("k", ttl_ms=5000)
            # Immediate acquire on a held key loses (the service's LOSE).
            assert await b.acquire("k") is None
            waiter = asyncio.create_task(b.acquire("k", wait_ms=5000))
            await asyncio.sleep(0.05)
            assert await a.release(lease)
            won = await waiter
            assert won is not None and won.epoch == 2
            await a.close()
            await b.close()

        run_scenario(body)

    def test_independent_keys_do_not_interfere(self):
        async def body(service, host, port):
            client = await ServiceClient.connect(host, port, client_id="a")
            other = await ServiceClient.connect(host, port, client_id="b")
            leases = [
                await client.acquire(f"shard/{i}", ttl_ms=5000)
                for i in range(8)
            ]
            assert all(lease.epoch == 1 for lease in leases)
            # Re-acquiring a key you already hold is idempotent.
            again = await client.acquire("shard/5")
            assert again is not None and again.epoch == 1
            assert await client.release(leases[3])
            # Releasing one key frees it for others; the rest stay held.
            assert await other.acquire("shard/3") is not None
            assert await other.acquire("shard/5") is None
            await client.close()
            await other.close()

        _, run = run_scenario(body)
        assert len({record.key for record in run.history}) == 8


class TestLeaseEdgeCases:
    def test_renewal_racing_expiry(self):
        """A renewal inside the grace window wins the race with expiry."""

        async def body(service, host, port):
            client = await ServiceClient.connect(host, port, client_id="a")
            lease = await client.acquire("k", ttl_ms=250)
            # Renew from inside the expiring grace window, repeatedly:
            # the lease must survive well past several base TTLs.
            for _ in range(6):
                await asyncio.sleep(0.12)
                lease = await client.renew(lease)
                assert lease is not None, "renewal lost the race with expiry"
            assert lease.epoch == 1
            await client.close()

        _, run = run_scenario(body)
        assert len(run.history) == 1

    def test_expiry_without_renewal_reelects(self):
        async def body(service, host, port):
            a = await ServiceClient.connect(host, port, client_id="a")
            b = await ServiceClient.connect(host, port, client_id="b")
            stale = await a.acquire("k", ttl_ms=150)
            lease = await b.acquire("k", wait_ms=5000)
            assert lease is not None and lease.epoch == 2
            # The deposed holder's old token is now fenced everywhere.
            assert await a.renew(stale) is None
            assert await a.release(stale) is False
            await a.close()
            await b.close()

        _, run = run_scenario(body)
        assert run.history[0].reason == "expire"
        assert run.fenced and all(
            record.request_epoch == 1 and record.current_epoch == 2
            for record in run.fenced
        )

    def test_stale_epoch_fenced_after_partition_heals(self):
        """A holder cut off by a partition comes back to a fenced world.

        The classic split-brain probe: the old primary's connection
        drops (its side of the partition), a new primary is elected at
        epoch+1, then the old one reconnects and replays its stale
        token.  Every stale write must be rejected at the wire layer.
        """

        async def body(service, host, port):
            old = await ServiceClient.connect(host, port, client_id="old")
            new = await ServiceClient.connect(host, port, client_id="new")
            stale = await old.acquire("primary", ttl_ms=5000)
            assert stale.epoch == 1
            # Partition: the old primary drops off the network.
            old.abort()
            lease = await new.acquire("primary", wait_ms=5000)
            assert lease.epoch == 2
            # Heal: the old primary reconnects and replays its token.
            healed = await ServiceClient.connect(host, port, client_id="old")
            assert await healed.renew(stale) is None
            assert await healed.release(stale) is False
            # The new primary's token still works.
            assert await new.renew(lease) is not None
            await healed.close()
            await new.close()

        _, run = run_scenario(body)
        assert [record.epoch for record in run.history] == [1, 2]
        assert run.history[0].reason == "crash"
        verbs = {record.verb for record in run.fenced}
        assert verbs == {"renew", "release"}

    def test_release_by_non_holder_rejected(self):
        async def body(service, host, port):
            a = await ServiceClient.connect(host, port, client_id="a")
            b = await ServiceClient.connect(host, port, client_id="b")
            lease = await a.acquire("k", ttl_ms=5000)
            # b forges a token for the right epoch but the wrong holder.
            forged = Lease(key="k", epoch=lease.epoch, ttl_ms=5000.0,
                           deadline=lease.deadline)
            assert await b.release(forged) is False
            assert await b.renew(forged) is None
            # a still holds the lease.
            assert await a.renew(lease) is not None
            await a.close()
            await b.close()

        _, run = run_scenario(body)
        assert len(run.history) == 1
        assert len(run.fenced) == 2

    def test_crash_failover_latency_bounded_under_chaos(self):
        """Crash-to-new-leader stays bounded under the lossy plan."""

        async def body(service, host, port):
            a = await ServiceClient.connect(
                host, port, client_id="a", pid=1, plan=LOSSY
            )
            b = await ServiceClient.connect(
                host, port, client_id="b", pid=2, plan=LOSSY
            )
            assert await a.acquire("k", ttl_ms=30_000, wait_ms=10_000)
            waiter = asyncio.create_task(b.acquire("k", wait_ms=20_000))
            await asyncio.sleep(0.1)
            a.abort()
            lease = await waiter
            assert lease is not None and lease.epoch == 2
            await b.close()
            return service.snapshot()

        snapshot, run = run_scenario(body, plan=LOSSY, seed=5)
        hist = snapshot["histograms"]["svc.crash_failover_ms"]
        assert hist["count"] == 1
        # Bounded: retries + chaos delays, but nowhere near the waiter's
        # 20s patience — failover is driven by the crash, not the TTL.
        assert hist["max"] < 5000.0
        assert run.history[0].reason == "crash"


class TestWatch:
    def test_watch_sees_grant_and_release(self):
        async def body(service, host, port):
            observer = await ServiceClient.connect(host, port, client_id="o")
            holder = await ServiceClient.connect(host, port, client_id="h")
            events = []

            async def observe():
                async for event in observer.watch("k"):
                    events.append(event)
                    if len(events) >= 3:
                        return

            task = asyncio.create_task(observe())
            await asyncio.sleep(0.05)
            lease = await holder.acquire("k", ttl_ms=5000)
            await holder.release(lease)
            await asyncio.wait_for(task, 10.0)
            # Initial state (free), then the grant, then the release.
            assert events[0].event == "free"
            assert events[1].event == "granted"
            assert events[1].holder == "h" and events[1].epoch == 1
            assert events[2].event == "released"
            await observer.close()
            await holder.close()

        run_scenario(body)


class TestAtMostOnce:
    def test_duplicated_frames_never_double_grant(self):
        """Aggressive duplication cannot mint two grants for one epoch."""
        noisy = ChaosPlan(seed=3, duplicate=0.9)

        async def body(service, host, port):
            client = await ServiceClient.connect(
                host, port, client_id="a", plan=noisy
            )
            for round_index in range(5):
                lease = await client.acquire("k", ttl_ms=5000)
                assert lease is not None
                assert lease.epoch == round_index + 1
                assert await client.release(lease)
            await client.close()

        _, run = run_scenario(body, plan=noisy)
        assert [record.epoch for record in run.history] == [1, 2, 3, 4, 5]


class TestSimElection:
    def test_sim_mode_runs_real_election_for_contested_handoff(self):
        async def body(service, host, port):
            clients = [
                await ServiceClient.connect(host, port, client_id=f"c{i}")
                for i in range(4)
            ]
            lease = await clients[0].acquire("k", ttl_ms=5000)
            waiters = [
                asyncio.create_task(c.acquire("k", wait_ms=20_000))
                for c in clients[1:]
            ]
            await asyncio.sleep(0.1)
            await clients[0].release(lease)
            # One waiter wins epoch 2 promptly; the rest keep waiting
            # (the window stays well under the winner's TTL so no
            # expiry-driven second handoff can sneak in).
            done, pending = await asyncio.wait(
                waiters, timeout=2.0, return_when=asyncio.FIRST_COMPLETED
            )
            winners = [t.result() for t in done if t.result() is not None]
            assert len(winners) == 1 and winners[0].epoch == 2
            for task in pending:
                task.cancel()
            for c in clients:
                await c.close()

        _, run = run_scenario(body, election="sim", seed=9)
        # At least the two observed grants; closing sessions may hand
        # leftover server-side waiters further epochs (reason "crash"),
        # which the invariant sweep in run_scenario already vets.
        assert [record.epoch for record in run.history[:2]] == [1, 2]


class TestServiceConfig:
    def test_bad_config_rejected(self):
        with pytest.raises(ServiceError, match="ttl"):
            ElectionService(default_ttl_ms=0)
        with pytest.raises(ServiceError, match="grace"):
            ElectionService(grace_fraction=1.5)
        with pytest.raises(ServiceError, match="election"):
            ElectionService(election="coin")

    def test_load_bad_params_rejected(self):
        with pytest.raises(ServiceError, match="keys"):
            run_load(keys=0)
        with pytest.raises(ServiceError, match="sessions"):
            run_load(keys=1, sessions=1, crash_sessions=1)


class TestServeInvariants:
    def _history(self, *records):
        run = ServiceRun(n=0, k=0, history=list(records), fenced=[])
        return evaluate_service_run(run)

    def test_registry_wiring(self):
        names = {inv.name for inv in invariants_for("serve")}
        assert names == {
            "lease_unique_holder", "lease_epoch_monotonic", "lease_no_overlap",
        }
        assert SERVICE_SPEC.task == "serve"
        # The service spec must not leak into the runnable CLI protocols.
        from repro.check.invariants import PROTOCOLS

        assert SERVICE_SPEC.name not in PROTOCOLS
        assert all(inv.scope == "run" for inv in invariants_for("serve"))
        assert "lease_unique_holder" in INVARIANTS

    def test_clean_history_passes(self):
        violations = self._history(
            GrantRecord("k", 1, "a", 1, 100, ended_ns=200, reason="release"),
            GrantRecord("k", 2, "b", 2, 250, ended_ns=300, reason="expire"),
            GrantRecord("k", 3, "c", 3, 350),
        )
        assert violations == []

    def test_two_holders_one_epoch_flagged(self):
        violations = self._history(
            GrantRecord("k", 1, "a", 1, 100, ended_ns=200, reason="release"),
            GrantRecord("k", 1, "b", 2, 250),
        )
        assert [name for name, _ in violations] == [
            "lease_unique_holder", "lease_epoch_monotonic",
        ]

    def test_epoch_regression_flagged(self):
        violations = self._history(
            GrantRecord("k", 2, "a", 1, 100, ended_ns=200, reason="release"),
            GrantRecord("k", 1, "b", 2, 250),
        )
        assert ("lease_epoch_monotonic", violations[0][1]) == violations[0]

    def test_overlapping_grants_flagged(self):
        violations = self._history(
            GrantRecord("k", 1, "a", 1, 100, ended_ns=500, reason="release"),
            GrantRecord("k", 2, "b", 2, 300, ended_ns=600, reason="release"),
        )
        assert [name for name, _ in violations] == ["lease_no_overlap"]

    def test_open_grant_before_successor_flagged(self):
        violations = self._history(
            GrantRecord("k", 1, "a", 1, 100),
            GrantRecord("k", 2, "b", 2, 300),
        )
        assert [name for name, _ in violations] == ["lease_no_overlap"]


class TestLoadDriver:
    def test_small_load_run_clean(self):
        report = run_load(
            keys=12, contenders=2, rounds=1, sessions=4,
            hold_ms=0.5, crash_sessions=1, seed=2,
        )
        assert report.ok
        assert report.grants >= 12
        hist = report.snapshot["histograms"]["load.acquire_ms"]
        assert hist["count"] >= 12
        assert {"p50", "p90", "p99"} <= set(hist)
        assert report.snapshot["histograms"]["svc.crash_failover_ms"]["count"] > 0
        assert "invariants:    all hold" in report.describe()

    def test_small_load_run_under_chaos(self):
        plan = ChaosPlan(seed=4, drop=0.1, delay=0.2, delay_ms=(1.0, 8.0))
        report = run_load(
            keys=8, contenders=2, rounds=1, sessions=4,
            hold_ms=0.5, crash_sessions=1, seed=3, plan=plan,
        )
        assert report.ok
        assert report.grants >= 8
