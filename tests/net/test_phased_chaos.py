"""Tests for rolling (phased) chaos plans and the profile registry.

The phase-boundary cases the soak harness leans on are pinned here:
``heal_ms`` expiring mid-phase while frames are still being delivered,
and a partition healing while a client is mid-retry-backoff against the
service.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.net.chaos import (
    CHAOS_PROFILES,
    CLEAN_FATE,
    ChaosPhase,
    ChaosPlan,
    Partition,
    PhasedChaosPlan,
    make_phased_plan,
)
from repro.net.client import ServiceClient
from repro.net.service import SERVICE_PID, ElectionService


def two_phase_plan(cycle=True):
    """calm 100ms, then a 200ms lossy phase (deterministic, seed 7)."""
    return PhasedChaosPlan(seed=7, cycle=cycle, phases=(
        ChaosPhase("calm", 100.0, ChaosPlan(seed=1)),
        ChaosPhase("lossy", 200.0, ChaosPlan(seed=2, drop=0.5)),
    ))


class TestPhaseResolution:
    def test_resolve_walks_phases_and_reports_offset(self):
        plan = two_phase_plan()
        index, phase, into = plan.resolve(0.0)
        assert (index, phase.name, into) == (0, "calm", 0.0)
        index, phase, into = plan.resolve(150.0)
        assert (index, phase.name, into) == (1, "lossy", 50.0)

    def test_exact_boundary_belongs_to_the_next_phase(self):
        plan = two_phase_plan()
        index, phase, into = plan.resolve(100.0)
        assert (index, phase.name, into) == (1, "lossy", 0.0)

    def test_cycling_wraps_modulo_total(self):
        plan = two_phase_plan()
        index, phase, into = plan.resolve(300.0 + 120.0)
        assert (index, phase.name, into) == (1, "lossy", 20.0)

    def test_non_cycling_schedule_exhausts_to_clean(self):
        plan = two_phase_plan(cycle=False)
        assert plan.resolve(300.0) is None
        assert plan.plan_at(300.0) is not None
        assert not plan.plan_at(300.0).active

    def test_empty_plan_resolves_to_none(self):
        plan = PhasedChaosPlan(seed=0, phases=())
        assert plan.resolve(0.0) is None
        assert not plan.active

    def test_phase_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="duration_ms"):
            ChaosPhase("bad", 0.0, ChaosPlan())

    def test_serialization_round_trip(self):
        plan = make_phased_plan("rolling", seed=3, n=5)
        rebuilt = PhasedChaosPlan.from_obj(plan.to_obj())
        assert rebuilt == plan
        assert rebuilt.to_obj() == plan.to_obj()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown phased plan keys"):
            PhasedChaosPlan.from_obj({"seed": 0, "phasez": []})


class TestProfileRegistry:
    def test_profiles_are_pure_functions_of_seed_and_n(self):
        for name in CHAOS_PROFILES:
            a = make_phased_plan(name, seed=11, n=7)
            b = make_phased_plan(name, seed=11, n=7)
            assert a.to_obj() == b.to_obj(), name
            assert a.phases, name

    def test_different_seeds_differ(self):
        a = make_phased_plan("rolling", seed=0, n=5)
        b = make_phased_plan("rolling", seed=1, n=5)
        assert a.to_obj() != b.to_obj()

    def test_unknown_profile_names_the_known_ones(self):
        with pytest.raises(ValueError, match="gentle"):
            make_phased_plan("hurricane", seed=0, n=5)

    def test_rolling_partition_heals_mid_phase(self):
        # The rolling profile's design invariant: the cut's heal_ms is
        # strictly inside the partition phase, so every rotation crosses
        # the heal boundary with traffic in flight.
        plan = make_phased_plan("rolling", seed=0, n=5)
        partition_phase = next(
            phase for phase in plan.phases if phase.name == "partition"
        )
        assert partition_phase.plan.partitions
        for partition in partition_phase.plan.partitions:
            assert partition.heal_ms is not None
            assert partition.heal_ms < partition_phase.duration_ms


class TestHealMidDelivery:
    def partition_plan(self, heal_ms):
        """One 1000ms phase: a pure src->dst cut, no other faults."""
        return PhasedChaosPlan(seed=0, phases=(
            ChaosPhase("cut", 1000.0, ChaosPlan(seed=5, partitions=(
                Partition(src=(0,), dst=(1,), heal_ms=heal_ms),
            ))),
        ))

    def test_heal_ms_expires_mid_phase_while_frames_flow(self):
        # Frames delivered continuously across the heal boundary: every
        # fate before heal_ms is a drop, every fate at/after it is clean.
        plan = self.partition_plan(heal_ms=400.0)
        link = plan.link(0, 1)
        before = [link.next_fate(ms) for ms in (0.0, 100.0, 399.9)]
        after = [link.next_fate(ms) for ms in (400.0, 500.0, 999.0)]
        assert all(fate.drop for fate in before)
        assert all(fate is CLEAN_FATE for fate in after)

    def test_heal_is_gated_by_time_into_the_phase_not_the_soak(self):
        # Second rotation of the cycle: the same cut is back and heals
        # at the same offset into the phase, not at absolute soak time.
        plan = self.partition_plan(heal_ms=400.0)
        link = plan.link(0, 1)
        assert link.next_fate(1000.0 + 100.0).drop       # re-cut
        assert link.next_fate(1000.0 + 450.0) is CLEAN_FATE  # re-healed

    def test_unrelated_links_never_blocked(self):
        plan = self.partition_plan(heal_ms=400.0)
        link = plan.link(1, 0)  # the reverse direction is not cut
        assert link.next_fate(100.0) is CLEAN_FATE


class TestHealDuringRetryBackoff:
    def test_acquire_retries_through_a_healing_partition(self):
        # The service's replies to this client are cut for 300ms; the
        # client's RPC layer must keep retrying through the backoff and
        # land the acquire once the partition heals mid-exchange.
        heal_ms = 300.0
        plan = ChaosPlan(seed=0, partitions=(
            Partition(src=(SERVICE_PID,), dst=(9,), heal_ms=heal_ms),
        ))

        async def main():
            service = ElectionService(seed=0, plan=plan, default_ttl_ms=5000.0)
            host, port = await service.start()
            try:
                client = await ServiceClient.connect(
                    host, port, client_id="blocked", pid=9
                )
                start = time.perf_counter()
                lease = await asyncio.wait_for(
                    client.acquire("k", ttl_ms=5000.0), 30.0
                )
                elapsed_ms = (time.perf_counter() - start) * 1e3
                await client.close()
                return lease, elapsed_ms, service.metrics.snapshot()
            finally:
                await service.stop()

        lease, elapsed_ms, snapshot = asyncio.run(main())
        assert lease is not None and lease.epoch == 1
        # The grant could not have landed before the cut healed.
        assert elapsed_ms >= heal_ms * 0.9
        assert snapshot["counters"].get("svc.frames_dropped", 0) >= 1
