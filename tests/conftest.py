"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.adversary import (
    BubbleAdversary,
    CoinAwareAdversary,
    EagerAdversary,
    ObliviousAdversary,
    QuorumSplitAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SequentialAdversary,
)

#: Names of every registry adversary that is safe for any protocol.
ALL_ADVERSARY_NAMES = (
    "random",
    "eager",
    "round_robin",
    "oblivious",
    "sequential",
    "coin_aware",
    "quorum_split",
    "bubble",
)


def fresh_adversary(name: str, seed: int = 0):
    """A new adversary instance for one run.

    Since the setup() reuse contract (see ``repro.adversary.base``),
    instances reset their per-run state and may drive multiple runs; a
    fresh instance per run is still the simplest way to keep tests
    independent.
    """
    factories = {
        "random": lambda: RandomAdversary(seed=seed),
        "eager": lambda: EagerAdversary(),
        "round_robin": lambda: RoundRobinAdversary(),
        "oblivious": lambda: ObliviousAdversary(seed=seed),
        "sequential": lambda: SequentialAdversary(),
        "coin_aware": lambda: CoinAwareAdversary(),
        "quorum_split": lambda: QuorumSplitAdversary(),
        "bubble": lambda: BubbleAdversary(),
    }
    return factories[name]()


@pytest.fixture(params=ALL_ADVERSARY_NAMES)
def adversary_name(request):
    """Parametrized fixture iterating over every scheduling strategy."""
    return request.param
