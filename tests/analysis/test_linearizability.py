"""Tests for the brute-force register linearizability checker."""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import (
    READ,
    WRITE,
    RegisterOp,
    assert_register_linearizable,
    check_register_linearizable,
)


def op(proc, kind, value, invoked, responded):
    return RegisterOp(proc, kind, value, invoked, responded)


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            op(0, "cas", 1, 0, 1)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            op(0, READ, 1, 5, 2)


class TestAccepts:
    def test_empty_history(self):
        assert check_register_linearizable([]) == []

    def test_sequential_write_read(self):
        history = [op(0, WRITE, "a", 0, 1), op(1, READ, "a", 2, 3)]
        witness = check_register_linearizable(history)
        assert witness is not None
        assert [w.kind for w in witness] == [WRITE, READ]

    def test_read_of_initial_value(self):
        history = [op(0, READ, None, 0, 1)]
        assert check_register_linearizable(history) is not None
        assert check_register_linearizable(
            [op(0, READ, "init", 0, 1)], initial="init"
        ) is not None

    def test_concurrent_read_may_return_either(self):
        # Write overlaps the read: both old and new values are legal.
        write = op(0, WRITE, "new", 0, 10)
        assert check_register_linearizable([write, op(1, READ, "new", 5, 6)])
        assert check_register_linearizable(
            [write, op(1, READ, "old", 5, 6)], initial="old"
        )

    def test_two_writers_and_reader(self):
        history = [
            op(0, WRITE, "a", 0, 4),
            op(1, WRITE, "b", 2, 6),
            op(2, READ, "a", 7, 8),
        ]
        # Legal: linearize b before a.
        assert check_register_linearizable(history) is not None


class TestRejects:
    def test_stale_read_after_write(self):
        history = [
            op(0, WRITE, "new", 0, 1),
            op(1, READ, "old", 2, 3),
        ]
        assert check_register_linearizable(history, initial="old") is None

    def test_new_old_inversion(self):
        """Reader 1 sees the new value; reader 2 starts after reader 1
        finished but sees the old value: the classic inversion the ABD
        write-back prevents."""
        history = [
            op(0, WRITE, "new", 0, 100),
            op(1, READ, "new", 10, 20),
            op(2, READ, "old", 30, 40),
        ]
        assert check_register_linearizable(history, initial="old") is None

    def test_read_of_never_written_value(self):
        history = [op(0, WRITE, "a", 0, 1), op(1, READ, "ghost", 2, 3)]
        assert check_register_linearizable(history) is None

    def test_assert_raises_with_history(self):
        history = [op(0, WRITE, "new", 0, 1), op(1, READ, "old", 2, 3)]
        with pytest.raises(AssertionError, match="not linearizable"):
            assert_register_linearizable(history, initial="old")


class TestWitnessProperties:
    def test_witness_respects_real_time(self):
        history = [
            op(0, WRITE, "a", 0, 1),
            op(1, WRITE, "b", 2, 3),
            op(2, READ, "b", 4, 5),
        ]
        witness = check_register_linearizable(history)
        assert witness is not None
        positions = {w.proc: i for i, w in enumerate(witness)}
        assert positions[0] < positions[1] < positions[2]

    def test_larger_history_terminates(self):
        history = []
        t = 0
        for proc in range(5):
            history.append(op(proc, WRITE, proc, t, t + 10))
            t += 1
        for proc in range(5, 10):
            history.append(op(proc, READ, 4, 20, 25))
        result = check_register_linearizable(history)
        assert result is not None
