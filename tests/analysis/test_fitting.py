"""Tests for growth-model fitting: each fitter must recover its own model."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import (
    best_fit,
    fit_linear,
    fit_log,
    fit_log_squared,
    fit_logstar,
    fit_power,
)
from repro.analysis.theory import log_star

XS = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


class TestRecovery:
    def test_log_recovers_log_data(self):
        ys = [3.0 + 2.0 * math.log2(x) for x in XS]
        fit = fit_log(XS, ys)
        assert fit.intercept == pytest.approx(3.0, abs=1e-9)
        assert fit.slope == pytest.approx(2.0, abs=1e-9)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_log_squared_recovers(self):
        ys = [1.0 + 0.5 * math.log2(x) ** 2 for x in XS]
        fit = fit_log_squared(XS, ys)
        assert fit.slope == pytest.approx(0.5, abs=1e-9)

    def test_logstar_recovers(self):
        ys = [2.0 + 4.0 * log_star(x) for x in XS]
        fit = fit_logstar(XS, ys)
        assert fit.slope == pytest.approx(4.0, abs=1e-6)

    def test_linear_recovers(self):
        ys = [5.0 + 0.25 * x for x in XS]
        fit = fit_linear(XS, ys)
        assert fit.slope == pytest.approx(0.25, abs=1e-9)

    def test_power_recovers_exponent(self):
        ys = [3.0 * x**2 for x in XS]
        fit = fit_power(XS, ys)
        assert fit.slope == pytest.approx(2.0, abs=1e-9)  # the exponent
        assert math.exp(fit.intercept) == pytest.approx(3.0, rel=1e-9)

    def test_power_recovers_sqrt(self):
        ys = [2.0 * math.sqrt(x) for x in XS]
        fit = fit_power(XS, ys)
        assert fit.slope == pytest.approx(0.5, abs=1e-9)


class TestModelSelection:
    def test_best_fit_picks_true_model(self):
        ys = [1.0 + 2.0 * math.log2(x) for x in XS]
        candidates = [fit_log(XS, ys), fit_linear(XS, ys), fit_logstar(XS, ys)]
        assert best_fit(XS, ys, candidates).model == "log"

    def test_best_fit_distinguishes_logstar_from_log(self):
        """The separation the E1 bench relies on: log* data is fitted
        better by the log* model than by the log model."""
        ys = [1.0 + 3.0 * log_star(x) for x in XS]
        log_fit = fit_log(XS, ys)
        logstar_fit = fit_logstar(XS, ys)
        assert logstar_fit.rmse < log_fit.rmse

    def test_best_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            best_fit(XS, XS, [])


class TestValidation:
    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_log([2], [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_log([2, 4], [1.0])

    def test_power_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power([1, 2], [0, 2])

    def test_constant_feature_zero_slope(self):
        fit = fit_logstar([3, 4], [5.0, 7.0])  # log* is 2 for both
        assert fit.slope == 0.0

    def test_predict(self):
        ys = [1.0 + 2.0 * math.log2(x) for x in XS]
        fit = fit_log(XS, ys)
        assert fit.predict(math.log2(2048)) == pytest.approx(23.0)
