"""Tests for the closed-form theory oracle."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.theory import (
    chernoff_upper_tail,
    expected_rounds,
    hpp_high_survivors,
    hpp_low_survivors,
    hpp_survivors,
    log_star,
    message_lower_bound,
    poison_pill_survivors,
    renaming_time_bound,
    round_recursion,
    tournament_levels,
)


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536) == 5

    def test_zero(self):
        assert log_star(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_star(-1)

    @given(st.floats(min_value=1.0, max_value=1e300))
    def test_monotone_nondecreasing(self, x):
        assert log_star(x) <= log_star(x * 2)

    def test_tiny_for_practical_inputs(self):
        """The paper's point: log* of anything practical is at most 5."""
        assert log_star(10**80) <= 5


class TestSurvivorBounds:
    def test_poison_pill_sqrt_shape(self):
        assert poison_pill_survivors(100) == pytest.approx(20.0)
        assert poison_pill_survivors(1) == 1.0

    def test_hpp_low_is_logarithmic(self):
        assert hpp_low_survivors(1) == pytest.approx(1.0)
        assert hpp_low_survivors(math.e**3) == pytest.approx(4.0, rel=0.01)

    def test_hpp_high_partial_sums(self):
        assert hpp_high_survivors(1) == pytest.approx(1.0)
        assert hpp_high_survivors(2) == pytest.approx(1.5)
        assert hpp_high_survivors(4) == pytest.approx(
            1.0 + 0.5 + math.log2(3) / 3 + 0.5
        )

    def test_hpp_total_is_sum(self):
        k = 37
        assert hpp_survivors(k) == pytest.approx(
            hpp_low_survivors(k) + hpp_high_survivors(k)
        )

    @pytest.mark.parametrize("k", [64, 256, 1024, 4096])
    def test_hpp_grows_slower_than_pp_asymptotically(self, k):
        """log^2 k = o(sqrt k): the survivor-bound ratio shrinks from k to
        k^2 (the separation is asymptotic; at small n they are comparable,
        which EXPERIMENTS.md discusses)."""
        ratio_small = hpp_survivors(k) / poison_pill_survivors(k)
        ratio_big = hpp_survivors(k * k) / poison_pill_survivors(k * k)
        assert ratio_big < ratio_small

    def test_hpp_high_survivors_large_k_approximation_continuous(self):
        """The integral tail must join the exact prefix smoothly."""
        below = hpp_high_survivors(100_000)
        above = hpp_high_survivors(100_001)
        assert abs(above - below) < 0.001


class TestRoundRecursion:
    def test_base_cases(self):
        assert round_recursion(1) == 0.0
        assert round_recursion(2) == pytest.approx(3.0)  # 1 + 2

    def test_iteration_converges_like_log_star(self):
        """expected_rounds should grow about as slowly as log*."""
        assert expected_rounds(16) == 0  # already below the constant region
        assert expected_rounds(2**20) <= 6
        assert expected_rounds(2**64) <= 8
        assert expected_rounds(2**256) <= 10

    def test_monotone(self):
        values = [expected_rounds(k) for k in (4, 64, 2**16, 2**40)]
        assert values == sorted(values)
        assert values[-1] >= 1


class TestBounds:
    def test_tournament_levels(self):
        assert tournament_levels(1) == 0
        assert tournament_levels(2) == 1
        assert tournament_levels(1024) == 10

    def test_message_lower_bound(self):
        assert message_lower_bound(16, 16) == pytest.approx(16.0)
        assert message_lower_bound(16, 16, alpha=0.5) == pytest.approx(8.0)

    def test_renaming_time_bound(self):
        assert renaming_time_bound(1) == 1.0
        assert renaming_time_bound(16) == pytest.approx(16.0)


class TestChernoff:
    def test_zero_deviation_is_one(self):
        assert chernoff_upper_tail(10.0, 0.0) == pytest.approx(1.0)

    def test_decreasing_in_deviation(self):
        values = [chernoff_upper_tail(20.0, d) for d in (0.1, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_negative_deviation_rejected(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(10.0, -0.1)
