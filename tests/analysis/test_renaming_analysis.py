"""Tests for the Section 4 execution analyzer — on synthetic pieces and
on real recorded renaming executions under many adversaries."""

from __future__ import annotations

import math

import pytest

from repro.analysis.renaming_analysis import RenamingAnalysis, group_sizes
from repro.core import make_get_name
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestGroupSizes:
    def test_power_of_two(self):
        assert group_sizes(8) == [4, 2, 1, 1]
        assert group_sizes(16) == [8, 4, 2, 1, 1]

    def test_non_power(self):
        assert sum(group_sizes(12)) == 12
        assert group_sizes(12)[0] == 6

    def test_single(self):
        assert group_sizes(1) == [1]

    def test_cover_exactly(self):
        for n in range(1, 40):
            assert sum(group_sizes(n)) == n


def analyzed_run(n, adversary_name, seed):
    sim = Simulation(
        n,
        {pid: make_get_name() for pid in range(n)},
        fresh_adversary(adversary_name, seed),
        seed=seed,
        record_events=True,
    )
    result = sim.run()
    return RenamingAnalysis.from_result(result), result


class TestReconstruction:
    def test_requires_events(self):
        sim = Simulation(
            4,
            {pid: make_get_name() for pid in range(4)},
            fresh_adversary("eager"),
            seed=0,
        )
        result = sim.run()
        with pytest.raises(ValueError, match="record_events"):
            RenamingAnalysis.from_result(result)

    def test_every_name_reaches_quorum_crash_free(self):
        analysis, _ = analyzed_run(8, "random", 1)
        assert all(
            time != math.inf for time in analysis.quorum_times.values()
        )

    def test_order_is_permutation(self):
        analysis, _ = analyzed_run(8, "random", 2)
        assert sorted(analysis.order) == list(range(8))
        assert all(analysis.order[analysis.rank[u]] == u for u in range(8))

    def test_order_sorted_by_quorum_time(self):
        analysis, _ = analyzed_run(8, "random", 3)
        times = [analysis.quorum_times[u] for u in analysis.order]
        assert times == sorted(times)

    def test_iterations_recorded(self):
        analysis, result = analyzed_run(8, "random", 4)
        # Every participant logged at least its winning iteration.
        pids = {record.pid for record in analysis.iterations}
        assert pids == set(range(8))
        for record in analysis.iterations:
            if record.completed_pick:
                assert record.spot in range(8)
                assert record.start_clock <= record.pick_clock

    def test_winning_pick_matches_returned_name(self):
        analysis, result = analyzed_run(8, "sequential", 5)
        for pid, decision in result.decisions.items():
            last = max(
                (r for r in analysis.iterations if r.pid == pid and r.completed_pick),
                key=lambda r: r.index,
            )
            assert last.spot == decision.result

    def test_phase_ends_monotone(self):
        analysis, _ = analyzed_run(8, "random", 6)
        finite = [end for end in analysis.phase_ends if end != math.inf]
        assert finite == sorted(finite)


class TestSection4Structure:
    """The proofs' structural facts hold on real executions — for every
    adversary and a spread of seeds."""

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_all_checks_every_adversary(self, name):
        analysis, _ = analyzed_run(8, name, 7)
        analysis.check_all()

    @pytest.mark.parametrize("seed", range(8))
    def test_all_checks_many_seeds(self, seed):
        analysis, _ = analyzed_run(10, "random", seed)
        analysis.check_all()

    @pytest.mark.parametrize("seed", range(4))
    def test_all_checks_fragmented(self, seed):
        analysis, _ = analyzed_run(12, "quorum_split", seed)
        analysis.check_all()

    def test_sequential_all_iterations_clean(self):
        """Serialized processors always see fully current contention, so
        no iteration can be dirty and none can cross."""
        analysis, _ = analyzed_run(10, "sequential", 1)
        for record in analysis.iterations:
            if record.completed_pick:
                kind, _ = analysis.classify(record)
                assert kind == "clean"
                assert analysis.is_cross(record) is None

    def test_lemma_a9_bound_has_headroom(self):
        """The highest group's contender count is far below n."""
        analysis, _ = analyzed_run(16, "random", 9)
        top_group = max(analysis.group_of.values())
        contenders = {
            record.pid
            for record in analysis.iterations
            if record.spot is not None
            and analysis.group_of[record.spot] >= top_group
        }
        assert len(contenders) <= 16 / 2 ** (top_group - 1)
