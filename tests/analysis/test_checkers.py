"""Tests for the specification checkers, on synthetic execution results."""

from __future__ import annotations

import pytest

from repro.analysis.checkers import (
    SpecificationViolation,
    check_leader_election,
    check_renaming,
    check_sifting_phase,
    count_survivors,
)
from repro.core import Outcome
from repro.sim.runtime import Decision, SimulationResult
from repro.sim.trace import Metrics, Trace


def synthetic_result(
    n=4,
    outcomes=None,
    crashed=(),
    undecided=(),
    start_times=None,
    intervals=None,
):
    """Build a SimulationResult by hand.

    ``outcomes`` maps pid -> result; ``intervals`` optionally maps pid ->
    (start, decide).  Start times default to pid+1, decide times to 100+pid.
    """
    outcomes = outcomes or {}
    intervals = intervals or {}
    decisions = {}
    starts = dict(start_times or {})
    for pid, result in outcomes.items():
        start, decide = intervals.get(pid, (pid + 1, 100 + pid))
        decisions[pid] = Decision(
            pid=pid, result=result, start_time=start, decide_time=decide
        )
        starts.setdefault(pid, start)
    return SimulationResult(
        n=n,
        decisions=decisions,
        metrics=Metrics(n),
        trace=Trace(),
        undecided=frozenset(undecided),
        crashed=frozenset(crashed),
        start_times=starts,
    )


class TestLeaderElectionChecker:
    def test_accepts_single_winner(self):
        result = synthetic_result(
            outcomes={0: Outcome.WIN, 1: Outcome.LOSE, 2: Outcome.LOSE},
            intervals={0: (1, 50), 1: (2, 60), 2: (3, 70)},
        )
        report = check_leader_election(result)
        assert report.winner == 0
        assert report.losers == (1, 2)

    def test_rejects_two_winners(self):
        result = synthetic_result(outcomes={0: Outcome.WIN, 1: Outcome.WIN})
        with pytest.raises(SpecificationViolation, match="multiple winners"):
            check_leader_election(result)

    def test_rejects_all_losers_crash_free(self):
        result = synthetic_result(outcomes={0: Outcome.LOSE, 1: Outcome.LOSE})
        with pytest.raises(SpecificationViolation, match="Lemma A.1"):
            check_leader_election(result)

    def test_rejects_stray_outcome(self):
        result = synthetic_result(outcomes={0: Outcome.SURVIVE})
        with pytest.raises(SpecificationViolation, match="non WIN/LOSE"):
            check_leader_election(result)

    def test_rejects_lose_before_winner_invocation(self):
        result = synthetic_result(
            outcomes={0: Outcome.WIN, 1: Outcome.LOSE},
            intervals={0: (50, 90), 1: (1, 10)},  # loser finished before
        )
        with pytest.raises(SpecificationViolation, match="not linearizable"):
            check_leader_election(result)

    def test_accepts_crashed_pending_winner(self):
        result = synthetic_result(
            outcomes={1: Outcome.LOSE},
            crashed={0},
            start_times={0: 1},
            intervals={1: (2, 30)},
        )
        report = check_leader_election(result)
        assert report.winner is None
        assert report.crashed == (0,)

    def test_rejects_losers_with_no_possible_winner(self):
        # Processor 0 crashed but only *after* the loser had already
        # returned... actually: crashed op started after the LOSE response,
        # so nothing can be linearized as the winner.
        result = synthetic_result(
            outcomes={1: Outcome.LOSE},
            crashed={0},
            start_times={0: 99},
            intervals={1: (2, 30)},
        )
        with pytest.raises(SpecificationViolation, match="linearized as the winner"):
            check_leader_election(result)

    def test_accepts_undecided_pending_winner(self):
        result = synthetic_result(
            outcomes={1: Outcome.LOSE},
            undecided={0},
            start_times={0: 1},
            intervals={1: (2, 30)},
        )
        report = check_leader_election(result)
        assert report.undecided == (0,)

    def test_accepts_empty_execution(self):
        report = check_leader_election(synthetic_result())
        assert report.winner is None


class TestSiftingChecker:
    def test_accepts_mixed_outcomes(self):
        result = synthetic_result(
            outcomes={0: Outcome.SURVIVE, 1: Outcome.DIE, 2: Outcome.DIE}
        )
        assert check_sifting_phase(result) == 1

    def test_rejects_zero_survivors(self):
        result = synthetic_result(outcomes={0: Outcome.DIE, 1: Outcome.DIE})
        with pytest.raises(SpecificationViolation, match="Claim 3.1"):
            check_sifting_phase(result)

    def test_allows_zero_survivors_with_crashes(self):
        result = synthetic_result(outcomes={0: Outcome.DIE}, crashed={1})
        assert check_sifting_phase(result) == 0

    def test_rejects_stray_outcome(self):
        result = synthetic_result(outcomes={0: Outcome.WIN})
        with pytest.raises(SpecificationViolation):
            check_sifting_phase(result)

    def test_count_survivors(self):
        result = synthetic_result(
            outcomes={0: Outcome.SURVIVE, 1: Outcome.SURVIVE, 2: Outcome.DIE}
        )
        assert count_survivors(result) == 2


class TestRenamingChecker:
    def test_accepts_distinct_names(self):
        result = synthetic_result(outcomes={0: 2, 1: 0, 2: 3})
        assert check_renaming(result) == {0: 2, 1: 0, 2: 3}

    def test_rejects_duplicates(self):
        result = synthetic_result(outcomes={0: 1, 1: 1})
        with pytest.raises(SpecificationViolation, match="duplicate"):
            check_renaming(result)

    def test_rejects_out_of_range(self):
        result = synthetic_result(n=4, outcomes={0: 4})
        with pytest.raises(SpecificationViolation, match="invalid name"):
            check_renaming(result)

    def test_rejects_negative(self):
        result = synthetic_result(n=4, outcomes={0: -1})
        with pytest.raises(SpecificationViolation, match="invalid name"):
            check_renaming(result)

    def test_rejects_non_integer(self):
        result = synthetic_result(outcomes={0: "zero"})
        with pytest.raises(SpecificationViolation, match="invalid name"):
            check_renaming(result)

    def test_rejects_crash_free_non_termination(self):
        result = synthetic_result(outcomes={0: 1}, undecided={1})
        with pytest.raises(SpecificationViolation, match="did not terminate"):
            check_renaming(result)

    def test_accepts_non_termination_with_crashes(self):
        # undecided + crashed: quorum loss can legally block termination
        result = synthetic_result(outcomes={0: 1}, undecided={1}, crashed={2, 3})
        assert check_renaming(result) == {0: 1}
