"""Tests for the statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import Summary, geometric_mean, quantile, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def leq(a: float, b: float) -> bool:
    """<= up to floating-point rounding noise."""
    return a <= b or math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 7, 9]
        assert quantile(data, 0.0) == 5
        assert quantile(data, 1.0) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    @given(st.lists(finite_floats, min_size=1, max_size=30), st.floats(0, 1))
    def test_within_data_range(self, values, q):
        data = sorted(values)
        result = quantile(data, q)
        assert leq(data[0], result) and leq(result, data[-1])


class TestSummarize:
    def test_single_value(self):
        summary = summarize([42.0])
        assert summary.count == 1
        assert summary.mean == 42.0
        assert summary.stdev == 0.0
        assert summary.stderr == 0.0
        assert summary.minimum == summary.maximum == 42.0

    def test_known_series(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.mean == pytest.approx(4.0)
        assert summary.stdev == pytest.approx(2.0)
        assert summary.median == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci95_brackets_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        low, high = summary.ci95()
        assert low <= summary.mean <= high

    def test_str_rendering(self):
        text = str(summarize([1.0, 3.0]))
        assert "±" in text and "max" in text

    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_invariants(self, values):
        summary = summarize(values)
        assert leq(summary.minimum, summary.median)
        assert leq(summary.median, summary.maximum)
        assert leq(summary.minimum, summary.mean)
        assert leq(summary.mean, summary.maximum)
        assert summary.stdev >= 0.0
        assert leq(summary.p90, summary.maximum)

    def test_summary_is_frozen(self):
        summary = summarize([1.0])
        with pytest.raises(AttributeError):
            summary.mean = 0.0  # type: ignore[misc]


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_identity(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) * 0.999 <= result <= max(values) * 1.001

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=2, max_size=20))
    def test_below_arithmetic_mean(self, values):
        assert geometric_mean(values) <= sum(values) / len(values) + 1e-9


def test_summary_dataclass_shape():
    summary = Summary(
        count=2, mean=1.5, stdev=0.7, minimum=1.0, maximum=2.0, median=1.5, p90=1.9
    )
    assert summary.stderr == pytest.approx(0.7 / math.sqrt(2))
