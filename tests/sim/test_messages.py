"""Unit and property tests for the in-flight message pool."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.messages import REPLY_BIT, InFlightPool, Message, MessageKind


def msg(sender=0, recipient=1, kind=MessageKind.ACK, call_id=1, var="v"):
    return Message(sender=sender, recipient=recipient, kind=kind, call_id=call_id, var=var)


class TestMessage:
    def test_request_classification(self):
        assert msg(kind=MessageKind.PROPAGATE).is_request
        assert msg(kind=MessageKind.COLLECT).is_request
        assert not msg(kind=MessageKind.ACK).is_request
        assert not msg(kind=MessageKind.COLLECT_REPLY).is_request

    def test_reply_classification(self):
        assert msg(kind=MessageKind.ACK).is_reply
        assert msg(kind=MessageKind.COLLECT_REPLY).is_reply

    def test_uids_unique(self):
        assert msg().uid != msg().uid

    def test_identity_semantics(self):
        a = msg()
        b = msg()
        assert a != b
        assert a == a


class TestUidDeterminism:
    """Message uids are run-local, so back-to-back runs are reproducible.

    Regression tests for the old module-global counter: uids (and anything
    that reads them, like uid-based tie-breaking) used to depend on how
    many simulations had already run in the process.
    """

    @staticmethod
    def _delivered_uids(seed=3):
        from repro.adversary.fifo import EagerAdversary
        from repro.core import make_leader_elect
        from repro.sim.runtime import Deliver, Simulation

        uids = []

        class RecordingAdversary(EagerAdversary):
            def choose(self, sim):
                action = super().choose(sim)
                if isinstance(action, Deliver):
                    uids.append(action.message.uid)
                return action

        sim = Simulation(
            n=5,
            participants={pid: make_leader_elect() for pid in range(5)},
            adversary=RecordingAdversary(),
            seed=seed,
            # The recorder reads Message.uid, so force the materialized
            # plane (EagerAdversary would otherwise negotiate batch mode,
            # where no uids exist).
            batch_messages=False,
        )
        sim.run()
        return uids

    def test_identical_runs_see_identical_uids(self):
        first = self._delivered_uids()
        # Burn some uids from the module-global fallback counter between
        # the runs; a per-simulation counter must not notice.
        for _ in range(100):
            msg()
        second = self._delivered_uids()
        assert first == second
        assert first[0] < 100  # uids restart near zero for every run

    def test_back_to_back_traces_byte_identical(self, tmp_path):
        from repro.obs.replay import record_trace

        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        record_trace(str(first), task="elect", n=8,
                     adversary="sequential", seed=7)
        record_trace(str(second), task="elect", n=8,
                     adversary="sequential", seed=7)
        assert first.read_bytes() == second.read_bytes()


class TestInFlightPool:
    def test_empty_pool(self):
        pool = InFlightPool()
        assert len(pool) == 0
        assert not pool
        assert pool.any_message() is None

    def test_add_and_remove(self):
        pool = InFlightPool()
        message = msg()
        pool.add(message)
        assert len(pool) == 1
        assert pool.any_message() is message
        pool.remove(message)
        assert len(pool) == 0

    def test_remove_missing_raises(self):
        pool = InFlightPool()
        message = msg()
        with pytest.raises(KeyError):
            pool.remove(message)

    def test_double_remove_raises(self):
        pool = InFlightPool()
        message = msg()
        pool.add(message)
        pool.remove(message)
        with pytest.raises(KeyError):
            pool.remove(message)

    def test_swap_remove_keeps_others(self):
        pool = InFlightPool()
        messages = [msg(sender=i) for i in range(5)]
        for message in messages:
            pool.add(message)
        pool.remove(messages[1])
        remaining = set(pool.snapshot())
        assert remaining == {messages[0], messages[2], messages[3], messages[4]}
        # All remaining messages are still removable (slots were fixed up).
        for message in list(remaining):
            pool.remove(message)
        assert len(pool) == 0

    def test_endpoint_indexes(self):
        pool = InFlightPool()
        a = msg(sender=1, recipient=2)
        b = msg(sender=2, recipient=1)
        c = msg(sender=1, recipient=3)
        for message in (a, b, c):
            pool.add(message)
        assert pool.sent_by(1) == {a, c}
        assert pool.addressed_to(1) == {b}
        assert set(pool.involving(1)) == {a, b, c}
        pool.remove(a)
        assert pool.sent_by(1) == {c}

    def test_indexes_empty_for_unknown_pid(self):
        pool = InFlightPool()
        assert pool.sent_by(99) == set()
        assert pool.addressed_to(99) == set()

    def test_iteration(self):
        pool = InFlightPool()
        messages = {msg(sender=i) for i in range(3)}
        for message in messages:
            pool.add(message)
        assert set(pool) == messages


class TestUnindexedPool:
    """The indexed=False fast path: no endpoint bookkeeping, loud failure."""

    def test_add_remove_work_without_indexes(self):
        pool = InFlightPool(indexed=False)
        assert not pool.indexed
        messages = [msg(sender=i) for i in range(5)]
        for message in messages:
            pool.add(message)
        assert pool.any_message() is messages[-1]
        pool.remove(messages[1])
        assert set(pool.snapshot()) == set(messages) - {messages[1]}
        for message in pool.snapshot():
            pool.remove(message)
        assert len(pool) == 0

    def test_index_api_raises(self):
        # Lazily rebuilding would scramble insertion order (swap-remove
        # reorders the list) and silently break determinism, so the API
        # refuses instead.
        pool = InFlightPool(indexed=False)
        pool.add(msg(sender=1, recipient=2))
        with pytest.raises(RuntimeError, match="uses_endpoint_indexes"):
            pool.sent_by(1)
        with pytest.raises(RuntimeError, match="indexed=False"):
            pool.addressed_to(2)
        with pytest.raises(RuntimeError):
            list(pool.involving(1))

    def test_indexed_default_unchanged(self):
        pool = InFlightPool()
        assert pool.indexed
        message = msg(sender=1, recipient=2)
        pool.add(message)
        assert pool.sent_by(1) == {message}

    def test_declaring_adversaries_match_their_usage(self):
        # Every adversary that declares uses_endpoint_indexes=False must be
        # one of the audited scan-only strategies; the targeted ones keep
        # the default.
        from repro.adversary import ADVERSARY_FACTORIES

        flags = {
            name: factory().uses_endpoint_indexes
            for name, factory in ADVERSARY_FACTORIES.items()
        }
        assert flags == {
            "random": False,
            "eager": False,
            "round_robin": False,
            "oblivious": False,
            "sequential": False,
            "quorum_split": False,
            "coin_aware": True,
            "bubble": True,
        }

    def test_crash_wrappers_inherit_flag(self):
        from repro.adversary import (
            CrashingAdversary,
            RandomAdversary,
            RandomCrashAdversary,
        )
        from repro.adversary.bubble import BubbleAdversary

        inner = RandomAdversary(seed=0)
        assert not CrashingAdversary(inner, []).uses_endpoint_indexes
        assert not RandomCrashAdversary(inner).uses_endpoint_indexes
        assert CrashingAdversary(BubbleAdversary(), []).uses_endpoint_indexes


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["open", "reply", "remove"]),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=60,
    )
)
def test_batch_pool_matches_reference_model(operations):
    """The descs plane obeys the same swap-remove slot discipline as the
    materialized list: after any interleaving of broadcasts, replies, and
    removals, every slot holds exactly what a naive list model predicts.

    This is the invariant the mode-equivalence argument leans on — an
    index-choosing adversary sees identical pools in both modes because
    both lists undergo identical appends and identical swap-removes.
    """
    pool = InFlightPool(indexed=False, batched=True)
    model: list[int] = []
    for op, arg in operations:
        if op == "open":
            broadcast = pool.open_broadcast(
                sender=arg, call_id=1, kind=MessageKind.PROPAGATE, var="v", n=5
            )
            model.extend(
                broadcast.request_descriptor(pid) for pid in range(5) if pid != arg
            )
        elif op == "reply" and model:
            request = model[arg % len(model)] & ~REPLY_BIT
            pool.add_reply(request)
            model.append(request | REPLY_BIT)
        elif op == "remove" and model:
            slot = arg % len(model)
            pool.remove_descriptor(slot, model[slot])
            model[slot] = model[-1]
            model.pop()
        assert len(pool) == len(model)
        assert list(pool.descriptors) == model
        for slot, desc in enumerate(model):
            action = pool.action_at(slot)
            assert (action.slot, action.desc) == (slot, desc)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=60,
    )
)
def test_pool_matches_reference_model(operations):
    """Random add/remove sequences: the pool and its endpoint indexes must
    always agree with a naive set-based reference model."""
    pool = InFlightPool()
    model: list[Message] = []
    for op, sender, recipient in operations:
        if op == "add":
            message = msg(sender=sender, recipient=recipient)
            pool.add(message)
            model.append(message)
        elif model:
            victim = model.pop(len(model) // 2)
            pool.remove(victim)
        assert len(pool) == len(model)
        assert set(pool.snapshot()) == set(model)
        for pid in range(5):
            assert pool.sent_by(pid) == {m for m in model if m.sender == pid}
            assert pool.addressed_to(pid) == {m for m in model if m.recipient == pid}
