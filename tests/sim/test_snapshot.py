"""Byte-identity tests for simulator checkpoints (:mod:`repro.sim.snapshot`).

The contract under test: a run forked from a mid-schedule checkpoint
produces the same outcomes, the same Metrics, and the same event-stream
fingerprint as the uncheckpointed run of the identical schedule.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.check.explore import schedule_of
from repro.check.shrink import SchedulePrefixAdversary
from repro.harness.runners import build_task_simulation
from repro.obs.events import ListSink
from repro.obs.jsonl import event_line
from repro.sim import CheckpointError, capture, enable_recording


def _digest(events) -> str:
    digest = hashlib.sha256()
    for event in events:
        digest.update(event_line(event).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _metrics_tuple(metrics):
    return (
        metrics.messages_total,
        dict(metrics.messages_by_kind),
        list(metrics.messages_sent_by),
        list(metrics.comm_calls_by),
        metrics.payload_cells,
        metrics.deliveries,
        metrics.steps,
        metrics.crashes,
        metrics.events_executed,
    )


def _record_schedule(task, algorithm, adversary, n, seed):
    sink = ListSink()
    sim = build_task_simulation(
        task, algorithm, n, adversary=adversary, seed=seed, sink=sink
    )
    sim.run()
    return schedule_of(sink.events)


def _uncheckpointed(task, algorithm, schedule, n, seed):
    sink = ListSink()
    sim = build_task_simulation(
        task, algorithm, n,
        adversary=SchedulePrefixAdversary(schedule), seed=seed, sink=sink,
    )
    result = sim.run()
    return result, sink.events


def _checkpointed(task, algorithm, schedule, n, seed, cut):
    """Drive ``cut`` schedule entries, capture, fork, finish the suffix."""
    sink = ListSink()
    adversary = SchedulePrefixAdversary(schedule)
    sim = build_task_simulation(
        task, algorithm, n, adversary=adversary, seed=seed, sink=sink,
    )
    enable_recording(sim)
    adversary.setup(sim)
    while adversary._cursor < cut and sim.undecided:
        action = adversary.choose(sim)
        assert action is not None
        sim.execute(action)
    consumed = adversary._cursor
    checkpoint = capture(sim)
    prefix_events = list(sink.events)
    fork_sink = ListSink()
    forked = checkpoint.fork(
        SchedulePrefixAdversary(schedule[consumed:]), sink=fork_sink
    )
    result = forked.run()
    return result, prefix_events + fork_sink.events, checkpoint, consumed


CASES = [
    ("elect", "poison_pill", "random"),
    ("elect", "poison_pill", "eager"),
    ("elect", "tournament", "coin_aware"),
    ("sift", "heterogeneous", "quorum_split"),
    ("rename", "paper", "sequential"),
]


@pytest.mark.parametrize("task,algorithm,adversary", CASES)
@pytest.mark.parametrize("fraction", [3, 2])
def test_forked_run_is_byte_identical(task, algorithm, adversary, fraction):
    n, seed = 8, 11
    schedule = _record_schedule(task, algorithm, adversary, n, seed)
    assert len(schedule) > 8
    base_result, base_events = _uncheckpointed(task, algorithm, schedule, n, seed)
    cut = len(schedule) // fraction
    fork_result, fork_events, _, consumed = _checkpointed(
        task, algorithm, schedule, n, seed, cut
    )
    assert consumed >= cut
    assert fork_result.outcomes == base_result.outcomes
    assert fork_result.crashed == base_result.crashed
    assert fork_result.undecided == base_result.undecided
    assert _metrics_tuple(fork_result.metrics) == _metrics_tuple(base_result.metrics)
    assert _digest(fork_events) == _digest(base_events)


def test_checkpoint_forks_repeatedly():
    """One checkpoint must support many independent forks (ddmin reuse)."""
    n, seed = 8, 3
    schedule = _record_schedule("elect", "poison_pill", "random", n, seed)
    cut = len(schedule) // 2
    sink = ListSink()
    adversary = SchedulePrefixAdversary(schedule)
    sim = build_task_simulation(
        "elect", "poison_pill", n, adversary=adversary, seed=seed, sink=sink,
    )
    enable_recording(sim)
    adversary.setup(sim)
    while adversary._cursor < cut and sim.undecided:
        sim.execute(adversary.choose(sim))
    consumed = adversary._cursor
    checkpoint = capture(sim)
    digests = set()
    for _ in range(3):
        fork_sink = ListSink()
        forked = checkpoint.fork(
            SchedulePrefixAdversary(schedule[consumed:]), sink=fork_sink
        )
        result = forked.run()
        digests.add((_digest(fork_sink.events), tuple(sorted(result.outcomes))))
    assert len(digests) == 1


def test_forks_with_different_suffixes_diverge_independently():
    """Forks see their own state: divergent suffixes must not interfere."""
    n, seed = 8, 5
    schedule = _record_schedule("elect", "poison_pill", "eager", n, seed)
    cut = len(schedule) // 2
    adversary = SchedulePrefixAdversary(schedule)
    sim = build_task_simulation(
        "elect", "poison_pill", n, adversary=adversary, seed=seed,
    )
    enable_recording(sim)
    adversary.setup(sim)
    while adversary._cursor < cut and sim.undecided:
        sim.execute(adversary.choose(sim))
    consumed = adversary._cursor
    checkpoint = capture(sim)
    suffix = schedule[consumed:]
    full = checkpoint.fork(SchedulePrefixAdversary(suffix)).run()
    # Dropping half the suffix still completes (tolerant replay + fallback).
    truncated = checkpoint.fork(
        SchedulePrefixAdversary(suffix[: len(suffix) // 2])
    ).run()
    again = checkpoint.fork(SchedulePrefixAdversary(suffix)).run()
    assert full.outcomes == again.outcomes
    assert truncated.terminated


def test_capture_without_recording_raises():
    sim = build_task_simulation("elect", "poison_pill", 4, adversary="random", seed=0)
    adversary = sim.adversary
    adversary.setup(sim)
    for _ in range(4):
        sim.execute(adversary.choose(sim))
    with pytest.raises(CheckpointError):
        capture(sim)


def test_enable_recording_rejects_started_run():
    sim = build_task_simulation("elect", "poison_pill", 4, adversary="random", seed=0)
    adversary = sim.adversary
    adversary.setup(sim)
    sim.execute(adversary.choose(sim))
    with pytest.raises(CheckpointError):
        enable_recording(sim)
