"""Unit and property tests for register views and merge policies.

The quorum-intersection arguments of the paper require register merging
to behave like a join semilattice: merges must be idempotent,
commutative, and associative so that views depend only on the *set* of
information received, never on delivery order.  The hypothesis tests
check exactly that.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.registers import (
    POLICY_MAX,
    POLICY_OR,
    POLICY_VERSION,
    RegisterFile,
    merge_entry,
)


class TestMergeEntry:
    def test_none_current_takes_incoming(self):
        assert merge_entry(None, (1, "x", POLICY_VERSION)) == (1, "x", POLICY_VERSION)

    def test_version_higher_wins(self):
        current = (1, "old", POLICY_VERSION)
        incoming = (2, "new", POLICY_VERSION)
        assert merge_entry(current, incoming) == incoming

    def test_version_lower_loses(self):
        current = (3, "cur", POLICY_VERSION)
        incoming = (2, "stale", POLICY_VERSION)
        assert merge_entry(current, incoming) == current

    def test_version_equal_keeps_current(self):
        current = (2, "a", POLICY_VERSION)
        incoming = (2, "b", POLICY_VERSION)
        assert merge_entry(current, incoming) == current

    def test_or_true_sticks(self):
        assert merge_entry((1, True, POLICY_OR), (5, False, POLICY_OR))[1] is True
        assert merge_entry((1, False, POLICY_OR), (1, True, POLICY_OR))[1] is True

    def test_or_false_false(self):
        assert merge_entry((1, False, POLICY_OR), (1, False, POLICY_OR))[1] is False

    def test_max_takes_maximum(self):
        assert merge_entry((1, 7, POLICY_MAX), (9, 3, POLICY_MAX))[1] == 7
        assert merge_entry((1, 2, POLICY_MAX), (1, 5, POLICY_MAX))[1] == 5

    def test_conflicting_policies_rejected(self):
        with pytest.raises(ValueError, match="conflicting merge policies"):
            merge_entry((1, 1, POLICY_MAX), (1, True, POLICY_OR))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown merge policy"):
            merge_entry((1, 1, "?"), (2, 2, "?"))


def _entries(policy, values):
    return st.tuples(st.integers(min_value=0, max_value=20), values, st.just(policy))


entry_strategies = st.one_of(
    _entries(POLICY_OR, st.booleans()),
    _entries(POLICY_MAX, st.integers(min_value=-5, max_value=50)),
)


class TestMergeSemilattice:
    """Order-insensitivity properties (for multi-writer policies)."""

    @given(entry_strategies)
    def test_idempotent(self, entry):
        assert merge_entry(entry, entry) == entry

    @given(st.tuples(entry_strategies, entry_strategies))
    def test_commutative(self, pair):
        left, right = pair
        if left[2] != right[2]:
            return  # policies must match within a cell
        assert merge_entry(left, right)[1] == merge_entry(right, left)[1]

    @given(st.tuples(entry_strategies, entry_strategies, entry_strategies))
    def test_associative(self, triple):
        a, b, c = triple
        if not (a[2] == b[2] == c[2]):
            return
        left = merge_entry(merge_entry(a, b), c)
        right = merge_entry(a, merge_entry(b, c))
        assert left[1] == right[1]

    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=8),
        st.randoms(use_true_random=False),
    )
    def test_version_order_insensitive_single_writer(self, versions, rng):
        """With a single writer, the final view is the max-version write
        regardless of delivery order — the property the VERSION policy
        must provide for ``Status``/``Round`` cells."""
        writes = [(v, f"value-{v}", POLICY_VERSION) for v in versions]
        expected = max(writes, key=lambda entry: entry[0])
        shuffled = list(writes)
        rng.shuffle(shuffled)
        merged = None
        for write in shuffled:
            merged = merge_entry(merged, write)
        assert merged == expected


class TestRegisterFile:
    def test_get_default(self):
        registers = RegisterFile()
        assert registers.get("Status", 3) is None
        assert registers.get("Status", 3, default="x") == "x"
        assert not registers.has("Status", 3)

    def test_put_and_get(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        assert registers.get("Status", 1) == "commit"
        assert registers.has("Status", 1)

    def test_put_bumps_version(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        registers.put("Status", 1, "low")
        version, value, policy = registers.entries("Status")[1]
        assert version == 2
        assert value == "low"
        assert policy == POLICY_VERSION

    def test_view_snapshot(self):
        registers = RegisterFile()
        registers.put("Round", 0, 3, POLICY_MAX)
        registers.put("Round", 1, 5, POLICY_MAX)
        assert registers.view("Round") == {0: 3, 1: 5}
        assert registers.view("Missing") == {}

    def test_entries_key_restriction(self):
        registers = RegisterFile()
        registers.put("Status", 0, "a")
        registers.put("Status", 1, "b")
        restricted = registers.entries("Status", keys=(1, 99))
        assert set(restricted) == {1}

    def test_merge_ignores_stale_version(self):
        mine = RegisterFile()
        mine.put("Status", 7, "newer")
        mine.put("Status", 7, "newest")
        mine.merge("Status", {7: (1, "stale", POLICY_VERSION)})
        assert mine.get("Status", 7) == "newest"

    def test_merge_adopts_fresh_version(self):
        mine = RegisterFile()
        mine.merge("Status", {7: (4, "remote", POLICY_VERSION)})
        assert mine.get("Status", 7) == "remote"

    def test_merge_or_policy_across_writers(self):
        mine = RegisterFile()
        mine.put("Contended", 2, True, POLICY_OR)
        mine.merge("Contended", {2: (1, False, POLICY_OR), 3: (1, True, POLICY_OR)})
        assert mine.get("Contended", 2) is True
        assert mine.get("Contended", 3) is True

    def test_unknown_policy_rejected_on_put(self):
        registers = RegisterFile()
        with pytest.raises(ValueError):
            registers.put("Status", 0, 1, policy="bogus")

    def test_variables_listing(self):
        registers = RegisterFile()
        registers.put("A", 0, 1)
        registers.put("B", 0, 1)
        assert set(registers.variables()) == {"A", "B"}

    def test_keys_listing(self):
        registers = RegisterFile()
        registers.put("A", 0, 1)
        registers.put("A", 5, 1)
        assert set(registers.keys("A")) == {0, 5}


class TestPayloadSharing:
    """The copy-on-write contract of ``entries``.

    A full ``entries(var)`` payload is attached to every outgoing message
    of a communicate call without per-recipient copying, so it must behave
    as a frozen snapshot: later local writes and merges by the owner must
    never show through an already-exported mapping.
    """

    def test_shared_entries_frozen_across_put(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        shared = registers.entries("Status")
        registers.put("Status", 1, "low")
        assert shared[1][1] == "commit"  # the snapshot did not move
        assert registers.get("Status", 1) == "low"

    def test_shared_entries_frozen_across_merge(self):
        registers = RegisterFile()
        registers.put("Round", 0, 3, POLICY_MAX)
        shared = registers.entries("Round")
        registers.merge("Round", {0: (1, 9, POLICY_MAX), 2: (1, 4, POLICY_MAX)})
        assert dict(shared) == {0: (1, 3, POLICY_MAX)}
        assert registers.get("Round", 0) == 9
        assert registers.get("Round", 2) == 4

    def test_new_key_does_not_appear_in_old_snapshot(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        shared = registers.entries("Status")
        registers.put("Status", 2, "commit")
        assert 2 not in shared
        assert 2 in registers.entries("Status")

    def test_repeated_reads_share_without_intervening_writes(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        assert registers.entries("Status") is registers.entries("Status")

    def test_restricted_entries_are_private_copies(self):
        registers = RegisterFile()
        registers.put("Status", 1, "commit")
        restricted = registers.entries("Status", keys=(1,))
        registers.put("Status", 1, "low")
        assert restricted[1][1] == "commit"
        assert restricted is not registers.entries("Status", keys=(1,))

    def test_missing_var_yields_empty_mapping(self):
        registers = RegisterFile()
        empty = registers.entries("Nope")
        assert dict(empty) == {}
        registers.put("Nope", 0, 1)
        assert 0 not in empty

    def test_merging_a_shared_payload_leaves_it_intact(self):
        sender = RegisterFile()
        sender.put("Status", 7, "commit")
        payload = sender.entries("Status")
        before = dict(payload)
        receiver = RegisterFile()
        receiver.merge("Status", payload)
        receiver.put("Status", 8, "low")
        receiver.merge("Status", {7: (5, "remote", POLICY_VERSION)})
        assert dict(payload) == before  # recipients never mutate payloads
        assert receiver.get("Status", 7) == "remote"
