"""Direct unit tests for the communicate request/bookkeeping types."""

from __future__ import annotations

import pytest

from repro.sim.communicate import Collect, PendingCall, Propagate


class TestRequests:
    def test_propagate_defaults_to_all_keys(self):
        request = Propagate("Status")
        assert request.keys is None

    def test_propagate_with_keys(self):
        request = Propagate("Status", (1, 2))
        assert request.keys == (1, 2)

    def test_requests_are_immutable(self):
        request = Collect("Status")
        with pytest.raises(AttributeError):
            request.var = "Other"  # type: ignore[misc]

    def test_requests_hashable(self):
        assert hash(Propagate("X", (0,))) == hash(Propagate("X", (0,)))
        assert Collect("X") == Collect("X")


class TestPendingCall:
    def test_propagate_satisfaction(self):
        pending = PendingCall(call_id=1, request=Propagate("X"), needed=2)
        assert not pending.satisfied
        pending.acks = 1
        assert not pending.satisfied
        pending.acks = 2
        assert pending.satisfied

    def test_zero_needed_is_immediately_satisfied(self):
        pending = PendingCall(call_id=1, request=Propagate("X"), needed=0)
        assert pending.satisfied

    def test_propagate_result_is_none(self):
        pending = PendingCall(call_id=1, request=Propagate("X"), needed=0)
        assert pending.result() is None

    def test_collect_result_returns_views_copy(self):
        pending = PendingCall(call_id=2, request=Collect("X"), needed=1)
        pending.views = [{0: "a"}]
        first = pending.result()
        assert first == [{0: "a"}]
        first.append({1: "b"})
        assert pending.result() == [{0: "a"}]  # internal list unaffected


class TestSequentialDegradation:
    def test_focus_crash_does_not_stall_others(self):
        """If the sequential focus crashes, the strategy advances to the
        next undecided participant instead of deadlocking."""
        from repro.adversary import CrashingAdversary, SequentialAdversary
        from repro.sim import Propagate as P
        from repro.sim import Simulation

        def algorithm(api):
            api.put("X", api.pid, 1)
            yield P("X", (api.pid,))
            return "done"

        adversary = CrashingAdversary(SequentialAdversary(), [(0, 0)])
        sim = Simulation(
            5, {0: algorithm, 1: algorithm}, adversary, seed=0
        )
        result = sim.run(require_termination=False)
        assert result.outcomes.get(1) == "done"
        assert 0 in result.crashed
