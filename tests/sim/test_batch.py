"""Batch (columnar) pool plane: equivalence, invariants, negotiation.

The batch plane is a pure representation change — a ``communicate`` call
becomes one :class:`Broadcast` record plus packed int descriptors instead
of ``n - 1`` :class:`Message` objects.  These tests pin the contract that
makes the optimisation safe to ship:

* **Mode equivalence** — for every registered adversary (and the crash
  wrappers), a negotiated run and a ``batch_messages=False`` run are
  byte-identical in everything observable: decisions, every metrics
  counter, and the per-processor breakdowns.
* **Structure invariants** — the descriptor encoding round-trips, the
  undelivered bitmask tracks deliveries exactly, and the descs list obeys
  the same swap-remove slot discipline as the materialized list.
* **Negotiation** — batch mode engages exactly when the adversary
  forswears Message objects and no event sink is attached, and
  ``batch_messages=True`` fails loudly when those certificates are absent.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    ADVERSARY_FACTORIES,
    CrashingAdversary,
    EagerAdversary,
    RandomAdversary,
    RandomCrashAdversary,
)
from repro.core import make_heterogeneous_poison_pill, make_leader_elect
from repro.sim import DeliverBatch, Simulation, Step
from repro.sim.messages import (
    BROADCAST_SHIFT,
    MAX_BATCH_PIDS,
    PID_MASK,
    REPLY_BIT,
    Broadcast,
    InFlightPool,
    MessageKind,
)
from repro.sim import runtime as runtime_module


def _election_sim(adversary, *, n=24, seed=11, **kwargs):
    return Simulation(
        n,
        {pid: make_leader_elect() for pid in range(n)},
        adversary,
        seed=seed,
        **kwargs,
    )


def _sifting_sim(adversary, *, n=32, k=8, seed=5, **kwargs):
    factory = make_heterogeneous_poison_pill()
    return Simulation(
        n,
        {pid: factory for pid in range(k)},
        adversary,
        seed=seed,
        **kwargs,
    )


def _observables(result):
    """Everything a caller can see, minus the trace (batch runs have none)."""
    metrics = result.metrics
    return {
        "outcomes": result.outcomes,
        "undecided": result.undecided,
        "crashed": result.crashed,
        "start_times": result.start_times,
        "summary": metrics.summary(),
        "messages_by_kind": dict(metrics.messages_by_kind),
        "messages_sent_by": list(metrics.messages_sent_by),
        "comm_calls_by": list(metrics.comm_calls_by),
    }


class TestModeEquivalence:
    """Negotiated runs == forced-materialized runs, for every adversary."""

    @pytest.mark.parametrize("name", sorted(ADVERSARY_FACTORIES))
    def test_election_identical(self, name):
        batch = _election_sim(ADVERSARY_FACTORIES[name](seed=3))
        legacy = _election_sim(
            ADVERSARY_FACTORIES[name](seed=3), batch_messages=False
        )
        wants_objects = ADVERSARY_FACTORIES[name]().uses_message_objects
        assert batch.in_flight.batched == (not wants_objects)
        assert not legacy.in_flight.batched
        assert _observables(batch.run()) == _observables(legacy.run())

    @pytest.mark.parametrize("name", sorted(ADVERSARY_FACTORIES))
    def test_sifting_identical(self, name):
        batch = _sifting_sim(ADVERSARY_FACTORIES[name](seed=9))
        legacy = _sifting_sim(
            ADVERSARY_FACTORIES[name](seed=9), batch_messages=False
        )
        assert _observables(batch.run()) == _observables(legacy.run())

    def test_matches_traced_run(self):
        """record_events forces materialized; its metrics still match batch."""
        batch = _election_sim(RandomAdversary(seed=2))
        traced = _election_sim(RandomAdversary(seed=2), record_events=True)
        assert batch.in_flight.batched
        assert not traced.in_flight.batched
        assert _observables(batch.run()) == _observables(traced.run())

    def test_crashing_wrapper_identical(self):
        schedule = [(40, 1), (90, 3), (150, 7)]
        batch = _election_sim(
            CrashingAdversary(RandomAdversary(seed=6), schedule)
        )
        legacy = _election_sim(
            CrashingAdversary(RandomAdversary(seed=6), schedule),
            batch_messages=False,
        )
        assert batch.in_flight.batched
        result = batch.run()
        assert result.crashed  # the schedule actually fired
        assert _observables(result) == _observables(legacy.run())

    def test_random_crash_wrapper_identical(self):
        batch = _election_sim(
            RandomCrashAdversary(RandomAdversary(seed=4), rate=0.02, seed=13)
        )
        legacy = _election_sim(
            RandomCrashAdversary(RandomAdversary(seed=4), rate=0.02, seed=13),
            batch_messages=False,
        )
        assert batch.in_flight.batched
        result = batch.run()
        assert result.crashed
        assert _observables(result) == _observables(legacy.run())

    def test_delta_off_identical(self):
        """Full (non-delta) propagation takes the same batch path."""
        batch = _sifting_sim(RandomAdversary(seed=1), delta_propagation=False)
        legacy = _sifting_sim(
            RandomAdversary(seed=1),
            delta_propagation=False,
            batch_messages=False,
        )
        assert _observables(batch.run()) == _observables(legacy.run())


class TestBroadcastRecord:
    def test_undelivered_excludes_sender(self):
        b = Broadcast(bid=0, sender=2, call_id=1, kind=MessageKind.PROPAGATE,
                      var="X", n=8)
        assert b.undelivered_count == 7
        assert b.undelivered == 0b11111011

    def test_mark_delivered_clears_one_bit(self):
        b = Broadcast(bid=0, sender=0, call_id=1, kind=MessageKind.PROPAGATE,
                      var="X", n=67)  # straddles the 64-bit word boundary
        for recipient in (1, 63, 64, 66):
            before = b.undelivered
            b.mark_delivered(recipient)
            assert b.undelivered == before & ~(1 << recipient)
        assert b.undelivered_count == 66 - 4  # n-1 minus four deliveries

    def test_descriptor_round_trip(self):
        b = Broadcast(bid=5, sender=3, call_id=9, kind=MessageKind.COLLECT,
                      var="X", n=16)
        request = b.request_descriptor(7)
        assert request & PID_MASK == 7
        assert not request & REPLY_BIT
        assert request >> BROADCAST_SHIFT == 5
        reply = b.reply_descriptor(7)
        assert reply == request | REPLY_BIT
        assert reply & PID_MASK == 7
        assert reply >> BROADCAST_SHIFT == 5


class TestBatchPool:
    def _open(self, pool, sender=0, n=5, kind=MessageKind.PROPAGATE):
        return pool.open_broadcast(
            sender=sender, call_id=1, kind=kind, var="X", n=n
        )

    def test_open_broadcast_orders_recipients_ascending(self):
        pool = InFlightPool(indexed=False, batched=True)
        b = self._open(pool, sender=2, n=5)
        # Same order the materialized loop adds messages: every pid but
        # the sender, ascending.
        pids = [pool.descriptors[i] & PID_MASK for i in range(len(pool))]
        assert pids == [0, 1, 3, 4]
        assert all(not d & REPLY_BIT for d in pool.descriptors)
        assert pool.broadcast_of(pool.descriptors[0]) is b

    def test_swap_remove_and_staleness(self):
        pool = InFlightPool(indexed=False, batched=True)
        self._open(pool, sender=0, n=5)
        descs = list(pool.descriptors)
        pool.remove_descriptor(0, descs[0])
        # Swap-remove: the last element moved into slot 0.
        assert pool.descriptors[0] == descs[-1]
        # A stale (slot, desc) claim fails loudly instead of corrupting.
        with pytest.raises(KeyError):
            pool.remove_descriptor(0, descs[0])

    def test_add_reply_sets_reply_bit(self):
        pool = InFlightPool(indexed=False, batched=True)
        self._open(pool, sender=0, n=3)
        request = pool.descriptors[0]
        pool.remove_descriptor(0, request)
        pool.add_reply(request)
        reply = pool.descriptors[len(pool) - 1]
        assert reply == request | REPLY_BIT

    def test_positional_api(self):
        pool = InFlightPool(indexed=False, batched=True)
        self._open(pool, sender=1, n=4)
        action = pool.action_at(0)
        assert isinstance(action, DeliverBatch)
        assert action.slot == 0
        assert pool.last_action() == pool.action_at(len(pool) - 1)
        # Request legs run sender -> recipient; replies the reverse.
        assert pool.endpoints_at(0) == (1, 0)
        request = pool.descriptors[0]
        pool.remove_descriptor(0, request)
        pool.add_reply(request)
        assert pool.endpoints_at(len(pool) - 1) == (0, 1)

    def test_object_api_refuses(self):
        pool = InFlightPool(indexed=False, batched=True)
        from repro.sim.messages import Message

        stray = Message(sender=0, recipient=1, kind=MessageKind.ACK,
                        call_id=1, var="X")
        with pytest.raises(RuntimeError, match="batch"):
            pool.add(stray)
        with pytest.raises(RuntimeError):
            pool.remove(stray)
        with pytest.raises(RuntimeError):
            pool.any_message()
        with pytest.raises(RuntimeError):
            pool.snapshot()
        with pytest.raises(RuntimeError):
            pool.messages
        with pytest.raises(RuntimeError):
            list(pool)

    def test_len_and_bool_span_both_planes(self):
        pool = InFlightPool(indexed=False, batched=True)
        assert len(pool) == 0 and not pool
        self._open(pool, sender=0, n=3)
        assert len(pool) == 2 and pool


class TestNegotiation:
    def test_sink_forces_materialized(self):
        sim = _election_sim(EagerAdversary(), record_events=True)
        assert not sim.in_flight.batched

    def test_object_adversary_forces_materialized(self):
        sim = _election_sim(ADVERSARY_FACTORIES["bubble"]())
        assert not sim.in_flight.batched

    def test_forcing_batch_with_object_adversary_raises(self):
        with pytest.raises(ValueError, match="uses_message_objects"):
            _election_sim(ADVERSARY_FACTORIES["bubble"](), batch_messages=True)

    def test_forcing_batch_with_sink_raises(self):
        with pytest.raises(ValueError, match="sink"):
            _election_sim(
                EagerAdversary(), record_events=True, batch_messages=True
            )

    def test_pid_ceiling(self, monkeypatch):
        # The real ceiling is 2**20 processors; shrink it so the guard is
        # testable without allocating a million Process objects.
        monkeypatch.setattr(runtime_module, "MAX_BATCH_PIDS", 8)
        negotiated = _election_sim(EagerAdversary(), n=16)
        assert not negotiated.in_flight.batched  # silently falls back
        with pytest.raises(ValueError, match="ceiling"):
            _election_sim(EagerAdversary(), n=16, batch_messages=True)
        assert MAX_BATCH_PIDS == 1 << 20  # the real constant is untouched

    def test_batch_delivery_uses_descriptors_only(self):
        sim = _election_sim(EagerAdversary(), n=6)
        assert sim.in_flight.batched
        sim.execute(Step(0))
        assert len(sim.in_flight) == 5
        action = sim.in_flight.last_action()
        assert isinstance(action, DeliverBatch)
        sim.execute(action)
        # The delivery cleared the recipient's bit and queued the ACK leg.
        broadcast = sim.in_flight.broadcast_of(sim.in_flight.descriptors[-1])
        assert broadcast.undelivered_count == 4
        assert sim.in_flight.descriptors[-1] & REPLY_BIT
