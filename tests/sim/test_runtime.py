"""Runtime semantics: quorums, crashes, determinism, error paths."""

from __future__ import annotations

import pytest

from repro.adversary import EagerAdversary, RandomAdversary, SequentialAdversary
from repro.adversary.base import Adversary
from repro.sim import (
    AdversaryProtocolError,
    Collect,
    Crash,
    CrashBudgetError,
    ProcessProtocolError,
    Propagate,
    QuiescenceError,
    Simulation,
    SimulationLimitError,
    Step,
)
from repro.sim.registers import POLICY_OR


def writer_factory(value="payload"):
    def algorithm(api):
        api.put("X", api.pid, value)
        yield Propagate("X", (api.pid,))
        return "wrote"

    return algorithm


def reader_factory():
    def algorithm(api):
        views = yield Collect("X")
        return views

    return algorithm


def looper_factory():
    def algorithm(api):
        while True:
            api.put("X", api.pid, 0)
            yield Propagate("X", (api.pid,))

    return algorithm


class TestQuorumSemantics:
    def test_propagate_reaches_majority(self):
        sim = Simulation(5, {0: writer_factory("v")}, EagerAdversary(), seed=1)
        result = sim.run()
        assert result.outcomes == {0: "wrote"}
        holders = sum(
            1 for process in sim.processes if process.registers.get("X", 0) == "v"
        )
        assert holders >= 5 // 2 + 1

    def test_collect_returns_quorum_of_views(self):
        sim = Simulation(7, {3: reader_factory()}, EagerAdversary(), seed=1)
        result = sim.run()
        views = result.outcomes[3]
        assert len(views) >= 7 // 2 + 1

    def test_collect_includes_own_view(self):
        def algorithm(api):
            api.put("X", api.pid, "mine")
            views = yield Collect("X")
            return views

        sim = Simulation(5, {2: algorithm}, EagerAdversary(), seed=1)
        views = sim.run().outcomes[2]
        assert any(view.get(2) == "mine" for view in views)

    def test_sequential_calls_intersect(self):
        """A collect issued after a completed propagate must observe it —
        the quorum-intersection property every proof in the paper uses."""
        sim = Simulation(
            9,
            {0: writer_factory("seen"), 8: reader_factory()},
            SequentialAdversary(order=[0, 8]),
            seed=3,
        )
        views = sim.run().outcomes[8]
        assert any(view.get(0) == "seen" for view in views)

    def test_intersection_holds_for_every_seed(self):
        for seed in range(10):
            sim = Simulation(
                6,
                {0: writer_factory("seen"), 5: reader_factory()},
                SequentialAdversary(order=[0, 5]),
                seed=seed,
            )
            views = sim.run().outcomes[5]
            assert any(view.get(0) == "seen" for view in views)

    def test_single_processor_needs_no_remote_acks(self):
        sim = Simulation(1, {0: writer_factory()}, EagerAdversary(), seed=0)
        result = sim.run()
        assert result.outcomes == {0: "wrote"}
        assert result.metrics.messages_total == 0

    def test_two_processors_need_one_remote_ack(self):
        sim = Simulation(2, {0: writer_factory()}, EagerAdversary(), seed=0)
        result = sim.run()
        assert result.outcomes == {0: "wrote"}
        # one PROPAGATE out, one ACK back
        assert result.metrics.messages_total == 2


class TestMetrics:
    def test_message_accounting(self):
        n = 5
        sim = Simulation(n, {0: writer_factory()}, EagerAdversary(), seed=0)
        result = sim.run()
        metrics = result.metrics
        assert metrics.messages_sent_by[0] == n - 1  # the broadcast
        assert metrics.request_messages == n - 1
        assert metrics.messages_total >= (n - 1) + n // 2  # plus quorum acks
        assert metrics.comm_calls_by[0] == 1
        assert metrics.max_comm_calls == 1

    def test_summary_keys(self):
        sim = Simulation(3, {0: writer_factory()}, EagerAdversary(), seed=0)
        summary = sim.run().metrics.summary()
        for key in (
            "messages_total",
            "request_messages",
            "max_comm_calls",
            "deliveries",
            "steps",
            "crashes",
            "events_executed",
        ):
            assert key in summary

    def test_decision_interval_recorded(self):
        sim = Simulation(4, {1: writer_factory()}, EagerAdversary(), seed=0)
        result = sim.run()
        decision = result.decisions[1]
        assert 0 < decision.start_time <= decision.decide_time


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            sim = Simulation(
                6,
                {pid: writer_factory() for pid in range(3)},
                RandomAdversary(seed=seed),
                seed=seed,
            )
            result = sim.run()
            return (result.metrics.summary(), result.outcomes)

        assert run(11) == run(11)

    def test_different_seeds_usually_differ(self):
        def run(seed):
            sim = Simulation(
                6,
                {pid: writer_factory() for pid in range(3)},
                RandomAdversary(seed=seed),
                seed=seed,
            )
            return sim.run().metrics.events_executed

        assert len({run(seed) for seed in range(8)}) > 1


class TestCrashes:
    def test_default_budget(self):
        assert Simulation(9, {}, EagerAdversary()).crash_budget == 4
        assert Simulation(10, {}, EagerAdversary()).crash_budget == 4
        assert Simulation(11, {}, EagerAdversary()).crash_budget == 5

    def test_crash_budget_enforced(self):
        sim = Simulation(5, {0: writer_factory()}, EagerAdversary(), crash_budget=1)
        sim.execute(Crash(1))
        with pytest.raises(CrashBudgetError):
            sim.execute(Crash(2))

    def test_double_crash_rejected(self):
        sim = Simulation(5, {0: writer_factory()}, EagerAdversary())
        sim.execute(Crash(1))
        with pytest.raises(AdversaryProtocolError):
            sim.execute(Crash(1))

    def test_step_of_crashed_rejected(self):
        sim = Simulation(5, {0: writer_factory()}, EagerAdversary())
        sim.execute(Crash(0))
        with pytest.raises(AdversaryProtocolError):
            sim.execute(Step(0))

    def test_terminates_with_minority_responders_crashed(self):
        n = 7
        sim = Simulation(n, {0: writer_factory()}, EagerAdversary(), seed=0)
        for pid in (4, 5, 6):  # ceil(7/2) - 1 = 3 crashes allowed
            sim.execute(Crash(pid))
        result = sim.run()
        assert result.outcomes == {0: "wrote"}

    def test_majority_crash_blocks_quorum(self):
        n = 7
        sim = Simulation(
            n, {0: writer_factory()}, EagerAdversary(), seed=0, crash_budget=n
        )
        for pid in range(1, 5):  # 4 crashes: only 3 processors left
            sim.execute(Crash(pid))
        with pytest.raises(QuiescenceError):
            sim.run()

    def test_majority_crash_reported_without_require(self):
        n = 5
        sim = Simulation(
            n, {0: writer_factory()}, EagerAdversary(), seed=0, crash_budget=n
        )
        for pid in range(1, 4):
            sim.execute(Crash(pid))
        result = sim.run(require_termination=False)
        assert result.undecided == {0}
        assert not result.terminated

    def test_crashed_participant_not_awaited(self):
        sim = Simulation(
            5, {0: writer_factory(), 1: writer_factory()}, EagerAdversary(), seed=0
        )
        sim.execute(Crash(1))
        result = sim.run()
        assert result.outcomes == {0: "wrote"}
        assert 1 in result.crashed


class TestErrorPaths:
    def test_event_limit(self):
        sim = Simulation(
            3, {0: looper_factory()}, EagerAdversary(), seed=0, max_events=200
        )
        with pytest.raises(SimulationLimitError):
            sim.run()

    def test_bad_yield_rejected(self):
        def bad(api):
            yield "not-a-request"

        sim = Simulation(3, {0: bad}, EagerAdversary(), seed=0)
        with pytest.raises(ProcessProtocolError):
            sim.run()

    def test_participant_pid_out_of_range(self):
        with pytest.raises(ValueError):
            Simulation(3, {7: writer_factory()}, EagerAdversary())

    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            Simulation(0, {}, EagerAdversary())

    def test_unknown_action_rejected(self):
        sim = Simulation(3, {0: writer_factory()}, EagerAdversary())
        with pytest.raises(AdversaryProtocolError):
            sim.execute("deliver-everything")

    def test_adversary_passing_while_enabled(self):
        class Lazy(Adversary):
            def choose(self, sim):
                return None

        sim = Simulation(3, {0: writer_factory()}, Lazy(), seed=0)
        with pytest.raises(AdversaryProtocolError):
            sim.run()


class TestResponders:
    def test_non_participants_reply_but_never_decide(self):
        sim = Simulation(6, {2: reader_factory()}, EagerAdversary(), seed=0)
        result = sim.run()
        assert set(result.decisions) == {2}
        # Responders never invoked an algorithm.
        for process in sim.processes:
            if process.pid != 2:
                assert process.coroutine is None

    def test_decided_participants_keep_replying(self):
        """After a participant decides, it still serves collects — required
        by the model (processors assist even after returning)."""
        sim = Simulation(
            4,
            {0: writer_factory("early"), 1: reader_factory()},
            SequentialAdversary(order=[0, 1]),
            seed=0,
        )
        views = sim.run().outcomes[1]
        assert any(view.get(0) == "early" for view in views)


class TestRegisterPolicyIntegration:
    def test_or_policy_spreads_sticky_flag(self):
        def setter(api):
            api.put("Flag", 0, True, policy=POLICY_OR)
            yield Propagate("Flag", (0,))
            return True

        def checker(api):
            views = yield Collect("Flag")
            return any(view.get(0, False) for view in views)

        sim = Simulation(
            5,
            {0: setter, 4: checker},
            SequentialAdversary(order=[0, 4]),
            seed=0,
        )
        result = sim.run()
        assert result.outcomes[4] is True
