"""Record/replay round trips: every adversary must replay byte-identically.

The determinism contract (ROADMAP E4, :mod:`repro.obs.replay`) is that a
trace — seed plus the recorded action schedule — fully determines a run.
These tests record a leader election under each registered adversary,
re-drive it with the :class:`ScriptedAdversary`, and require the rerun's
event stream to match the recording byte for byte.
"""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARY_FACTORIES
from repro.obs.jsonl import read_trace
from repro.obs.replay import (
    ReplayError,
    ScriptedAdversary,
    extract_schedule,
    record_trace,
    replay_trace,
)


@pytest.mark.parametrize("adversary", sorted(ADVERSARY_FACTORIES))
def test_elect_replays_byte_identically(tmp_path, adversary):
    path = str(tmp_path / f"elect-{adversary}.jsonl")
    recorded = record_trace(path, task="elect", n=8, adversary=adversary, seed=3)
    assert recorded.events > 0
    report = replay_trace(path)
    assert report.ok, report.describe()
    assert report.recorded_events == recorded.events
    assert report.run.winner == recorded.run.winner


@pytest.mark.parametrize("task", ["sift", "rename"])
def test_other_tasks_replay(tmp_path, task):
    path = str(tmp_path / f"{task}.jsonl")
    record_trace(path, task=task, n=8, adversary="random", seed=1)
    report = replay_trace(path)
    assert report.ok, report.describe()


def test_replay_uses_recorded_schedule_not_fresh_randomness(tmp_path):
    # Record under the random adversary, then confirm the replay consumes
    # exactly the recorded schedule — the scripted adversary ends drained.
    path = str(tmp_path / "sched.jsonl")
    record_trace(path, task="elect", n=8, adversary="random", seed=9)
    _, objects = read_trace(path)
    schedule = extract_schedule(objects)
    assert schedule, "a run must contain scheduling events"
    scripted = ScriptedAdversary(schedule)
    assert scripted.remaining == len(schedule)
    report = replay_trace(path)
    assert report.ok


def test_tampered_trace_is_detected(tmp_path):
    path = str(tmp_path / "tampered.jsonl")
    record_trace(path, task="elect", n=8, adversary="sequential", seed=0)
    lines = open(path).read().splitlines()
    # Drop one non-scheduling event line from the middle of the stream:
    # the replay stream then has more events than the recording.
    victim = next(
        i for i, line in enumerate(lines[1:], start=1) if '"e":"coin.' in line
    )
    del lines[victim]
    open(path, "w").write("\n".join(lines) + "\n")
    report = replay_trace(path)
    assert not report.ok


def test_meta_header_required(tmp_path):
    path = tmp_path / "bare.jsonl"
    path.write_text('{"t":0,"e":"sched.step","p":0,"f":{}}\n')
    with pytest.raises(ReplayError):
        replay_trace(str(path))


def test_unknown_task_rejected(tmp_path):
    with pytest.raises(ReplayError):
        record_trace(str(tmp_path / "x.jsonl"), task="nope", n=4)
