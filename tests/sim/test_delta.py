"""Delta propagation must be invisible: full and delta runs are identical.

The tentpole optimization (per-``(var, recipient)`` high-water marks that
shrink PROPAGATE payloads) is only sound if it is *unobservable*: for any
adversary and seed, the run with ``delta_propagation=True`` must produce a
byte-identical event stream, equal metrics, and the same outcomes as the
run with full payloads.  These tests pin that contract across every
registered adversary, and separately pin the pieces it is built from —
the ACK-driven :class:`DeltaTracker` watermarks and the copy-on-write
guarantee that held broadcast payloads never observe later writes.
"""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARY_FACTORIES
from repro.harness.runners import (
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)
from repro.obs.events import ListSink
from repro.obs.jsonl import event_line
from repro.sim.registers import DeltaTracker, RegisterFile


def _elect_stream(adversary: str, seed: int, delta: bool):
    """One recorded election: (JSONL lines, metrics summary, winner)."""
    sink = ListSink()
    run = run_leader_election(
        n=16, adversary=adversary, seed=seed, sink=sink,
        delta_propagation=delta,
    )
    lines = [event_line(event) for event in sink.events]
    return lines, run.result.metrics.summary(), run.winner


class TestFullVsDeltaEquivalence:
    """Satellite: the delta fast path never changes an execution."""

    @pytest.mark.parametrize("adversary", sorted(ADVERSARY_FACTORIES))
    def test_elect_byte_identical_across_modes(self, adversary):
        full = _elect_stream(adversary, seed=3, delta=False)
        delta = _elect_stream(adversary, seed=3, delta=True)
        assert full[0] == delta[0]  # byte-identical event streams
        assert full[1] == delta[1]  # equal Metrics
        assert full[2] == delta[2]  # same winner

    def test_sift_and_rename_identical_across_modes(self):
        for task, runner, headline in (
            ("sift", run_sifting_phase, lambda r: r.survivors),
            ("rename", run_renaming, lambda r: dict(r.names)),
        ):
            streams = []
            for delta in (False, True):
                sink = ListSink()
                run = runner(
                    n=16, adversary="random", seed=5, sink=sink,
                    delta_propagation=delta,
                )
                streams.append((
                    [event_line(event) for event in sink.events],
                    run.result.metrics.summary(),
                    headline(run),
                ))
            assert streams[0] == streams[1], f"{task} diverged across modes"

    def test_no_sink_metrics_identical_across_modes(self):
        # The batched (sink-free) accounting path must agree with full mode
        # just like the per-message path does.
        runs = [
            run_leader_election(
                n=32, adversary="random", seed=7, delta_propagation=delta
            )
            for delta in (False, True)
        ]
        summaries = [run.result.metrics.summary() for run in runs]
        assert summaries[0] == summaries[1]
        assert runs[0].winner == runs[1].winner
        assert runs[0].rounds == runs[1].rounds


class TestDeltaActuallySuppresses:
    """The optimization must do real work, not just stay invisible.

    Renaming is the workload with genuine re-propagation: sticky
    ``Contended`` flags are re-shipped round after round (renaming lines
    37/41), and once a recipient acked them they stay unchanged — exactly
    the cells the delta layer exists to suppress.
    """

    @staticmethod
    def _run_simulation(delta: bool):
        from repro.adversary import RandomAdversary
        from repro.core import make_get_name
        from repro.sim.runtime import Simulation

        factory = make_get_name()
        sim = Simulation(
            n=16,
            participants={pid: factory for pid in range(16)},
            adversary=RandomAdversary(seed=11),
            seed=11,
            delta_propagation=delta,
        )
        sim.run()
        return sim

    def test_delta_mode_suppresses_cells(self):
        sim = self._run_simulation(delta=True)
        stats = sim.delta_stats
        assert stats["cells_suppressed"] > 0
        assert stats["delta_payloads"] + stats["empty_payloads"] > 0
        # Logical accounting is untouched: payload_cells still counts what
        # full propagation would have shipped, so it exceeds the physical
        # volume by exactly the suppressed cells.
        assert sim.metrics.payload_cells > 0

    def test_full_mode_reports_zero_savings(self):
        sim = self._run_simulation(delta=False)
        assert sim.delta_stats == {
            "full_payloads": 0,
            "delta_payloads": 0,
            "empty_payloads": 0,
            "cells_suppressed": 0,
        }


ENTRY_A1 = (1, "a1", "v")
ENTRY_B1 = (1, "b1", "v")
ENTRY_B2 = (2, "b2", "v")


class TestDeltaTracker:
    """Unit semantics of the ACK-driven watermark bookkeeping."""

    def test_first_send_is_full(self):
        tracker = DeltaTracker()
        full = {0: ENTRY_A1, 1: ENTRY_B1}
        ticks = {0: 1, 1: 2}
        tracker.begin_call(1, "v", full, ticks)
        payload = tracker.payload_for(5, "v", full, ticks, {})
        assert payload is full
        assert tracker.full_payloads == 1

    def test_unacked_send_does_not_advance_watermarks(self):
        # Send twice with no ACK in between: the second payload must still
        # be full — an in-flight payload proves nothing about the recipient.
        tracker = DeltaTracker()
        full = {0: ENTRY_A1}
        ticks = {0: 1}
        tracker.begin_call(1, "v", full, ticks)
        tracker.payload_for(5, "v", full, ticks, {})
        tracker.begin_call(2, "v", full, ticks)
        assert tracker.payload_for(5, "v", full, ticks, {}) is full

    def test_acked_unchanged_cells_are_suppressed(self):
        tracker = DeltaTracker()
        full = {0: ENTRY_A1, 1: ENTRY_B1}
        ticks = {0: 1, 1: 2}
        tracker.begin_call(1, "v", full, ticks)
        tracker.on_ack(5, 1)
        # Nothing changed since the acked call: the whole payload vanishes.
        payload = tracker.payload_for(5, "v", full, ticks, {})
        assert payload == {}
        assert tracker.empty_payloads == 1
        assert tracker.cells_suppressed == 2
        # A different recipient never acked: still full.
        assert tracker.payload_for(6, "v", full, ticks, {}) is full

    def test_changed_cell_reappears_in_delta(self):
        tracker = DeltaTracker()
        full = {0: ENTRY_A1, 1: ENTRY_B1}
        ticks = {0: 1, 1: 2}
        tracker.begin_call(1, "v", full, ticks)
        tracker.on_ack(5, 1)
        # Key 1 changed (tick 2 -> 3): only it ships.
        full2 = {0: ENTRY_A1, 1: ENTRY_B2}
        ticks2 = {0: 1, 1: 3}
        tracker.begin_call(2, "v", full2, ticks2)
        payload = tracker.payload_for(5, "v", full2, ticks2, {})
        assert payload == {1: ENTRY_B2}
        assert tracker.delta_payloads == 1

    def test_stale_ack_still_advances_watermarks(self):
        # An ACK for a long-resolved call proves the merge happened; the
        # tracker must honour it even though the pending call is gone.
        tracker = DeltaTracker()
        full = {0: ENTRY_A1}
        ticks = {0: 1}
        tracker.begin_call(1, "v", full, ticks)
        tracker.begin_call(2, "v", full, ticks)  # call 1 resolved meanwhile
        tracker.on_ack(5, 1)  # stale: arrives after call 1 resolved
        assert tracker.payload_for(5, "v", full, ticks, {}) == {}

    def test_unknown_ack_is_ignored(self):
        tracker = DeltaTracker()
        tracker.on_ack(5, 999)  # not a call this tracker began
        full = {0: ENTRY_A1}
        assert tracker.payload_for(5, "v", full, {0: 1}, {}) is full

    def test_cache_shares_identical_masks(self):
        tracker = DeltaTracker()
        full = {0: ENTRY_A1, 1: ENTRY_B1}
        ticks = {0: 1, 1: 2}
        tracker.begin_call(1, "v", full, ticks)
        tracker.on_ack(5, 1)
        tracker.on_ack(6, 1)
        full2 = {0: ENTRY_A1, 1: ENTRY_B2}
        ticks2 = {0: 1, 1: 3}
        tracker.begin_call(2, "v", full2, ticks2)
        cache: dict = {}
        payload5 = tracker.payload_for(5, "v", full2, ticks2, cache)
        payload6 = tracker.payload_for(6, "v", full2, ticks2, cache)
        assert payload5 is payload6  # one shared mapping per mask
        assert len(cache) == 1


class TestCopyOnWriteUnderDelta:
    """Satellite: held broadcast payloads never observe later writes.

    Delta mode leans harder on payload sharing (one mapping can sit in
    many in-flight messages while the sender keeps writing), so the COW
    contract of ``RegisterFile.entries`` is pinned here under exactly
    that usage pattern.
    """

    def test_held_payload_frozen_across_later_puts(self):
        registers = RegisterFile()
        registers.put("v", 0, "first")
        payload = registers.entries("v")  # broadcast payload, shared
        registers.put("v", 0, "second")
        registers.put("v", 1, "new-cell")
        assert payload[0][1] == "first"
        assert 1 not in payload
        assert registers.get("v", 0) == "second"

    def test_held_payload_frozen_across_merge(self):
        registers = RegisterFile()
        registers.put("v", 0, "mine")
        payload = registers.entries("v")
        registers.merge("v", {1: (1, "theirs", "v")})
        assert dict(payload) == {0: payload[0]}
        assert registers.get("v", 1) == "theirs"

    def test_mod_ticks_track_changes_not_rewrites(self):
        registers = RegisterFile()
        registers.put("door", 0, True, policy="o")
        tick = registers.mod_ticks("door")[0]
        # Re-asserting a sticky OR flag stores an equal entry: no change,
        # no tick bump — the delta layer may keep suppressing the cell.
        registers.put("door", 0, True, policy="o")
        assert registers.mod_ticks("door")[0] == tick
        registers.merge("door", {0: (1, True, "o")})
        assert registers.mod_ticks("door")[0] == tick

    def test_remerging_shared_payload_does_not_copy(self):
        registers = RegisterFile()
        registers.put("v", 0, "x")
        payload = registers.entries("v")
        # Merging an already-absorbed payload back in is a no-op and must
        # not trigger the copy-on-write path (no tick bump either).
        ticks_before = dict(registers.mod_ticks("v"))
        registers.merge("v", payload)
        assert registers.entries("v") is payload
        assert dict(registers.mod_ticks("v")) == ticks_before

    def test_value_view_snapshot_semantics(self):
        registers = RegisterFile()
        registers.put("v", 0, "old")
        view_one = registers.value_view("v")
        assert registers.value_view("v") is view_one  # memoized per epoch
        registers.put("v", 0, "new")
        view_two = registers.value_view("v")
        assert view_one == {0: "old"}  # held snapshot untouched
        assert view_two == {0: "new"}
