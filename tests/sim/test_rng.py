"""Unit tests for deterministic seed derivation and coin logging."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import CoinLog, derive_seed, make_stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "proc/1") == derive_seed(42, "proc/1")

    def test_different_names_differ(self):
        assert derive_seed(42, "proc/1") != derive_seed(42, "proc/2")

    def test_different_masters_differ(self):
        assert derive_seed(1, "proc/1") != derive_seed(2, "proc/1")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(7, "x") < 2**64

    @given(st.integers(), st.text(max_size=32))
    def test_stable_under_hypothesis(self, master, name):
        assert derive_seed(master, name) == derive_seed(master, name)


class TestMakeStream:
    def test_streams_reproducible(self):
        first = [make_stream(9, "a").random() for _ in range(5)]
        second = [make_stream(9, "a").random() for _ in range(5)]
        # Each call creates a fresh stream seeded identically.
        assert first[0] == second[0]

    def test_streams_independent(self):
        stream_a = make_stream(9, "a")
        stream_b = make_stream(9, "b")
        assert [stream_a.random() for _ in range(3)] != [
            stream_b.random() for _ in range(3)
        ]


class TestCoinLog:
    def test_empty_log(self):
        log = CoinLog()
        assert log.last() is None
        assert log.last_value("coin") is None
        assert len(log) == 0

    def test_record_and_last(self):
        log = CoinLog()
        log.record("a", 1)
        log.record("b", 0)
        assert log.last() == ("b", 0)
        assert len(log) == 2

    def test_last_value_filters_by_label(self):
        log = CoinLog()
        log.record("x", 1)
        log.record("y", 0)
        log.record("x", 0)
        assert log.last_value("x") == 0
        assert log.last_value("y") == 0
        assert log.last_value("z") is None

    def test_all_preserves_order(self):
        log = CoinLog()
        entries = [("a", 1), ("b", 0), ("c", 1)]
        for label, value in entries:
            log.record(label, value)
        assert list(log.all()) == entries
