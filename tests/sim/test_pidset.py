"""Unit tests for the pidset bitmask encoding."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import pidset

pid_sets = st.frozensets(st.integers(min_value=0, max_value=300), max_size=20)


class TestRoundTrip:
    @given(pid_sets)
    def test_from_iterable_to_frozenset(self, pids):
        assert pidset.to_frozenset(pidset.from_iterable(pids)) == pids

    @given(pid_sets)
    def test_popcount_matches_len(self, pids):
        assert pidset.popcount(pidset.from_iterable(pids)) == len(pids)

    @given(pid_sets)
    def test_iter_bits_ascending(self, pids):
        assert list(pidset.iter_bits(pidset.from_iterable(pids))) == sorted(pids)


class TestSetAlgebra:
    @given(pid_sets, pid_sets)
    def test_union(self, a, b):
        bits = pidset.union(pidset.from_iterable(a), pidset.from_iterable(b))
        assert pidset.to_frozenset(bits) == a | b

    @given(st.lists(pid_sets, max_size=5))
    def test_union_all(self, sets):
        bits = pidset.union_all(pidset.from_iterable(s) for s in sets)
        assert pidset.to_frozenset(bits) == frozenset().union(*sets)

    @given(pid_sets, pid_sets)
    def test_is_subset(self, a, b):
        assert pidset.is_subset(
            pidset.from_iterable(a), pidset.from_iterable(b)
        ) == (a <= b)

    @given(pid_sets, st.integers(min_value=0, max_value=300))
    def test_contains_add_discard(self, pids, pid):
        bits = pidset.from_iterable(pids)
        assert pidset.contains(bits, pid) == (pid in pids)
        assert pidset.contains(pidset.add(bits, pid), pid)
        assert not pidset.contains(pidset.discard(bits, pid), pid)


class TestEdges:
    def test_empty(self):
        assert pidset.EMPTY == 0
        assert pidset.popcount(pidset.EMPTY) == 0
        assert list(pidset.iter_bits(pidset.EMPTY)) == []
        assert pidset.to_frozenset(pidset.EMPTY) == frozenset()
        assert pidset.is_subset(pidset.EMPTY, pidset.EMPTY)

    def test_singleton(self):
        assert pidset.singleton(0) == 1
        assert pidset.singleton(64) == 1 << 64
        assert pidset.to_frozenset(pidset.singleton(4095)) == {4095}

    def test_large_n_is_compact(self):
        """At n = 4096 the full set is a single ~512-byte int."""
        full = pidset.from_iterable(range(4096))
        assert pidset.popcount(full) == 4096
        assert full.bit_length() == 4096
