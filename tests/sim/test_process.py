"""Unit tests for the process runtime state and the algorithm-facing API."""

from __future__ import annotations

import pytest

from repro.sim.process import Process, ProcessAPI, ProcessStatus
from repro.sim.rng import make_stream


def dummy_algorithm(api):
    yield  # pragma: no cover - never driven in these tests


def make_process(pid=0, n=4, factory=dummy_algorithm):
    return Process(pid, n, make_stream(0, f"proc/{pid}"), factory)


class TestProcess:
    def test_participant_starts_idle(self):
        process = make_process()
        assert process.status is ProcessStatus.IDLE
        assert process.is_participant
        assert process.alive
        assert not process.decided

    def test_responder_without_factory(self):
        process = Process(1, 4, make_stream(0, "proc/1"), None)
        assert process.status is ProcessStatus.RESPONDER
        assert not process.is_participant

    def test_start_transitions_to_running(self):
        process = make_process()
        coroutine = process.start()
        assert process.status is ProcessStatus.RUNNING
        assert process.coroutine is coroutine


class TestProcessAPI:
    def test_identity(self):
        api = ProcessAPI(make_process(pid=3, n=9))
        assert api.pid == 3
        assert api.n == 9

    def test_put_get_view(self):
        api = ProcessAPI(make_process())
        api.put("Status", 0, "commit")
        assert api.get("Status", 0) == "commit"
        assert api.get("Status", 5, default="none") == "none"
        assert api.view("Status") == {0: "commit"}

    def test_flip_logs_coin(self):
        process = make_process()
        api = ProcessAPI(process)
        value = api.flip(0.5, label="test.coin")
        assert value in (0, 1)
        assert process.coins.last() == ("test.coin", value)

    def test_flip_extreme_biases(self):
        api = ProcessAPI(make_process())
        assert all(api.flip(1.0) == 1 for _ in range(10))
        assert all(api.flip(0.0) == 0 for _ in range(10))

    def test_flip_reproducible_across_processes_with_same_stream(self):
        first = ProcessAPI(make_process(pid=0))
        second = ProcessAPI(make_process(pid=0))
        assert [first.flip(0.5) for _ in range(20)] == [
            second.flip(0.5) for _ in range(20)
        ]

    def test_choice_logs_index(self):
        process = make_process()
        api = ProcessAPI(process)
        options = ["a", "b", "c"]
        picked = api.choice(options, label="spot")
        label, index = process.coins.last()
        assert label == "spot"
        assert options[index] == picked

    def test_choice_empty_rejected(self):
        api = ProcessAPI(make_process())
        with pytest.raises(ValueError):
            api.choice([])

    def test_choice_roughly_uniform(self):
        api = ProcessAPI(make_process())
        counts = {0: 0, 1: 0, 2: 0}
        for _ in range(600):
            counts[api.choice([0, 1, 2])] += 1
        assert all(count > 120 for count in counts.values())
