"""Tests for the payload-size (bit-complexity proxy) metric.

Section 6 of the paper raises bit complexity as future work; the
simulator tracks the number of register cells shipped per message so the
benchmarks can report it alongside message counts.
"""

from __future__ import annotations

from repro.adversary import EagerAdversary
from repro.sim import Collect, Propagate, Simulation
from repro.sim.trace import Metrics
from repro.sim.messages import MessageKind


def test_record_send_accumulates_cells():
    metrics = Metrics(2)
    metrics.record_send(0, MessageKind.PROPAGATE, cells=3)
    metrics.record_send(1, MessageKind.COLLECT_REPLY, cells=2)
    metrics.record_send(0, MessageKind.ACK)
    assert metrics.payload_cells == 5


def test_propagate_ships_selected_cells_only():
    def algorithm(api):
        api.put("X", api.pid, 1)
        api.put("X", 99, 2)
        yield Propagate("X", (api.pid,))  # one cell to each of n-1 peers
        return True

    n = 5
    sim = Simulation(n, {0: algorithm}, EagerAdversary(), seed=0)
    result = sim.run()
    assert result.metrics.payload_cells == n - 1


def test_collect_replies_ship_whole_views():
    def writer(api):
        api.put("X", api.pid, 1)
        yield Propagate("X", (api.pid,))
        return True

    def reader(api):
        views = yield Collect("X")
        return len(views)

    from repro.adversary import SequentialAdversary

    n = 4
    sim = Simulation(
        n, {0: writer, 1: reader}, SequentialAdversary(order=[0, 1]), seed=0
    )
    result = sim.run()
    # writer ships n-1 cells; each replier that saw the value ships 1 cell
    # back; repliers that had nothing ship 0.
    assert result.metrics.payload_cells >= n - 1
    assert "payload_cells" in result.metrics.summary()


def test_ack_messages_carry_no_payload():
    def algorithm(api):
        api.put("X", api.pid, 1)
        yield Propagate("X", (api.pid,))
        return True

    sim = Simulation(3, {0: algorithm}, EagerAdversary(), seed=0)
    result = sim.run()
    # 2 propagates with 1 cell each; acks contribute nothing.
    assert result.metrics.payload_cells == 2
    assert result.metrics.messages_by_kind[MessageKind.ACK] == 2
