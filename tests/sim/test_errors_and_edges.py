"""Edge cases: error hierarchy, stale replies, re-running, degenerate sizes."""

from __future__ import annotations

import pytest

from repro.adversary import EagerAdversary
from repro.sim import (
    AdversaryProtocolError,
    Collect,
    CrashBudgetError,
    ProcessProtocolError,
    Propagate,
    QuiescenceError,
    Simulation,
    SimulationError,
    SimulationLimitError,
    Step,
)
from repro.sim.messages import Message, MessageKind


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SimulationLimitError,
            QuiescenceError,
            AdversaryProtocolError,
            CrashBudgetError,
            ProcessProtocolError,
        ],
    )
    def test_all_derive_from_simulation_error(self, exc):
        assert issubclass(exc, SimulationError)
        assert issubclass(exc, Exception)


class TestStaleReplies:
    def test_stale_ack_is_discarded(self):
        """An ACK arriving for an already-resolved call must not corrupt
        the next outstanding call's quorum count."""

        def algorithm(api):
            api.put("X", api.pid, 1)
            yield Propagate("X", (api.pid,))
            views = yield Collect("X")
            return len(views)

        # Hand-driven over Message objects: force the materialized plane.
        sim = Simulation(
            5, {0: algorithm}, EagerAdversary(), seed=0, batch_messages=False
        )
        # Drive manually: start 0, deliver its propagates (acks flow back),
        # resolve, then deliver leftover acks against the collect call.
        sim.execute(Step(0))
        guard = 0
        while sim.undecided and guard < 10_000:
            guard += 1
            # Always deliver the OLDEST message first to maximize staleness.
            pool = sim.in_flight.messages
            if pool:
                oldest = min(pool, key=lambda m: m.uid)
                from repro.sim import Deliver

                sim.execute(Deliver(oldest))
            elif sim.steppable:
                sim.execute(Step(min(sim.steppable)))
        result = sim._result()
        assert result.outcomes[0] >= 5 // 2 + 1

    def test_reply_to_nonexistent_call_ignored(self):
        sim = Simulation(3, {}, EagerAdversary(), seed=0, batch_messages=False)
        stray = Message(
            sender=1, recipient=0, kind=MessageKind.ACK, call_id=999, var="X"
        )
        sim.in_flight.add(stray)
        from repro.sim import Deliver

        sim.execute(Deliver(stray))  # must not raise
        assert len(sim.in_flight) == 0


class TestRunLifecycle:
    def test_run_after_completion_is_idempotent(self):
        def algorithm(api):
            api.put("X", api.pid, 1)
            yield Propagate("X", (api.pid,))
            return "ok"

        sim = Simulation(3, {0: algorithm}, EagerAdversary(), seed=0)
        first = sim.run()
        second = sim.run()
        assert first.outcomes == second.outcomes == {0: "ok"}

    def test_no_participants_returns_immediately(self):
        sim = Simulation(4, {}, EagerAdversary(), seed=0)
        result = sim.run()
        assert result.terminated
        assert result.decisions == {}
        assert result.metrics.events_executed == 0


class TestDegenerateSizes:
    def test_n_one_collect(self):
        def algorithm(api):
            api.put("X", 0, "solo")
            views = yield Collect("X")
            return views

        sim = Simulation(1, {0: algorithm}, EagerAdversary(), seed=0)
        views = sim.run().outcomes[0]
        assert views == [{0: "solo"}]

    def test_n_two_full_protocol(self):
        from repro.core import make_leader_elect
        from repro.analysis.checkers import check_leader_election

        sim = Simulation(
            2,
            {0: make_leader_elect(), 1: make_leader_elect()},
            EagerAdversary(),
            seed=0,
        )
        result = sim.run()
        check_leader_election(result)

    def test_crash_budget_zero_for_tiny_systems(self):
        assert Simulation(1, {}, EagerAdversary()).crash_budget == 0
        assert Simulation(2, {}, EagerAdversary()).crash_budget == 0
        assert Simulation(3, {}, EagerAdversary()).crash_budget == 1
