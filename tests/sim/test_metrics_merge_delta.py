"""Direct coverage for ``Metrics.merge`` under delta propagation.

Sweep workers merge per-run ``Metrics`` accumulators, and delta mode is
the default — so merged counters from delta-mode runs must be
indistinguishable from full-mode ones (logical accounting), while the
*physical* savings stay quarantined in ``Simulation.delta_stats`` and
never leak into a merge.  Previously this was only exercised indirectly
through sweep outputs; these tests pin it at the unit level.
"""

from __future__ import annotations

from repro.adversary import RandomAdversary
from repro.core import make_get_name
from repro.sim.messages import MessageKind
from repro.sim.runtime import Simulation
from repro.sim.trace import Metrics


def _run_simulation(n: int, seed: int, delta: bool) -> Simulation:
    """One completed renaming run with delta propagation on or off."""
    factory = make_get_name()
    sim = Simulation(
        n=n,
        participants={pid: factory for pid in range(n)},
        adversary=RandomAdversary(seed=seed),
        seed=seed,
        delta_propagation=delta,
    )
    sim.run()
    return sim


class TestMergeAcrossDeltaModes:
    """Merged logical counters are mode-blind; physical stats are not."""

    def test_merge_of_delta_runs_equals_merge_of_full_runs(self):
        seeds = (3, 4)
        merged = {}
        for delta in (False, True):
            accumulator = Metrics(0)
            for seed in seeds:
                accumulator.merge(_run_simulation(8, seed, delta).metrics)
            merged[delta] = accumulator.summary()
        assert merged[True] == merged[False]

    def test_merge_sums_every_counter(self):
        sims = [_run_simulation(8, seed, delta=True) for seed in (3, 4)]
        accumulator = Metrics(0)
        for sim in sims:
            accumulator.merge(sim.metrics)
        assert accumulator.messages_total == sum(
            sim.metrics.messages_total for sim in sims
        )
        assert accumulator.payload_cells == sum(
            sim.metrics.payload_cells for sim in sims
        )
        for kind in MessageKind:
            assert accumulator.messages_by_kind[kind] == sum(
                sim.metrics.messages_by_kind[kind] for sim in sims
            )
        for pid in range(8):
            assert accumulator.comm_calls_by[pid] == sum(
                sim.metrics.comm_calls_by[pid] for sim in sims
            )

    def test_merge_pads_across_system_sizes(self):
        small = _run_simulation(4, 2, delta=True)
        large = _run_simulation(8, 2, delta=True)
        accumulator = Metrics(0)
        accumulator.merge(small.metrics).merge(large.metrics)
        assert len(accumulator.messages_sent_by) == 8
        assert len(accumulator.comm_calls_by) == 8
        for pid in range(4, 8):
            assert (
                accumulator.messages_sent_by[pid]
                == large.metrics.messages_sent_by[pid]
            )

    def test_merge_returns_self_for_chaining(self):
        accumulator = Metrics(0)
        assert accumulator.merge(Metrics(0)) is accumulator


class TestDeltaStatsStayPhysical:
    """delta_stats reports savings without touching logical metrics."""

    def test_delta_run_suppresses_but_reports_full_logical_cells(self):
        full = _run_simulation(8, 5, delta=False)
        delta = _run_simulation(8, 5, delta=True)
        assert delta.metrics.summary() == full.metrics.summary()
        assert delta.delta_stats["cells_suppressed"] > 0
        assert full.delta_stats == {
            "full_payloads": 0,
            "delta_payloads": 0,
            "empty_payloads": 0,
            "cells_suppressed": 0,
        }

    def test_merged_metrics_never_see_physical_savings(self):
        # payload_cells after a merge of delta runs equals the logical
        # sum; the suppressed cells live only in each sim's delta_stats.
        sims = [_run_simulation(8, seed, delta=True) for seed in (5, 6)]
        accumulator = Metrics(0)
        for sim in sims:
            accumulator.merge(sim.metrics)
        suppressed = sum(sim.delta_stats["cells_suppressed"] for sim in sims)
        assert suppressed > 0
        assert accumulator.payload_cells == sum(
            sim.metrics.payload_cells for sim in sims
        )
