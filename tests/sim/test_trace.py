"""Unit tests for metrics aggregation and event tracing."""

from __future__ import annotations

from repro.adversary import EagerAdversary
from repro.sim import Collect, Propagate, Simulation
from repro.sim.messages import MessageKind
from repro.sim.trace import Metrics, Trace


class TestMetrics:
    def test_initial_state(self):
        metrics = Metrics(4)
        assert metrics.messages_total == 0
        assert metrics.max_comm_calls == 0
        assert metrics.request_messages == 0
        assert all(count == 0 for count in metrics.messages_sent_by)

    def test_record_send(self):
        metrics = Metrics(4)
        metrics.record_send(2, MessageKind.PROPAGATE)
        metrics.record_send(2, MessageKind.ACK)
        assert metrics.messages_total == 2
        assert metrics.messages_sent_by[2] == 2
        assert metrics.request_messages == 1

    def test_record_send_batch_equals_repeated_sends(self):
        batched = Metrics(4)
        unbatched = Metrics(4)
        batched.record_send_batch(1, MessageKind.PROPAGATE, cells=3, count=5)
        for _ in range(5):
            unbatched.record_send(1, MessageKind.PROPAGATE, cells=3)
        assert batched.summary() == unbatched.summary()
        assert batched.messages_sent_by == unbatched.messages_sent_by
        assert batched.messages_by_kind == unbatched.messages_by_kind

    def test_record_comm_call(self):
        metrics = Metrics(4)
        metrics.record_comm_call(1)
        metrics.record_comm_call(1)
        metrics.record_comm_call(3)
        assert metrics.comm_calls_by == [0, 2, 0, 1]
        assert metrics.max_comm_calls == 2

    def test_max_comm_calls_empty_system(self):
        assert Metrics(0).max_comm_calls == 0


class TestTrace:
    def test_disabled_by_default(self):
        trace = Trace()
        trace.record(1, "step", 0)
        assert trace.events == []

    def test_enabled_records(self):
        trace = Trace(enabled=True)
        trace.record(1, "step", 0)
        trace.record(2, "deliver", 1, "detail")
        assert len(trace.events) == 2
        assert trace.of_kind("step")[0].pid == 0
        assert trace.of_kind("deliver")[0].detail == "detail"

    def test_simulation_trace_contains_lifecycle(self):
        def algorithm(api):
            api.put("X", api.pid, 1)
            yield Propagate("X", (api.pid,))
            views = yield Collect("X")
            return len(views)

        sim = Simulation(3, {0: algorithm}, EagerAdversary(), record_events=True)
        result = sim.run()
        kinds = {event.kind for event in result.trace.events}
        assert {"start", "step", "comm", "deliver", "decide"} <= kinds
        starts = result.trace.of_kind("start")
        decides = result.trace.of_kind("decide")
        assert len(starts) == 1 and len(decides) == 1
        assert starts[0].time <= decides[0].time

    def test_comm_events_match_metrics(self):
        def algorithm(api):
            api.put("X", api.pid, 1)
            yield Propagate("X", (api.pid,))
            yield Collect("X")
            return True

        sim = Simulation(3, {0: algorithm}, EagerAdversary(), record_events=True)
        result = sim.run()
        assert len(result.trace.of_kind("comm")) == result.metrics.comm_calls_by[0]
