"""Tests for sweep aggregation and table rendering."""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepCell, cell_table, repeat, sweep
from repro.harness.tables import Table, render_series


class TestRepeat:
    def test_runs_requested_times(self):
        seeds = repeat(lambda seed: seed, repeats=4, seed_base=1)
        assert len(seeds) == 4

    def test_seeds_distinct_and_reproducible(self):
        first = repeat(lambda seed: seed, repeats=5, seed_base=1)
        second = repeat(lambda seed: seed, repeats=5, seed_base=1)
        assert first == second
        assert len(set(first)) == 5

    def test_different_bases_differ(self):
        assert repeat(lambda s: s, 3, seed_base=1) != repeat(lambda s: s, 3, seed_base=2)

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            repeat(lambda s: s, repeats=0)


class TestSweep:
    def test_one_cell_per_value(self):
        cells = sweep([2, 4, 8], lambda value, seed: value * 2, repeats=3)
        assert [cell.param for cell in cells] == [2, 4, 8]
        assert all(len(cell.runs) == 3 for cell in cells)

    def test_fn_receives_value_and_seed(self):
        cells = sweep([10], lambda value, seed: (value, seed), repeats=2)
        values = {run[0] for run in cells[0].runs}
        seeds = {run[1] for run in cells[0].runs}
        assert values == {10}
        assert len(seeds) == 2

    def test_cell_metric_summary(self):
        cell = SweepCell(param=1, runs=(1.0, 3.0, 5.0))
        summary = cell.metric(lambda run: run)
        assert summary.mean == pytest.approx(3.0)

    def test_cell_table(self):
        cells = sweep([1, 2], lambda value, seed: value * 10.0, repeats=2)
        rows = cell_table(cells, {"value": lambda run: run})
        assert rows[0]["param"] == 1
        assert rows[0]["value"].mean == pytest.approx(10.0)
        assert rows[1]["value"].mean == pytest.approx(20.0)

    def test_seeds_vary_across_values(self):
        cells = sweep([1, 2], lambda value, seed: seed, repeats=1)
        assert cells[0].runs != cells[1].runs


class TestTable:
    def test_render_contains_data(self):
        table = Table("Demo", ["n", "time"])
        table.add_row(8, 1.25)
        table.add_row(16, 2.5)
        text = table.render()
        assert "Demo" in text
        assert "1.25" in text
        assert "16" in text

    def test_row_arity_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_large_numbers_grouped(self):
        table = Table("Demo", ["messages"])
        table.add_row(1234567)
        assert "1,234,567" in table.render()

    def test_notes_rendered(self):
        table = Table("Demo", ["a"])
        table.add_row(1)
        table.add_note("shape only")
        assert "note: shape only" in table.render()

    def test_show_prints(self, capsys):
        table = Table("Demo", ["a"])
        table.add_row(1)
        table.show()
        assert "Demo" in capsys.readouterr().out


class TestRenderSeries:
    def test_format(self):
        text = render_series("rounds", [(8, 3), (16, 4.5)])
        assert text == "rounds: 8->3  16->4.50"
