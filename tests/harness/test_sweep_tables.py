"""Tests for sweep aggregation and table rendering."""

from __future__ import annotations

import itertools

import pytest

from repro.harness.sweep import SweepCell, cell_table, merged_metrics, repeat, sweep
from repro.harness.tables import Table, render_series
from repro.sim.messages import MessageKind
from repro.sim.trace import Metrics


class TestRepeat:
    def test_runs_requested_times(self):
        seeds = repeat(lambda seed: seed, repeats=4, seed_base=1)
        assert len(seeds) == 4

    def test_seeds_distinct_and_reproducible(self):
        first = repeat(lambda seed: seed, repeats=5, seed_base=1)
        second = repeat(lambda seed: seed, repeats=5, seed_base=1)
        assert first == second
        assert len(set(first)) == 5

    def test_different_bases_differ(self):
        assert repeat(lambda s: s, 3, seed_base=1) != repeat(lambda s: s, 3, seed_base=2)

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            repeat(lambda s: s, repeats=0)


class TestSweep:
    def test_one_cell_per_value(self):
        cells = sweep([2, 4, 8], lambda value, seed: value * 2, repeats=3)
        assert [cell.param for cell in cells] == [2, 4, 8]
        assert all(len(cell.runs) == 3 for cell in cells)

    def test_fn_receives_value_and_seed(self):
        cells = sweep([10], lambda value, seed: (value, seed), repeats=2)
        values = {run[0] for run in cells[0].runs}
        seeds = {run[1] for run in cells[0].runs}
        assert values == {10}
        assert len(seeds) == 2

    def test_cell_metric_summary(self):
        cell = SweepCell(param=1, runs=(1.0, 3.0, 5.0))
        summary = cell.metric(lambda run: run)
        assert summary.mean == pytest.approx(3.0)

    def test_cell_table(self):
        cells = sweep([1, 2], lambda value, seed: value * 10.0, repeats=2)
        rows = cell_table(cells, {"value": lambda run: run})
        assert rows[0]["param"] == 1
        assert rows[0]["value"].mean == pytest.approx(10.0)
        assert rows[1]["value"].mean == pytest.approx(20.0)

    def test_seeds_vary_across_values(self):
        cells = sweep([1, 2], lambda value, seed: seed, repeats=1)
        assert cells[0].runs != cells[1].runs


def _metrics(n, sends=(), comm_calls=(), steps=0):
    """Build a Metrics instance with explicit per-processor activity."""
    metrics = Metrics(n)
    for sender, kind, cells in sends:
        metrics.record_send(sender, kind, cells)
    for pid in comm_calls:
        metrics.record_comm_call(pid)
    metrics.steps = steps
    metrics.events_executed = steps
    return metrics


class TestMergedMetrics:
    """The parallel path folds per-worker counters with ``merged_metrics``;
    the fold must equal serial accumulation regardless of worker order."""

    def _samples(self):
        return [
            _metrics(2, sends=[(0, MessageKind.PROPAGATE, 3)],
                     comm_calls=[0], steps=2),
            _metrics(4, sends=[(3, MessageKind.ACK, 0),
                               (1, MessageKind.COLLECT, 0)],
                     comm_calls=[1, 1, 3], steps=5),
            _metrics(3, sends=[(2, MessageKind.COLLECT_REPLY, 7)],
                     comm_calls=[2], steps=1),
        ]

    def test_empty_input_returns_none(self):
        assert merged_metrics([]) is None

    def test_accepts_bare_metrics_instances(self):
        merged = merged_metrics(self._samples())
        assert merged is not None
        assert merged.messages_total == 4
        assert merged.payload_cells == 10
        assert merged.steps == 8

    def test_any_merge_order_equals_serial_accumulation(self):
        samples = self._samples()
        reference = merged_metrics(samples).summary()
        reference_calls = merged_metrics(samples).comm_calls_by
        for ordering in itertools.permutations(samples):
            merged = merged_metrics(ordering)
            assert merged.summary() == reference
            assert merged.comm_calls_by == reference_calls

    def test_mixed_system_sizes_pad_per_processor_lists(self):
        small = _metrics(2, comm_calls=[1])
        large = _metrics(5, comm_calls=[4, 4])
        merged = merged_metrics([small, large])
        assert merged.comm_calls_by == [0, 1, 0, 0, 2]
        merged_reversed = merged_metrics([large, small])
        assert merged_reversed.comm_calls_by == merged.comm_calls_by

    def test_n_zero_edge_max_comm_calls(self):
        """The documented edge: an n=0 Metrics has max_comm_calls == 0 and
        merging it in (in any position) never perturbs the maximum."""
        empty = Metrics(0)
        assert empty.max_comm_calls == 0
        busy = _metrics(3, comm_calls=[0, 0, 2])
        assert merged_metrics([empty, busy]).max_comm_calls == 2
        assert merged_metrics([busy, empty]).max_comm_calls == 2
        assert merged_metrics([Metrics(0), Metrics(0)]).max_comm_calls == 0


class TestTable:
    def test_render_contains_data(self):
        table = Table("Demo", ["n", "time"])
        table.add_row(8, 1.25)
        table.add_row(16, 2.5)
        text = table.render()
        assert "Demo" in text
        assert "1.25" in text
        assert "16" in text

    def test_row_arity_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_large_numbers_grouped(self):
        table = Table("Demo", ["messages"])
        table.add_row(1234567)
        assert "1,234,567" in table.render()

    def test_notes_rendered(self):
        table = Table("Demo", ["a"])
        table.add_row(1)
        table.add_note("shape only")
        assert "note: shape only" in table.render()

    def test_show_prints(self, capsys):
        table = Table("Demo", ["a"])
        table.add_row(1)
        table.show()
        assert "Demo" in capsys.readouterr().out


class TestRenderSeries:
    def test_format(self):
        text = render_series("rounds", [(8, 3), (16, 4.5)])
        assert text == "rounds: 8->3  16->4.50"
