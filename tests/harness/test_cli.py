"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.n == 16
        assert args.adversary == "random"
        assert args.algorithm == "poison_pill"

    def test_unknown_adversary_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["elect", "--adversary", "nope"])

    def test_sift_bias(self):
        args = build_parser().parse_args(["sift", "--bias", "0.5"])
        assert args.bias == 0.5

    def test_sweep_ns(self):
        args = build_parser().parse_args(["sweep", "--ns", "4", "8"])
        assert args.ns == [4, 8]

    def test_sweep_workers_default_serial(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.exp == ["e1"]
        assert args.workers == 1
        assert args.repeats == 3
        assert not args.baseline
        assert args.compare is None
        assert not args.check_serial

    def test_bench_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--exp", "e99"])

    def test_bench_multiple_experiments(self):
        args = build_parser().parse_args(["bench", "--exp", "e1", "e3"])
        assert args.exp == ["e1", "e3"]


class TestCommands:
    def test_elect(self, capsys):
        assert main(["elect", "--n", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "messages:" in out

    def test_elect_tournament(self, capsys):
        assert main(["elect", "--n", "4", "--algorithm", "tournament"]) == 0
        assert "winner:" in capsys.readouterr().out

    def test_sift(self, capsys):
        assert main(["sift", "--n", "8", "--kind", "poison_pill"]) == 0
        assert "survivors:" in capsys.readouterr().out

    def test_rename(self, capsys):
        assert main(["rename", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "names:" in out
        assert "max trials:" in out

    def test_rename_linear(self, capsys):
        assert main(["rename", "--n", "4", "--algorithm", "linear"]) == 0
        assert "names:" in capsys.readouterr().out

    def test_sweep_elect(self, capsys):
        assert main(["sweep", "--task", "elect", "--ns", "4", "8", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "comm calls" in out and "rounds" in out

    def test_sweep_sift(self, capsys):
        assert main(["sweep", "--task", "sift", "--ns", "4", "8", "--repeats", "2"]) == 0
        assert "survivors" in capsys.readouterr().out

    def test_sweep_rename(self, capsys):
        assert main(["sweep", "--task", "rename", "--ns", "4", "--repeats", "2"]) == 0
        assert "trials" in capsys.readouterr().out

    def test_partial_participation(self, capsys):
        assert main(["elect", "--n", "8", "--k", "3", "--pattern", "spread"]) == 0
        assert "winner:" in capsys.readouterr().out

    def test_sweep_parallel_matches_serial_output(self, capsys):
        argv = ["sweep", "--task", "elect", "--ns", "4", "8", "--repeats", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_bench_writes_baseline(self, capsys, tmp_path, monkeypatch):
        assert main([
            "bench", "--exp", "e1", "--repeats", "1",
            "--baseline", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wall s" in out
        assert (tmp_path / "BENCH_E1.json").exists()

    def test_bench_compare_against_fresh_baseline_ok(self, capsys, tmp_path):
        baseline_path = tmp_path / "BENCH_E1.json"
        assert main(["bench", "--exp", "e1", "--repeats", "1",
                     "--baseline", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["bench", "--exp", "e1", "--repeats", "1",
                     "--compare", str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "bench comparison" in out
        assert "verdict: OK" in out

    def test_bench_check_serial(self, capsys):
        assert main(["bench", "--exp", "e1", "--repeats", "1",
                     "--workers", "2", "--check-serial"]) == 0
        assert "identical" in capsys.readouterr().out


class TestObservabilityVerbs:
    """trace/report/watch plumbing, including the clean-error satellite."""

    def _record(self, tmp_path, snapshots=False):
        """Record a small election trace (optionally with live snapshots)."""
        trace = str(tmp_path / "run.jsonl")
        argv = ["trace", "--n", "8", "--adversary", "sequential",
                "--seed", "2", "--out", trace]
        stream = None
        if snapshots:
            stream = str(tmp_path / "live.jsonl")
            argv += ["--snapshots", stream]
        assert main(argv) == 0
        return trace, stream

    def test_trace_with_snapshots_writes_both_files(self, capsys, tmp_path):
        trace, stream = self._record(tmp_path, snapshots=True)
        out = capsys.readouterr().out
        assert "snapshots:" in out
        from repro.obs.live import read_snapshots

        _, snapshots, end = read_snapshots(stream)
        assert snapshots and end is not None

    def test_report_critical_path_and_lineage(self, capsys, tmp_path):
        trace, _ = self._record(tmp_path)
        capsys.readouterr()
        assert main(["report", trace, "--critical-path", "--lineage", "0"]) == 0
        out = capsys.readouterr().out
        assert "critical paths" in out or "depth (msgs)" in out
        assert "message lineage of p0" in out

    def test_report_missing_file_is_clean_one_liner(self, capsys):
        assert main(["report", "/nonexistent/run.jsonl"]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out

    def test_report_truncated_jsonl_is_clean_one_liner(self, capsys, tmp_path):
        # Satellite regression: a producer killed mid-write leaves a
        # trailing partial line; report must not dump a traceback.
        trace, _ = self._record(tmp_path)
        text = open(trace, encoding="utf-8").read()
        truncated = str(tmp_path / "truncated.jsonl")
        with open(truncated, "w", encoding="utf-8") as fp:
            fp.write(text[: int(len(text) * 0.6)])
        capsys.readouterr()
        assert main(["report", truncated]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out

    def test_watch_no_follow_renders_last_snapshot(self, capsys, tmp_path):
        _, stream = self._record(tmp_path, snapshots=True)
        capsys.readouterr()
        assert main(["watch", stream, "--no-follow"]) == 0
        out = capsys.readouterr().out
        assert "snapshot #" in out

    def test_watch_no_follow_missing_end_marker_names_file_and_seq(
        self, capsys, tmp_path
    ):
        # Satellite regression: a stream whose writer was interrupted has
        # no end marker; --no-follow must exit 1 and say which file and
        # the last seq it saw, not silently return 0.
        _, stream = self._record(tmp_path, snapshots=True)
        lines = [
            line for line in open(stream, encoding="utf-8").read().splitlines()
            if '"end"' not in line
        ]
        headless = str(tmp_path / "interrupted.jsonl")
        with open(headless, "w", encoding="utf-8") as fp:
            fp.write("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["watch", headless, "--no-follow"]) == 1
        out = capsys.readouterr().out
        assert "snapshot #" in out  # the last snapshot still renders
        assert "error:" in out
        assert headless in out
        assert "seq=" in out
        assert "no end marker" in out

    def test_watch_follow_terminates_on_end_marker(self, capsys, tmp_path):
        _, stream = self._record(tmp_path, snapshots=True)
        capsys.readouterr()
        assert main(["watch", stream, "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "stream ended" in out

    def test_watch_prometheus_output(self, capsys, tmp_path):
        _, stream = self._record(tmp_path, snapshots=True)
        capsys.readouterr()
        assert main(["watch", stream, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_" in out

    def test_watch_missing_file_is_clean_one_liner(self, capsys):
        assert main(["watch", "/nonexistent/live.jsonl", "--no-follow"]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out

    def test_watch_truncated_stream_is_clean_one_liner(self, capsys, tmp_path):
        _, stream = self._record(tmp_path, snapshots=True)
        text = open(stream, encoding="utf-8").read()
        truncated = str(tmp_path / "cut.jsonl")
        with open(truncated, "w", encoding="utf-8") as fp:
            fp.write(text[: int(len(text) * 0.6)])
        capsys.readouterr()
        assert main(["watch", truncated, "--no-follow"]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out


class TestSoakCommand:
    def test_soak_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.duration == 60.0
        assert args.profile == "rolling"
        assert args.kill_every == 6
        assert args.restart_service_at == 0.5
        assert args.replay is None
        assert args.inject_violation is None

    def test_soak_list_profiles(self, capsys):
        assert main(["soak", "--list-profiles"]) == 0
        out = capsys.readouterr().out
        assert "rolling" in out and "gentle" in out

    def test_soak_unknown_profile_is_clean_error(self, capsys):
        assert main(["soak", "--duration", "1", "--profile", "nope"]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "rolling" in out  # names the known profiles

    def test_soak_clean_run_exits_0(self, capsys, tmp_path):
        assert main([
            "soak", "--duration", "1", "--profile", "gentle",
            "--keys", "1", "--contenders", "2", "--ttl", "250",
            "--hold-ms", "5", "--out-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "invariants:    all hold" in out

    def test_soak_negative_control_exits_1_and_replays(self, capsys, tmp_path):
        assert main([
            "soak", "--duration", "15", "--profile", "gentle",
            "--keys", "1", "--contenders", "2", "--ttl", "250",
            "--hold-ms", "5", "--restart-service-at", "-1",
            "--inject-violation", "0.3", "--out-dir", str(tmp_path),
        ]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION:" in out and "[injected]" in out
        assert "incident:" in out
        incident = next(tmp_path.glob("soak-incident-*.json"))
        assert main(["soak", "--replay", str(incident)]) == 0
        out = capsys.readouterr().out
        assert "replay:        ok" in out

    def test_soak_replay_missing_file_is_clean_error(self, capsys):
        assert main(["soak", "--replay", "/nonexistent/incident.json"]) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out
