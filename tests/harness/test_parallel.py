"""Tests for the process-parallel sweep engine.

The load-bearing property is *bit-identical determinism*: a sweep run
with ``workers=N`` must produce exactly the per-cell results of the
serial sweep — same derived seeds, same decisions, same counters — for
any N and any chunking.  Everything else (chunk shaping, fallbacks) is
plumbing around that guarantee.
"""

from __future__ import annotations

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    chunk_tasks,
    parallel_repeat,
    parallel_sweep,
    repeat_seeds,
    resolve_workers,
    run_seeded_tasks,
)
from repro.harness.runners import run_leader_election, run_sifting_phase
from repro.harness.sweep import repeat, sweep
from repro.sim.rng import derive_seed


def _elect(n, seed):
    return run_leader_election(n=n, adversary="random", seed=seed)


def _sift(n, seed):
    return run_sifting_phase(n=n, kind="heterogeneous",
                             adversary="sequential", seed=seed)


def _assert_cells_identical(serial_cells, parallel_cells):
    """Bit-identical per-cell results: params, seeds, decisions, metrics."""
    assert len(serial_cells) == len(parallel_cells)
    for expected, actual in zip(serial_cells, parallel_cells):
        assert expected.param == actual.param
        assert len(expected.runs) == len(actual.runs)
        for serial_run, parallel_run in zip(expected.runs, actual.runs):
            assert serial_run.seed == parallel_run.seed
            assert serial_run.result.outcomes == parallel_run.result.outcomes
            assert (serial_run.result.metrics.summary()
                    == parallel_run.result.metrics.summary())
            assert (serial_run.result.metrics.comm_calls_by
                    == parallel_run.result.metrics.comm_calls_by)


class TestTaskPlumbing:
    def test_chunks_cover_all_tasks_in_order(self):
        tasks = [(i, 100 + i) for i in range(10)]
        chunks = chunk_tasks(tasks, workers=3)
        flattened = [task for chunk in chunks for task in chunk]
        assert flattened == tasks

    def test_explicit_chunk_size(self):
        tasks = [(i, i) for i in range(7)]
        chunks = chunk_tasks(tasks, workers=2, chunk_size=3)
        assert [len(chunk) for chunk in chunks] == [3, 3, 1]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_tasks([(0, 0)], workers=1, chunk_size=0)

    def test_results_land_in_task_order(self):
        tasks = [(index, seed) for index, seed in enumerate([9, 7, 5, 3])]
        results = run_seeded_tasks(lambda i, s: (i, s), tasks, workers=2)
        assert results == [(0, 9), (1, 7), (2, 5), (3, 3)]

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_repeat_seeds_match_serial_derivation(self):
        seeds = repeat_seeds(4, seed_base=7, label="sweep/16")
        assert seeds == [derive_seed(7, f"sweep/16/{i}") for i in range(4)]

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            parallel_repeat(lambda seed: seed, repeats=0)


class TestParallelRepeat:
    def test_same_seeds_and_order_as_serial(self):
        serial = repeat(lambda seed: seed, repeats=6, seed_base=3)
        fanned = parallel_repeat(lambda seed: seed, repeats=6, seed_base=3,
                                 workers=3)
        assert fanned == serial

    def test_workers_via_repeat_api(self):
        serial = repeat(lambda seed: seed * 2, repeats=5, seed_base=1)
        fanned = repeat(lambda seed: seed * 2, repeats=5, seed_base=1, workers=2)
        assert fanned == serial


class TestParallelSweepDeterminism:
    """The acceptance property: workers=N equals serial, cell by cell."""

    def test_e1_grid_bit_identical(self):
        serial = sweep([4, 8, 16], _elect, repeats=3, seed_base=10)
        fanned = sweep([4, 8, 16], _elect, repeats=3, seed_base=10, workers=4)
        _assert_cells_identical(serial, fanned)
        # Leader election specifics: the elected winner must agree too.
        for expected, actual in zip(serial, fanned):
            assert ([run.winner for run in expected.runs]
                    == [run.winner for run in actual.runs])

    def test_e3_grid_bit_identical(self):
        serial = sweep([8, 16], _sift, repeats=3, seed_base=30)
        fanned = sweep([8, 16], _sift, repeats=3, seed_base=30, workers=4)
        _assert_cells_identical(serial, fanned)
        for expected, actual in zip(serial, fanned):
            assert ([run.survivors for run in expected.runs]
                    == [run.survivors for run in actual.runs])

    def test_seed_derivation_is_the_documented_formula(self):
        cells = parallel_sweep([8], _elect, repeats=3, seed_base=10, workers=2)
        for i, run in enumerate(cells[0].runs):
            assert run.seed == derive_seed(10, f"sweep/{8!r}/{i}")

    def test_chunking_does_not_change_results(self):
        one_per_chunk = parallel_sweep([4, 8], _elect, repeats=2, seed_base=5,
                                       workers=2, chunk_size=1)
        one_big_chunk = parallel_sweep([4, 8], _elect, repeats=2, seed_base=5,
                                       workers=2, chunk_size=16)
        _assert_cells_identical(one_per_chunk, one_big_chunk)

    def test_merged_metrics_identical_across_paths(self):
        serial = sweep([8], _elect, repeats=3, seed_base=10)
        fanned = sweep([8], _elect, repeats=3, seed_base=10, workers=2)
        serial_merged = serial[0].merged_metrics()
        parallel_merged = fanned[0].merged_metrics()
        assert serial_merged is not None and parallel_merged is not None
        assert serial_merged.summary() == parallel_merged.summary()


class TestFallbacks:
    def test_serial_fallback_without_fork(self, monkeypatch):
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        serial = sweep([4, 8], _elect, repeats=2, seed_base=1)
        degraded = parallel_sweep([4, 8], _elect, repeats=2, seed_base=1,
                                  workers=4)
        _assert_cells_identical(serial, degraded)

    def test_workers_one_never_forks(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("workers=1 must not create a process pool")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        cells = parallel_sweep([4], _elect, repeats=2, seed_base=2, workers=1)
        assert len(cells[0].runs) == 2

    def test_single_task_stays_inline(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("a single task must not create a process pool")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        results = parallel_repeat(lambda seed: seed, repeats=1, workers=8)
        assert len(results) == 1
