"""Tests for the high-level experiment runners."""

from __future__ import annotations

import pytest

from repro.adversary import EagerAdversary
from repro.harness.runners import (
    make_adversary,
    run_leader_election,
    run_renaming,
    run_sifting_phase,
)


class TestMakeAdversary:
    def test_by_name(self):
        assert make_adversary("random").name == "random"
        assert make_adversary("bubble").name == "bubble"

    def test_passthrough_instance(self):
        instance = EagerAdversary()
        assert make_adversary(instance) is instance

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            make_adversary("chaos-monkey")


class TestRunLeaderElection:
    def test_returns_structured_run(self):
        run = run_leader_election(n=6, adversary="eager", seed=0)
        assert run.n == 6
        assert run.k == 6
        assert run.algorithm == "poison_pill"
        assert run.adversary == "eager"
        assert run.winner in range(6)
        assert run.max_comm_calls > 0
        assert run.messages_total > 0
        assert run.rounds >= 1

    def test_adversary_instance_name_recorded(self):
        run = run_leader_election(n=4, adversary=EagerAdversary(), seed=0)
        assert run.adversary == "eager"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_leader_election(n=4, algorithm="paxos")

    def test_tournament_selection(self):
        run = run_leader_election(n=4, algorithm="tournament", adversary="eager", seed=0)
        assert run.algorithm == "tournament"
        assert run.winner is not None

    def test_crash_schedule_wiring(self):
        run = run_leader_election(
            n=7, adversary="eager", seed=0, crash_schedule=[(0, 6)]
        )
        assert 6 in run.result.crashed

    def test_reproducible(self):
        first = run_leader_election(n=6, adversary="random", seed=9)
        second = run_leader_election(n=6, adversary="random", seed=9)
        assert first.winner == second.winner
        assert first.messages_total == second.messages_total


class TestRunSiftingPhase:
    def test_kinds(self):
        for kind in ("poison_pill", "heterogeneous", "naive"):
            run = run_sifting_phase(n=6, kind=kind, adversary="eager", seed=0, check=False)
            assert run.kind == kind
            assert 1 <= run.survivors <= 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sifter"):
            run_sifting_phase(n=4, kind="bogus")

    def test_survivor_fraction(self):
        run = run_sifting_phase(n=6, kind="poison_pill", adversary="eager", seed=0)
        assert run.survivor_fraction == pytest.approx(run.survivors / 6)

    def test_bias_passthrough(self):
        run = run_sifting_phase(
            n=6, kind="poison_pill", adversary="eager", seed=0, bias=1.0
        )
        assert run.survivors == 6  # all flip high


class TestRunRenaming:
    def test_returns_structured_run(self):
        run = run_renaming(n=5, adversary="eager", seed=0)
        assert run.algorithm == "paper"
        assert sorted(run.names.values()) == list(range(5))
        assert run.max_trials >= 1

    def test_linear_algorithm(self):
        run = run_renaming(n=5, algorithm="linear", adversary="eager", seed=0)
        assert sorted(run.names.values()) == list(range(5))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_renaming(n=4, algorithm="bogus")

    def test_reproducible(self):
        first = run_renaming(n=5, adversary="random", seed=4)
        second = run_renaming(n=5, adversary="random", seed=4)
        assert first.names == second.names
        assert first.messages_total == second.messages_total
