"""Tests for the chaos soak harness and its incident artifacts.

The soaks here are seconds, not minutes — the CI smoke job runs the
long one.  What is pinned: the mid-stream monitor, restart-and-recover
counting, the mid-soak service restart with namespace continuity, the
injected negative control, and the deterministic incident replay.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness.soak import (
    LeaseMonitor,
    SoakError,
    SoakViolation,
    load_incident,
    replay_incident,
    run_soak,
)
from repro.net.client import ServiceClient
from repro.net.service import ElectionService, GrantRecord


def grant(key, epoch, holder="h", granted_ns=0):
    """A minimal GrantRecord for monitor-level tests."""
    return GrantRecord(
        key=key, epoch=epoch, holder=holder, session=1, granted_ns=granted_ns
    )


class TestLeaseMonitor:
    def test_increasing_epochs_pass(self):
        monitor = LeaseMonitor()
        for epoch in (1, 2, 3):
            assert monitor.observe(grant("k", epoch)) is None
        assert monitor.violation is None
        assert monitor.floors == {"k": 3}

    def test_keys_are_independent(self):
        monitor = LeaseMonitor()
        assert monitor.observe(grant("a", 5)) is None
        assert monitor.observe(grant("b", 1)) is None
        assert monitor.violation is None

    def test_stale_epoch_flagged_at_its_index(self):
        monitor = LeaseMonitor()
        monitor.observe(grant("k", 1))
        monitor.observe(grant("k", 2))
        violation = monitor.observe(grant("k", 2, holder="twin"))
        assert violation is not None
        assert violation.invariant == "lease_epoch_monotonic"
        assert violation.grant_index == 2
        assert "twin" in violation.message
        assert monitor.violation is violation

    def test_epoch_regression_flagged(self):
        monitor = LeaseMonitor()
        monitor.observe(grant("k", 7))
        assert monitor.observe(grant("k", 3)) is not None

    def test_only_first_violation_is_kept(self):
        monitor = LeaseMonitor()
        monitor.observe(grant("k", 1))
        first = monitor.observe(grant("k", 1))
        second = monitor.observe(grant("k", 1))
        assert second is not None and monitor.violation is first


class TestRunSoakValidation:
    def test_bad_duration_rejected(self):
        with pytest.raises(SoakError, match="duration"):
            run_soak(duration_s=0.0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(SoakError, match="hurricane"):
            run_soak(duration_s=1.0, profile="hurricane")

    def test_bad_restart_fraction_rejected(self):
        with pytest.raises(SoakError, match="restart_service_at"):
            run_soak(duration_s=1.0, restart_service_at=1.5)

    def test_zero_contenders_rejected(self):
        with pytest.raises(SoakError, match="contender"):
            run_soak(duration_s=1.0, contenders=0)


class TestShortSoak:
    def test_positive_soak_recovers_and_restarts_clean(self, tmp_path):
        report = run_soak(
            duration_s=3.0, seed=0, profile="rolling", keys=2, contenders=3,
            ttl_ms=250.0, hold_ms=5.0, kill_every=3,
            restart_service_at=0.5, out_dir=str(tmp_path),
        )
        assert report.ok, report.violation
        assert report.incident_path is None
        assert report.grants > 0
        # The acceptance bar: at least two node kill + restart-and-recover
        # events, plus the whole-service restart, all violation-free.
        assert report.kills >= 2
        assert report.recoveries >= 2
        assert report.service_restarts == 1
        assert report.phases_seen and report.phases_seen[0] == "calm"
        assert "all hold" in report.describe()

    def test_soak_without_service_restart(self, tmp_path):
        report = run_soak(
            duration_s=1.0, seed=1, profile="gentle", keys=1, contenders=2,
            ttl_ms=250.0, hold_ms=5.0, kill_every=4,
            restart_service_at=None, out_dir=str(tmp_path),
        )
        assert report.ok, report.violation
        assert report.service_restarts == 0


class TestNegativeControl:
    @pytest.fixture(scope="class")
    def incident(self, tmp_path_factory):
        """One injected-violation soak, shared across the class's tests."""
        out_dir = tmp_path_factory.mktemp("incident")
        report = run_soak(
            duration_s=20.0, seed=2, profile="gentle", keys=2, contenders=2,
            ttl_ms=250.0, hold_ms=5.0, kill_every=4, restart_service_at=None,
            out_dir=str(out_dir), inject_violation_at_s=0.4,
        )
        return report

    def test_injected_violation_caught_mid_stream(self, incident):
        assert not incident.ok
        assert incident.injected
        violation = incident.violation
        assert violation.source == "monitor"
        assert violation.invariant == "lease_epoch_monotonic"
        assert "soak-evil-twin" in violation.message
        # Mid-stream means the soak aborted well before its deadline.
        assert incident.elapsed_s < incident.duration_s / 2

    def test_incident_artifact_written_and_loadable(self, incident):
        assert incident.incident_path is not None
        obj = load_incident(incident.incident_path)
        assert obj["kind"] == "soak-incident"
        assert obj["injected"] is True
        assert obj["profile"] == "gentle"
        assert obj["plan"]["phases"]
        assert len(obj["grants"]) == incident.grants

    def test_incident_replays_deterministically(self, incident):
        first = replay_incident(incident.incident_path)
        second = replay_incident(incident.incident_path)
        assert first.ok and second.ok
        assert first.replayed == second.replayed
        assert first.replayed.grant_index == incident.violation.grant_index
        assert first.replayed.message == incident.violation.message
        assert "replay:        ok" in first.describe()

    def test_tampered_grant_log_fails_replay(self, incident, tmp_path):
        obj = load_incident(incident.incident_path)
        obj["grants"][0]["holder"] = "forged"
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(obj), encoding="utf-8")
        replay = replay_incident(str(tampered))
        assert not replay.digest_ok
        assert not replay.ok
        assert "MISMATCH" in replay.describe()

    def test_non_incident_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"kind": "other"}', encoding="utf-8")
        with pytest.raises(SoakError, match="not a soak incident"):
            replay_incident(str(path))

    def test_unreadable_file_is_soak_error(self):
        with pytest.raises(SoakError, match="cannot read"):
            replay_incident("/nonexistent/incident.json")


class TestNamespaceContinuity:
    def test_restart_with_namespace_keeps_epochs_fenced(self):
        # The property the mid-soak restart depends on: a successor
        # seeded with export_namespace() grants strictly above the
        # epochs its predecessor reached.
        async def main():
            first = ElectionService(seed=0, default_ttl_ms=5000.0)
            host, port = await first.start()
            client = await ServiceClient.connect(host, port, client_id="a")
            lease = await client.acquire("k", ttl_ms=5000.0)
            assert lease.epoch == 1
            await client.release(lease)
            lease = await client.acquire("k", ttl_ms=5000.0)
            assert lease.epoch == 2
            client.abort()
            namespace = first.export_namespace()
            await first.stop()

            second = ElectionService(
                seed=0, default_ttl_ms=5000.0, namespace=namespace
            )
            host, port = await second.start()
            client = await ServiceClient.connect(host, port, client_id="a")
            lease = await client.acquire("k", ttl_ms=5000.0)
            await client.close()
            await second.stop()
            return namespace, lease

        namespace, lease = asyncio.run(main())
        assert namespace == {"k": 2}
        assert lease.epoch == 3

    def test_soak_grant_log_spans_the_restart_monotonically(self, tmp_path):
        report = run_soak(
            duration_s=2.0, seed=3, profile="gentle", keys=1, contenders=2,
            ttl_ms=250.0, hold_ms=5.0, kill_every=0,
            restart_service_at=0.5, out_dir=str(tmp_path),
        )
        assert report.ok, report.violation
        assert report.service_restarts == 1
        # A violation-free report already implies this (the monitor saw
        # every grant from both incarnations), so just confirm both
        # incarnations actually granted.
        assert report.grants > 0


class TestSoakViolationRoundTrip:
    def test_to_from_obj(self):
        violation = SoakViolation(
            invariant="lease_epoch_monotonic", message="m",
            grant_index=4, source="monitor",
        )
        assert SoakViolation.from_obj(violation.to_obj()) == violation
