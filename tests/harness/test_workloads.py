"""Tests for workload generation (participation and crash schedules)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.workloads import (
    choose_participants,
    crash_schedule_eager,
    crash_schedule_random,
)


class TestChooseParticipants:
    def test_first(self):
        assert choose_participants(8, 3, "first") == [0, 1, 2]

    def test_last(self):
        assert choose_participants(8, 3, "last") == [5, 6, 7]

    def test_spread_even(self):
        assert choose_participants(8, 4, "spread") == [0, 2, 4, 6]

    def test_default_k_is_n(self):
        assert choose_participants(5) == [0, 1, 2, 3, 4]

    def test_random_is_seeded(self):
        first = choose_participants(20, 6, "random", seed=1)
        second = choose_participants(20, 6, "random", seed=1)
        third = choose_participants(20, 6, "random", seed=2)
        assert first == second
        assert first != third

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            choose_participants(8, 3, "bogus")

    @pytest.mark.parametrize("k", [0, 9])
    def test_out_of_range_k_rejected(self, k):
        with pytest.raises(ValueError):
            choose_participants(8, k)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.sampled_from(["first", "last", "spread", "random"]),
        st.integers(min_value=0, max_value=100),
    )
    def test_properties(self, n, k, pattern, seed):
        if k > n:
            return
        pids = choose_participants(n, k, pattern, seed)
        assert len(pids) == len(set(pids))
        assert all(0 <= pid < n for pid in pids)
        assert pids == sorted(pids)
        if pattern != "spread":
            assert len(pids) == k
        else:
            assert 1 <= len(pids) <= k  # dedup may shrink odd spreads


class TestCrashSchedules:
    def test_random_respects_budget(self):
        schedule = crash_schedule_random(9, crashes=100, seed=1)
        assert len(schedule) == (9 + 1) // 2 - 1

    def test_random_avoids_pids(self):
        schedule = crash_schedule_random(9, crashes=4, seed=1, avoid=[0, 1])
        assert all(pid not in (0, 1) for _, pid in schedule)

    def test_random_sorted_by_event(self):
        schedule = crash_schedule_random(15, crashes=5, seed=2)
        events = [event for event, _ in schedule]
        assert events == sorted(events)

    def test_random_distinct_victims(self):
        schedule = crash_schedule_random(15, crashes=6, seed=3)
        victims = [pid for _, pid in schedule]
        assert len(victims) == len(set(victims))

    def test_zero_crashes(self):
        assert crash_schedule_random(9, crashes=0, seed=1) == []

    def test_eager(self):
        assert crash_schedule_eager([3, 5]) == [(0, 3), (0, 5)]

    def test_reproducible(self):
        assert crash_schedule_random(11, 4, seed=9) == crash_schedule_random(
            11, 4, seed=9
        )
