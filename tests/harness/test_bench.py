"""Tests for the benchmark-baseline harness (`repro.harness.bench`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.harness.bench import (
    BENCH_FORMAT_VERSION,
    EXPERIMENTS,
    compare_results,
    load_result,
    profile_cell,
    run_experiment,
    verify_parallel_matches_serial,
)


def small_result(exp="e1", workers=1):
    """One fast measured run (repeats=1) used across the tests."""
    return run_experiment(exp, workers=workers, repeats=1)


class TestRunExperiment:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("e99")

    def test_cells_cover_the_grid(self):
        result = small_result()
        assert result.exp == "e1"
        assert tuple(cell.param for cell in result.cells) == result.grid
        assert result.grid == EXPERIMENTS["e1"].grid(full=False)

    def test_cells_carry_measurements(self):
        result = small_result()
        for cell in result.cells:
            assert cell.wall_s > 0
            assert cell.runs_per_s > 0
            assert cell.messages_total > 0
            assert cell.max_comm_calls > 0
            assert len(cell.fingerprint) == 16

    def test_fingerprints_reproducible(self):
        first = small_result()
        second = small_result()
        assert first.fingerprints == second.fingerprints

    def test_full_grid_is_larger(self):
        assert len(EXPERIMENTS["e1"].grid(full=True)) > len(
            EXPERIMENTS["e1"].grid(full=False)
        )


class TestProfileCell:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            profile_cell("e99")

    def test_profile_shape(self):
        meta = profile_cell("e1", value=8, top=20)
        assert meta["param"] == 8
        assert meta["wall_s"] > 0
        assert 0 < len(meta["top"]) <= 20
        for entry in meta["top"]:
            assert set(entry) == {"function", "ncalls", "tottime_s", "cumtime_s"}
        # Sorted by cumulative time, and the simulator actually shows up.
        cumtimes = [entry["cumtime_s"] for entry in meta["top"]]
        assert cumtimes == sorted(cumtimes, reverse=True)
        assert any("runtime.py" in entry["function"] for entry in meta["top"])
        json.dumps(meta)  # must be JSON-embeddable as baseline meta

    def test_run_experiment_embeds_profile(self):
        result = run_experiment("e1", repeats=1, profile=True)
        meta = result.meta["profile"]
        assert meta["param"] == EXPERIMENTS["e1"].grid(full=False)[-1]
        assert meta["top"]
        # The profiled re-run must not pollute the measured cells.
        assert tuple(cell.param for cell in result.cells) == result.grid


class TestBaselineFiles:
    def test_save_load_roundtrip(self, tmp_path):
        result = small_result()
        path = result.save(str(tmp_path))
        assert path.endswith("BENCH_E1.json")
        loaded = load_result(path)
        assert loaded.exp == result.exp
        assert loaded.grid == result.grid
        assert loaded.fingerprints == result.fingerprints
        assert [cell.to_dict() for cell in loaded.cells] == [
            cell.to_dict() for cell in result.cells
        ]

    def test_version_mismatch_rejected(self, tmp_path):
        result = small_result()
        path = result.save(str(tmp_path))
        with open(path) as fp:
            obj = json.load(fp)
        obj["version"] = BENCH_FORMAT_VERSION + 1
        with open(path, "w") as fp:
            json.dump(obj, fp)
        with pytest.raises(ValueError, match="bench format version"):
            load_result(path)


class TestComparison:
    def test_identical_runs_compare_ok(self):
        baseline = small_result()
        comparison = compare_results(baseline, small_result())
        assert comparison.comparable
        assert comparison.ok
        assert not comparison.regressions and not comparison.drifted
        assert "verdict: OK" in comparison.describe()

    def test_slowdown_flags_regression(self):
        baseline = small_result()
        current = copy.deepcopy(baseline)
        for cell in current.cells:
            cell.wall_s = cell.wall_s * 10 + 1.0  # beyond ratio AND delta floor
        comparison = compare_results(baseline, current)
        assert len(comparison.regressions) == len(current.cells)
        assert not comparison.ok
        assert "REGRESSION" in comparison.describe()

    def test_small_cell_jitter_not_flagged(self):
        baseline = small_result()
        current = copy.deepcopy(baseline)
        for base_cell, cell in zip(baseline.cells, current.cells):
            base_cell.wall_s = 0.01
            cell.wall_s = 0.05  # 5x slower relatively, but millisecond-scale
        comparison = compare_results(baseline, current)
        assert not comparison.regressions

    def test_fingerprint_drift_flagged(self):
        baseline = small_result()
        current = copy.deepcopy(baseline)
        current.cells[0].fingerprint = "0" * 16
        comparison = compare_results(baseline, current)
        assert comparison.drifted and not comparison.ok
        assert "DRIFT" in comparison.describe()

    def test_different_repeats_skip_drift_check(self):
        baseline = small_result()
        current = copy.deepcopy(baseline)
        current.repeats += 1
        current.cells[0].fingerprint = "0" * 16
        comparison = compare_results(baseline, current)
        assert not comparison.comparable
        assert not comparison.drifted  # drift not judged across configs

    def test_extended_grid_still_checks_common_cells(self):
        # Cell seeds are grid-independent, so growing the grid with new
        # values must not silence drift detection on the old cells.
        baseline = small_result()
        current = copy.deepcopy(baseline)
        extra = copy.deepcopy(current.cells[-1])
        extra.param = current.cells[-1].param * 2
        current.cells.append(extra)
        current.grid = tuple(cell.param for cell in current.cells)
        comparison = compare_results(baseline, current)
        assert comparison.comparable
        assert comparison.ok  # common cells match; the new cell is ignored
        assert len(comparison.cells) == len(baseline.cells)
        current.cells[0].fingerprint = "0" * 16
        drifted = compare_results(baseline, current)
        assert drifted.drifted and not drifted.ok

    def test_cross_experiment_comparison_rejected(self):
        baseline = small_result()
        other = copy.deepcopy(baseline)
        other.exp = "e3"
        with pytest.raises(ValueError, match="cannot compare"):
            compare_results(baseline, other)

    def test_speedup_ratio_direction(self):
        baseline = small_result()
        current = copy.deepcopy(baseline)
        for cell in current.cells:
            cell.wall_s = cell.wall_s / 2
        comparison = compare_results(baseline, current)
        assert all(cell.speedup > 1.5 for cell in comparison.cells)


class TestSerialParallelVerification:
    def test_parallel_matches_serial(self):
        match, serial, fanned = verify_parallel_matches_serial(
            "e1", workers=2, repeats=1
        )
        assert match
        assert serial.fingerprints == fanned.fingerprints
        assert serial.workers == 1 and fanned.workers == 2
        # The folded counters must agree exactly, not just the digests.
        for serial_cell, parallel_cell in zip(serial.cells, fanned.cells):
            assert serial_cell.messages_total == parallel_cell.messages_total
            assert serial_cell.steps == parallel_cell.steps
            assert serial_cell.max_comm_calls == parallel_cell.max_comm_calls
