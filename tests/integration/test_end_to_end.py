"""End-to-end integration: full protocol stacks, compositions, determinism."""

from __future__ import annotations

import pytest

from repro.analysis.checkers import check_leader_election, check_renaming
from repro.core import Outcome, leader_elect, make_get_name, make_leader_elect
from repro.harness import run_leader_election, run_renaming
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestFullMatrix:
    """The whole algorithm stack against every adversary."""

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    @pytest.mark.parametrize("n", [2, 6, 11])
    def test_leader_election_matrix(self, name, n):
        run = run_leader_election(n=n, adversary=fresh_adversary(name, n), seed=n)
        assert run.winner is not None

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_renaming_matrix(self, name):
        run = run_renaming(n=7, adversary=fresh_adversary(name, 3), seed=3)
        assert sorted(run.names.values()) == list(range(7))


class TestComposition:
    def test_two_disjoint_elections_in_one_system(self):
        """Namespace isolation: the same processors elect two independent
        leaders, one per namespace, in a single execution."""

        def both(api):
            first = yield from leader_elect(api, namespace="alpha")
            second = yield from leader_elect(api, namespace="beta")
            return (first, second)

        n = 6
        for seed in range(4):
            sim = Simulation(
                n,
                {pid: both for pid in range(n)},
                fresh_adversary("random", seed),
                seed=seed,
            )
            result = sim.run()
            alpha_winners = [
                pid for pid, (a, _) in result.outcomes.items() if a is Outcome.WIN
            ]
            beta_winners = [
                pid for pid, (_, b) in result.outcomes.items() if b is Outcome.WIN
            ]
            assert len(alpha_winners) == 1
            assert len(beta_winners) == 1

    def test_mixed_participant_sets(self):
        """Leader election among evens while odds run renaming: protocols
        coexist in one system without interference."""
        n = 8
        participants = {}
        for pid in range(0, n, 2):
            participants[pid] = make_leader_elect()
        for pid in range(1, n, 2):
            participants[pid] = make_get_name()
        sim = Simulation(n, participants, fresh_adversary("random", 6), seed=6)
        result = sim.run()
        winners = [
            pid for pid in range(0, n, 2)
            if result.outcomes[pid] is Outcome.WIN
        ]
        names = [result.outcomes[pid] for pid in range(1, n, 2)]
        assert len(winners) == 1
        assert len(set(names)) == len(names)
        assert all(isinstance(name, int) for name in names)

    def test_election_winner_stable_under_rerun(self):
        first = run_leader_election(n=10, adversary="random", seed=42)
        second = run_leader_election(n=10, adversary="random", seed=42)
        assert first.winner == second.winner
        assert first.rounds == second.rounds
        assert first.result.metrics.summary() == second.result.metrics.summary()


class TestScale:
    def test_moderately_large_election(self):
        run = run_leader_election(n=64, adversary="eager", seed=0)
        assert run.winner is not None
        # O(log* k) rounds: single digits even at n = 64.
        assert run.rounds <= 10

    def test_moderately_large_renaming(self):
        run = run_renaming(n=24, adversary="eager", seed=0)
        assert sorted(run.names.values()) == list(range(24))

    def test_message_budget_not_absurd(self):
        """O(kn) messages with sane constants: stay under 60 n^2."""
        n = 32
        run = run_leader_election(n=n, adversary="random", seed=1)
        assert run.messages_total < 60 * n * n


class TestCheckersOnRealRuns:
    @pytest.mark.parametrize("seed", range(5))
    def test_leader_election_always_checkable(self, seed):
        run = run_leader_election(n=9, adversary="random", seed=seed, check=False)
        check_leader_election(run.result)

    @pytest.mark.parametrize("seed", range(5))
    def test_renaming_always_checkable(self, seed):
        run = run_renaming(n=6, adversary="random", seed=seed, check=False)
        check_renaming(run.result)
