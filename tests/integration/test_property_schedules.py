"""Hypothesis-driven adversarial schedules.

Instead of hand-written strategies, let hypothesis *be* the adversary: it
supplies an arbitrary finite decision string, which a data-driven
adversary turns into deliver/step/crash choices; once the string runs out
the fallback keeps the run live.  Shrinking then searches for the
smallest schedule violating a safety property — none may exist, under any
schedule, for the invariants below.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import Adversary, fallback_action
from repro.analysis.checkers import (
    check_leader_election,
    check_renaming,
    check_sifting_phase,
)
from repro.core import (
    make_get_name,
    make_heterogeneous_poison_pill,
    make_leader_elect,
    make_poison_pill,
)
from repro.sim import Crash, Deliver, Simulation, Step


class DataDrivenAdversary(Adversary):
    """Plays out a finite decision string, then falls back to fair play.

    Each decision byte selects an action class and an index: crashes are
    attempted only while the budget lasts, so every generated schedule is
    admissible by construction.
    """

    name = "data_driven"

    def __init__(self, decisions, allow_crashes=True):
        self._decisions = list(decisions)
        self._position = 0
        self._allow_crashes = allow_crashes

    def choose(self, sim):
        while self._position < len(self._decisions):
            decision = self._decisions[self._position]
            self._position += 1
            kind = decision % 4
            index = decision // 4
            if kind == 0 and sim.in_flight:
                pool = sim.in_flight.messages
                return Deliver(pool[index % len(pool)])
            if kind == 1 and sim.steppable:
                candidates = sorted(sim.steppable)
                return Step(candidates[index % len(candidates)])
            if (
                kind == 2
                and self._allow_crashes
                and sim.crashes_remaining > 0
            ):
                alive = [pid for pid in range(sim.n) if pid not in sim.crashed]
                if alive:
                    return Crash(alive[index % len(alive)])
            # kind == 3 (or nothing enabled for this kind): consume and retry.
        return fallback_action(sim)


decision_strings = st.lists(st.integers(min_value=0, max_value=255), max_size=120)


@settings(max_examples=40, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_poison_pill_safety_under_arbitrary_schedules(decisions, seed):
    n = 6
    sim = Simulation(
        n,
        {pid: make_poison_pill() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=False),
        seed=seed,
    )
    result = sim.run()
    survivors = check_sifting_phase(result)
    assert survivors >= 1


@settings(max_examples=40, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_heterogeneous_safety_under_arbitrary_schedules(decisions, seed):
    n = 6
    sim = Simulation(
        n,
        {pid: make_heterogeneous_poison_pill() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=False),
        seed=seed,
    )
    result = sim.run()
    assert check_sifting_phase(result) >= 1


@settings(max_examples=30, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_leader_election_safety_under_arbitrary_schedules(decisions, seed):
    n = 5
    sim = Simulation(
        n,
        {pid: make_leader_elect() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=False),
        seed=seed,
    )
    result = sim.run()
    report = check_leader_election(result)
    assert report.winner is not None


@settings(max_examples=30, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_leader_election_safety_with_crashes(decisions, seed):
    """With generated crash injections: at most one winner, losers only
    after a linearizable winner candidate, alive participants decide."""
    n = 5
    sim = Simulation(
        n,
        {pid: make_leader_elect() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=True),
        seed=seed,
    )
    result = sim.run(require_termination=False)
    assert not result.undecided  # crash budget < n/2 keeps quorums alive
    check_leader_election(result)


@settings(max_examples=20, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_renaming_safety_under_arbitrary_schedules(decisions, seed):
    n = 5
    sim = Simulation(
        n,
        {pid: make_get_name() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=False),
        seed=seed,
    )
    result = sim.run()
    names = check_renaming(result)
    assert sorted(names.values()) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(decisions=decision_strings, seed=st.integers(min_value=0, max_value=2**16))
def test_renaming_safety_with_crashes(decisions, seed):
    n = 5
    sim = Simulation(
        n,
        {pid: make_get_name() for pid in range(n)},
        DataDrivenAdversary(decisions, allow_crashes=True),
        seed=seed,
    )
    result = sim.run(require_termination=False)
    assert not result.undecided
    check_renaming(result)
