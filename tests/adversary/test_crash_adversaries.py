"""Tests for crash-injecting adversary wrappers."""

from __future__ import annotations

import pytest

from repro.adversary import (
    CrashingAdversary,
    EagerAdversary,
    RandomAdversary,
    RandomCrashAdversary,
)
from repro.sim import Collect, Propagate, Simulation


def ping_factory(api):
    api.put("X", api.pid, api.pid)
    yield Propagate("X", (api.pid,))
    views = yield Collect("X")
    return len(views)


class TestCrashingAdversary:
    def test_scheduled_crash_fires(self):
        adversary = CrashingAdversary(EagerAdversary(), [(0, 3)])
        sim = Simulation(7, {0: ping_factory}, adversary, seed=0)
        result = sim.run()
        assert 3 in result.crashed
        assert result.terminated

    def test_crash_of_participant_removes_it(self):
        adversary = CrashingAdversary(EagerAdversary(), [(0, 1)])
        sim = Simulation(
            7, {0: ping_factory, 1: ping_factory}, adversary, seed=0
        )
        result = sim.run()
        assert 1 in result.crashed
        assert set(result.decisions) == {0}

    def test_multiple_scheduled_crashes_in_order(self):
        adversary = CrashingAdversary(EagerAdversary(), [(5, 4), (0, 3)])
        sim = Simulation(9, {0: ping_factory}, adversary, seed=0)
        result = sim.run()
        assert {3, 4} <= set(result.crashed)

    def test_already_crashed_target_skipped(self):
        adversary = CrashingAdversary(EagerAdversary(), [(0, 3), (1, 3)])
        sim = Simulation(7, {0: ping_factory}, adversary, seed=0)
        result = sim.run()
        assert result.terminated
        assert result.crashed == {3}

    def test_budget_respected(self):
        # Schedule more crashes than the budget allows; extras are skipped.
        schedule = [(0, pid) for pid in range(1, 7)]
        adversary = CrashingAdversary(EagerAdversary(), schedule)
        sim = Simulation(9, {0: ping_factory}, adversary, seed=0)
        result = sim.run()
        assert len(result.crashed) == sim.crash_budget

    def test_name_composition(self):
        adversary = CrashingAdversary(EagerAdversary(), [])
        assert adversary.name == "crashing+eager"


class TestRandomCrashAdversary:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            RandomCrashAdversary(EagerAdversary(), rate=1.5)

    def test_zero_rate_never_crashes(self):
        adversary = RandomCrashAdversary(EagerAdversary(), rate=0.0, seed=1)
        sim = Simulation(7, {0: ping_factory}, adversary, seed=1)
        result = sim.run()
        assert not result.crashed

    def test_high_rate_crashes_but_never_exceeds_budget(self):
        adversary = RandomCrashAdversary(RandomAdversary(seed=2), rate=0.9, seed=2)
        sim = Simulation(9, {0: ping_factory}, adversary, seed=2)
        result = sim.run(require_termination=False)
        assert result.crashed  # a 90% rate certainly crashed someone
        assert len(result.crashed) <= sim.crash_budget
        # The run ends either with a decision or with the participant dead.
        assert 0 in result.decisions or 0 in result.crashed

    def test_max_crashes_cap(self):
        adversary = RandomCrashAdversary(
            EagerAdversary(), rate=0.9, seed=3, max_crashes=1
        )
        sim = Simulation(9, {0: ping_factory}, adversary, seed=3)
        result = sim.run()
        assert len(result.crashed) <= 1

    def test_termination_with_minority_crashes(self):
        for seed in range(5):
            adversary = RandomCrashAdversary(
                RandomAdversary(seed=seed), rate=0.01, seed=seed
            )
            sim = Simulation(
                9,
                {pid: ping_factory for pid in range(4)},
                adversary,
                seed=seed,
            )
            result = sim.run(require_termination=False)
            # Everyone alive decided (the budget keeps quorums reachable).
            assert not result.undecided


class TestAdversaryReuse:
    """Regression tests for the setup() per-run-state reset contract.

    A reused adversary instance must behave exactly like a fresh one:
    replay and shrinking re-drive runs through the same instance, so any
    surviving cursor or consumed RNG stream silently changes the
    schedule (historically: CrashingAdversary skipped all crashes on its
    second run, RandomCrashAdversary crashed at different points).
    """

    def _crash_sets(self, adversary, runs=2, n=9):
        observed = []
        for _ in range(runs):
            sim = Simulation(n, {0: ping_factory}, adversary, seed=0)
            observed.append(frozenset(sim.run().crashed))
        return observed

    def test_crashing_adversary_replays_schedule_on_reuse(self):
        adversary = CrashingAdversary(EagerAdversary(), [(0, 3), (5, 4)])
        first, second = self._crash_sets(adversary)
        assert first == {3, 4}
        assert second == first  # cursor rewound: crashes fire again

    def test_random_crash_adversary_identical_on_reuse(self):
        adversary = RandomCrashAdversary(EagerAdversary(), rate=0.2, seed=7)
        first, second = self._crash_sets(adversary)
        assert first  # the 20% rate crashed someone
        assert second == first  # RNG re-derived: same crash points

    def test_reused_equals_fresh(self):
        def fresh():
            return RandomCrashAdversary(EagerAdversary(), rate=0.2, seed=7)

        reused = RandomCrashAdversary(EagerAdversary(), rate=0.2, seed=7)
        for _ in range(3):
            sim_fresh = Simulation(9, {0: ping_factory}, fresh(), seed=0)
            sim_reused = Simulation(9, {0: ping_factory}, reused, seed=0)
            assert sim_fresh.run().crashed == sim_reused.run().crashed
