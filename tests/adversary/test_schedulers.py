"""Behavioural tests for every scheduling strategy.

Each adversary must (a) drive any protocol to termination, and (b)
realize its documented attack/shape.  The attack-specific assertions live
in the core tests (e.g. the naive sifter breaking); here we verify
scheduling mechanics.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    BubbleAdversary,
    EagerAdversary,
    ObliviousAdversary,
    QuorumSplitAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SequentialAdversary,
)
from repro.adversary.base import fallback_action
from repro.core import make_leader_elect
from repro.sim import Collect, Deliver, DeliverBatch, Propagate, Simulation, Step

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


def ping_factory(api):
    api.put("X", api.pid, api.pid)
    yield Propagate("X", (api.pid,))
    views = yield Collect("X")
    return len(views)


class TestFallbackAction:
    def test_prefers_delivery(self):
        # EagerAdversary negotiates the batch plane, so the fallback's
        # delivery arrives as a positional DeliverBatch action there and
        # as a materialized Deliver when batch mode is forced off.
        sim = Simulation(4, {0: ping_factory}, EagerAdversary(), seed=0)
        sim.execute(Step(0))  # issues the propagate broadcast
        action = fallback_action(sim)
        assert isinstance(action, DeliverBatch)
        legacy = Simulation(
            4, {0: ping_factory}, EagerAdversary(), seed=0, batch_messages=False
        )
        legacy.execute(Step(0))
        assert isinstance(fallback_action(legacy), Deliver)

    def test_steps_when_pool_empty(self):
        sim = Simulation(4, {0: ping_factory}, EagerAdversary(), seed=0)
        action = fallback_action(sim)
        assert action == Step(0)

    def test_none_at_quiescence(self):
        sim = Simulation(4, {}, EagerAdversary(), seed=0)
        assert fallback_action(sim) is None


class TestEveryAdversaryTerminates:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_simple_protocol_terminates(self, name):
        sim = Simulation(
            6,
            {pid: ping_factory for pid in range(4)},
            fresh_adversary(name, seed=5),
            seed=5,
        )
        result = sim.run()
        assert result.terminated
        assert set(result.decisions) == {0, 1, 2, 3}

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_leader_election_terminates(self, name):
        sim = Simulation(
            8,
            {pid: make_leader_elect() for pid in range(8)},
            fresh_adversary(name, seed=2),
            seed=2,
        )
        result = sim.run()
        assert result.terminated


class TestAdversaryReuseContract:
    """setup() must reset per-run state: a reused instance == a fresh one."""

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_second_run_matches_fresh_instance(self, name):
        def outcome(adversary):
            sim = Simulation(
                6,
                {pid: ping_factory for pid in range(4)},
                adversary,
                seed=3,
            )
            result = sim.run()
            return (
                sorted(result.decisions.items()),
                result.metrics.events_executed,
                result.metrics.messages_total,
            )

        reused = fresh_adversary(name, seed=3)
        first = outcome(reused)
        second = outcome(reused)
        fresh = outcome(fresh_adversary(name, seed=3))
        assert second == first == fresh


class TestRandomAdversary:
    def test_bias_validation(self):
        with pytest.raises(ValueError):
            RandomAdversary(deliver_bias=0.0)
        with pytest.raises(ValueError):
            RandomAdversary(deliver_bias=1.0)

    def test_reproducible(self):
        def run(seed):
            sim = Simulation(
                5,
                {pid: ping_factory for pid in range(3)},
                RandomAdversary(seed=seed),
                seed=7,
            )
            return sim.run().metrics.events_executed

        assert run(3) == run(3)


class TestSequentialAdversary:
    def test_serializes_decisions(self):
        """Under the sequential adversary, participant i decides before
        participant i+1 performs any computation step."""
        sim = Simulation(
            6,
            {pid: ping_factory for pid in range(4)},
            SequentialAdversary(),
            seed=0,
            record_events=True,
        )
        result = sim.run()
        decide_times = {
            event.pid: event.time for event in result.trace.of_kind("decide")
        }
        start_times = {
            event.pid: event.time for event in result.trace.of_kind("start")
        }
        for pid in range(3):
            assert decide_times[pid] < start_times[pid + 1]

    def test_respects_custom_order(self):
        order = [3, 1, 2, 0]
        sim = Simulation(
            6,
            {pid: ping_factory for pid in range(4)},
            SequentialAdversary(order=order),
            seed=0,
            record_events=True,
        )
        result = sim.run()
        decide_times = {
            event.pid: event.time for event in result.trace.of_kind("decide")
        }
        observed = sorted(decide_times, key=decide_times.get)
        assert observed == order


class TestRoundRobinAdversary:
    def test_rotates_across_processors(self):
        sim = Simulation(
            6,
            {pid: ping_factory for pid in range(6)},
            RoundRobinAdversary(),
            seed=0,
            record_events=True,
        )
        result = sim.run()
        first_steps = {}
        for event in result.trace.of_kind("step"):
            first_steps.setdefault(event.pid, event.time)
        ordered = sorted(first_steps, key=first_steps.get)
        assert ordered == list(range(6))


class TestQuorumSplitAdversary:
    def test_same_half_preferred(self):
        adversary = QuorumSplitAdversary(first_half={0, 1, 2})
        sim = Simulation(
            6, {pid: ping_factory for pid in range(6)}, adversary, seed=0
        )
        result = sim.run()
        assert result.terminated

    def test_default_half_is_lower_pids(self):
        adversary = QuorumSplitAdversary()
        sim = Simulation(4, {0: ping_factory}, adversary, seed=0)
        sim.adversary.setup(sim)
        assert adversary._half == frozenset({0, 1})


class TestBubbleAdversary:
    def test_default_bubble_is_quarter_of_participants(self):
        adversary = BubbleAdversary()
        sim = Simulation(
            8, {pid: ping_factory for pid in range(8)}, adversary, seed=0
        )
        adversary.setup(sim)
        assert adversary.unreleased == {0, 1}

    def test_members_release_after_threshold(self):
        adversary = BubbleAdversary(bubble={0}, threshold=2)
        sim = Simulation(
            6, {pid: ping_factory for pid in range(6)}, adversary, seed=0
        )
        result = sim.run()
        assert result.terminated
        assert adversary.unreleased == frozenset()

    def test_bubbled_traffic_buffered_until_release(self):
        """The first delivery involving the bubbled processor happens only
        once at least ``threshold`` of its messages are buffered."""
        threshold = 3
        observed_buffer_at_first_delivery = []

        class Probe(BubbleAdversary):
            def choose(self, sim):
                action = super().choose(sim)
                if (
                    isinstance(action, Deliver)
                    and not observed_buffer_at_first_delivery
                    and (action.message.sender == 0 or action.message.recipient == 0)
                ):
                    buffered = len(sim.in_flight.sent_by(0)) + len(
                        sim.in_flight.addressed_to(0)
                    )
                    observed_buffer_at_first_delivery.append(buffered)
                return action

        adversary = Probe(bubble={0}, threshold=threshold)
        sim = Simulation(
            6, {pid: ping_factory for pid in range(6)}, adversary, seed=0
        )
        result = sim.run()
        assert result.terminated
        assert observed_buffer_at_first_delivery
        assert observed_buffer_at_first_delivery[0] >= threshold


class TestObliviousAdversary:
    def test_reproducible(self):
        def run():
            sim = Simulation(
                5,
                {pid: ping_factory for pid in range(3)},
                ObliviousAdversary(seed=4),
                seed=9,
            )
            return sim.run().metrics.events_executed

        assert run() == run()
