"""CI wiring for the docstring coverage lint.

Loads ``tools/check_docstrings.py`` (the same script developers run by
hand) and asserts its AST walk over ``src/repro`` finds zero public
definitions without docstrings — so coverage regressions fail the test
suite, not just the standalone tool.
"""

from __future__ import annotations

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL_PATH = os.path.join(REPO_ROOT, "tools", "check_docstrings.py")
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_docstrings", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_public_definition_has_a_docstring():
    tool = _load_tool()
    offenders = tool.missing_docstrings(SRC_ROOT)
    assert not offenders, (
        "public definitions missing docstrings "
        f"(run `python tools/check_docstrings.py`): {offenders}"
    )


def test_tool_detects_missing_docstrings(tmp_path):
    """The lint itself must flag undocumented code, not just pass."""
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "bare.py").write_text(
        "def exposed():\n    return 1\n\n\ndef _private():\n    return 2\n"
    )
    tool = _load_tool()
    offenders = tool.missing_docstrings(str(package))
    assert any("bare (module)" in item for item in offenders)
    assert any("bare.exposed" in item for item in offenders)
    assert not any("_private" in item for item in offenders)
