"""Tests for Heterogeneous PoisonPill (Figure 2, Claims 3.3-3.5, Lemmas 3.6-3.7)."""

from __future__ import annotations

import pytest

from repro.analysis.theory import hpp_survivors
from repro.core import HetStatus, Outcome, PillState, make_heterogeneous_poison_pill
from repro.core.heterogeneous import heterogeneous_bias
from repro.harness import run_sifting_phase
from repro.sim import Simulation, pidset

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestHeterogeneousBias:
    def test_solo_is_certain(self):
        assert heterogeneous_bias(0) == 1.0
        assert heterogeneous_bias(1) == 1.0

    def test_pair_is_half(self):
        assert heterogeneous_bias(2) == pytest.approx(0.5)

    def test_decreasing_for_large_views(self):
        values = [heterogeneous_bias(size) for size in (2, 4, 16, 64, 256)]
        assert values == sorted(values, reverse=True)

    def test_never_exceeds_one(self):
        assert all(0.0 < heterogeneous_bias(size) <= 1.0 for size in range(1, 500))


class TestAtLeastOneSurvivor:
    """Claim 3.1 carries over to the heterogeneous variant."""

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_adversary(self, name, seed):
        run = run_sifting_phase(
            n=16, kind="heterogeneous", adversary=fresh_adversary(name, seed), seed=seed
        )
        assert run.survivors >= 1

    def test_solo_participant_survives(self):
        run = run_sifting_phase(
            n=5, k=1, kind="heterogeneous", adversary="eager", seed=0
        )
        assert run.survivors == 1

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_ablation_without_lists_still_safe(self, name):
        run = run_sifting_phase(
            n=12,
            kind="heterogeneous",
            adversary=fresh_adversary(name, 7),
            seed=7,
            use_lists=False,
        )
        assert run.survivors >= 1


class TestSurvivorBound:
    """Lemmas 3.6 + 3.7: O(log^2 k) expected survivors."""

    @pytest.mark.parametrize("adversary", ["sequential", "random", "quorum_split"])
    def test_mean_under_bound(self, adversary):
        n, repeats = 32, 12
        total = 0
        for seed in range(repeats):
            total += run_sifting_phase(
                n=n, kind="heterogeneous", adversary=adversary, seed=seed
            ).survivors
        mean = total / repeats
        assert mean <= 1.5 * hpp_survivors(n)


class TestObservedLists:
    """Claim 3.4 realized: under the sequential schedule the i-th processor
    observes exactly the i+1 processors that committed before or with it."""

    def test_sequential_list_sizes(self):
        n = 12
        sim = Simulation(
            n,
            {pid: make_heterogeneous_poison_pill() for pid in range(n)},
            fresh_adversary("sequential"),
            seed=1,
        )
        sim.run()
        for pid in range(n):
            status = sim.processes[pid].registers.get("hpp.Status", pid)
            assert isinstance(status, HetStatus)
            assert pidset.to_frozenset(status.members) == frozenset(range(pid + 1))

    def test_first_sequential_processor_flips_high(self):
        """|l| = 1 forces probability 1, so the first processor to run
        solo always takes high priority — the anchor of Claim A.4."""
        for seed in range(5):
            n = 8
            sim = Simulation(
                n,
                {pid: make_heterogeneous_poison_pill() for pid in range(n)},
                fresh_adversary("sequential"),
                seed=seed,
            )
            result = sim.run()
            first = sim.processes[0]
            assert first.coins.last_value("hpp.coin") == 1
            assert result.outcomes[0] is Outcome.SURVIVE
            status = first.registers.get("hpp.Status", 0)
            assert status.state is PillState.HIGH

    def test_lists_ride_with_priorities(self):
        """Every announced priority carries the announcer's l list."""
        n = 10
        sim = Simulation(
            n,
            {pid: make_heterogeneous_poison_pill() for pid in range(n)},
            fresh_adversary("random", 4),
            seed=4,
        )
        sim.run()
        for process in sim.processes:
            status = process.registers.get("hpp.Status", process.pid)
            assert status.state in (PillState.LOW, PillState.HIGH)
            # everyone observes itself
            assert pidset.contains(status.members, process.pid)


class TestClosureProperty:
    """Claim 3.3: for low-priority survivors, the union of observed lists
    is closed under list membership."""

    @pytest.mark.parametrize("adversary", ["random", "quorum_split", "sequential"])
    @pytest.mark.parametrize("seed", range(4))
    def test_union_closed(self, adversary, seed):
        n = 16
        sim = Simulation(
            n,
            {pid: make_heterogeneous_poison_pill() for pid in range(n)},
            fresh_adversary(adversary, seed),
            seed=seed,
        )
        result = sim.run()
        low_survivors = [
            pid
            for pid, outcome in result.outcomes.items()
            if outcome is Outcome.SURVIVE
            and sim.processes[pid].coins.last_value("hpp.coin") == 0
        ]
        union = pidset.EMPTY
        for pid in low_survivors:
            union |= sim.processes[pid].registers.get("hpp.learned", pid)
        for member in pidset.iter_bits(union):
            # Claim 3.3 (as in its proof): every processor in U flipped 0,
            # and its own l list is contained in U.
            assert sim.processes[member].coins.last_value("hpp.coin") == 0
            status = sim.processes[member].registers.get("hpp.Status", member)
            assert pidset.is_subset(status.members, union)
