"""A minimal witness that Figure 2's list augmentation changes outcomes.

Collect replies ship whole register views, so under most schedules every
committed processor is *directly* visible to every collector (line 27 of
Figure 2) and the list union adds nothing.  The lists matter exactly when
knowledge of a commit travels only inside a status payload:

* q commits and its commit PROPAGATE reaches only the witness j before
  q stalls (one ack is below the quorum, so q blocks);
* j completes its phase talking only to responders 3 and 4 — its own
  view contains q's commit, so j's announced list is {q, j};
* the victim p completes its phase also talking only to 3 and 4: its
  collected views contain j's low-priority status (forwarded by the
  responders) but nothing of q, because q's commit never reached them
  and j's own *status cell* is all that travels.

Now p, low-priority, sees j's status with list {q, j}.  With the
closure rule p learns q, finds no view showing q low, and must DIE
(Figure 2 line 28).  With the ablated rule p only checks directly
observed processors and SURVIVES.  Same seeds, same coins, same
messages — only the death rule differs.
"""

from __future__ import annotations

import pytest

from repro.adversary import EagerAdversary
from repro.core import Outcome, make_heterogeneous_poison_pill
from repro.sim import Deliver, Simulation, Step
from repro.sim.messages import MessageKind

N = 5          # quorum is 3: a communicate call needs 2 remote acks
Q, J, P = 0, 1, 2   # staller, witness, victim
RESPONDERS = (3, 4)


def _deliver(sim, sender, recipient, kind=None):
    for message in sim.in_flight.snapshot():
        if message.sender == sender and message.recipient == recipient:
            if kind is None or message.kind is kind:
                sim.execute(Deliver(message))
                return message
    raise AssertionError(f"no in-flight message {sender}->{recipient} ({kind})")


def _serve_via_responders(sim, pid):
    """Resolve pid's current communicate call using only responders 3, 4."""
    for responder in RESPONDERS:
        _deliver(sim, pid, responder)
    for responder in RESPONDERS:
        _deliver(sim, responder, pid)
    sim.execute(Step(pid))


def _run_witness_schedule(seed, use_lists):
    factory = make_heterogeneous_poison_pill(use_lists=use_lists)
    sim = Simulation(
        N,
        {Q: factory, J: factory, P: factory},
        EagerAdversary(),
        seed=seed,
        # The schedule is hand-driven over concrete Message objects below,
        # so opt out of the batch plane EagerAdversary would negotiate.
        batch_messages=False,
    )
    # q commits; its commit reaches only j; q stalls (1 ack < quorum).
    sim.execute(Step(Q))
    _deliver(sim, Q, J, MessageKind.PROPAGATE)
    # j runs its whole phase against the responders only.
    sim.execute(Step(J))                   # commit + propagate
    _serve_via_responders(sim, J)          # resolves propagate, issues collect
    _serve_via_responders(sim, J)          # resolves collect, flips, propagates
    _serve_via_responders(sim, J)          # resolves propagate, issues collect
    _serve_via_responders(sim, J)          # resolves collect, j decides
    # p runs its whole phase against the responders only.
    sim.execute(Step(P))
    for _ in range(4):
        _serve_via_responders(sim, P)
    # Preconditions for the witness: both j and p flipped low.
    j_coin = sim.processes[J].coins.last_value("hpp.coin")
    p_coin = sim.processes[P].coins.last_value("hpp.coin")
    if j_coin != 0 or p_coin != 0:
        return None
    assert sim.processes[P].decided
    # Let the stalled q finish so the execution is complete and checkable.
    result = sim.run()
    return result.outcomes


def _find_witness_seeds():
    seeds = []
    for seed in range(200):
        outcomes = _run_witness_schedule(seed, use_lists=True)
        if outcomes is not None:
            seeds.append(seed)
        if len(seeds) >= 3:
            break
    return seeds


WITNESS_SEEDS = _find_witness_seeds()


def test_witness_schedule_realizable():
    """Both coins land low for a decent fraction of seeds (~1/4)."""
    assert len(WITNESS_SEEDS) >= 3


@pytest.mark.parametrize("seed", WITNESS_SEEDS)
def test_lists_kill_the_victim(seed):
    with_lists = _run_witness_schedule(seed, use_lists=True)
    without_lists = _run_witness_schedule(seed, use_lists=False)
    assert with_lists is not None and without_lists is not None
    # The closure rule learns about the hidden staller q and kills p...
    assert with_lists[P] is Outcome.DIE
    # ...the ablated rule never hears of q and spares p.
    assert without_lists[P] is Outcome.SURVIVE
    # Everything else is identical between the two executions.
    assert with_lists[J] == without_lists[J]
    assert with_lists[Q] == without_lists[Q]


@pytest.mark.parametrize("seed", WITNESS_SEEDS)
def test_witness_keeps_at_least_one_survivor(seed):
    """Even while the closure rule kills p, Claim 3.1 still holds."""
    outcomes = _run_witness_schedule(seed, use_lists=True)
    assert any(outcome is Outcome.SURVIVE for outcome in outcomes.values())
