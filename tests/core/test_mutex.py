"""Tests for the mutual-exclusion extension (leader-election epochs)."""

from __future__ import annotations

import pytest

from repro.core.extensions.mutex import (
    assert_mutual_exclusion,
    critical_section_intervals,
    make_lock_once,
)
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


def run_lock(n, k, adversary, seed, critical_steps=1):
    sim = Simulation(
        n,
        {pid: make_lock_once(critical_steps=critical_steps) for pid in range(k)},
        adversary,
        seed=seed,
        record_events=True,
    )
    result = sim.run()
    return result


class TestMutualExclusion:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_no_overlap_every_adversary(self, name):
        result = run_lock(7, 4, fresh_adversary(name, 3), seed=3)
        intervals = assert_mutual_exclusion(result)
        assert len(intervals) == 4  # every client entered exactly once

    @pytest.mark.parametrize("seed", range(8))
    def test_no_overlap_many_seeds(self, seed):
        result = run_lock(6, 4, fresh_adversary("random", seed), seed=seed)
        assert_mutual_exclusion(result)

    def test_longer_critical_sections(self):
        result = run_lock(6, 3, fresh_adversary("random", 5), seed=5, critical_steps=4)
        intervals = assert_mutual_exclusion(result)
        for _pid, _epoch, enter, exit_ in intervals:
            assert exit_ > enter

    def test_epochs_are_distinct_and_contiguous(self):
        result = run_lock(6, 4, fresh_adversary("random", 6), seed=6)
        epochs = sorted(epoch for _pid, epoch, _e, _x in
                        critical_section_intervals(result))
        assert epochs == list(range(4))

    def test_every_client_acquires_exactly_once(self):
        result = run_lock(7, 5, fresh_adversary("random", 7), seed=7)
        held = sorted(result.outcomes.values())
        assert held == list(range(5))  # epochs 0..4, one per client

    def test_solo_client(self):
        result = run_lock(5, 1, fresh_adversary("eager"), seed=0)
        assert result.outcomes[0] == 0
        assert len(critical_section_intervals(result)) == 1

    def test_checker_requires_events(self):
        sim = Simulation(
            4, {0: make_lock_once()}, fresh_adversary("eager"), seed=0
        )
        result = sim.run()
        with pytest.raises(ValueError, match="record_events"):
            critical_section_intervals(result)


class TestCheckerDetectsViolations:
    def test_synthetic_overlap_rejected(self):
        """Feed the checker a forged overlapping history via a fake trace."""
        from repro.sim.runtime import SimulationResult
        from repro.sim.trace import Metrics, Trace, TraceEvent

        trace = Trace(enabled=True)
        trace.events = [
            TraceEvent(1, "put", 0, ("mx.cs", 0, ("enter", 0))),
            TraceEvent(2, "put", 1, ("mx.cs", 1, ("enter", 1))),  # overlap!
            TraceEvent(3, "put", 0, ("mx.cs", 0, ("exit", 0))),
            TraceEvent(4, "put", 1, ("mx.cs", 1, ("exit", 1))),
        ]
        result = SimulationResult(
            n=4,
            decisions={},
            metrics=Metrics(4),
            trace=trace,
            undecided=frozenset(),
            crashed=frozenset(),
            start_times={},
        )
        with pytest.raises(AssertionError, match="mutual exclusion violated"):
            assert_mutual_exclusion(result)

    def test_unclosed_section_counts_as_held(self):
        from repro.sim.runtime import SimulationResult
        from repro.sim.trace import Metrics, Trace, TraceEvent

        trace = Trace(enabled=True)
        trace.events = [
            TraceEvent(1, "put", 0, ("mx.cs", 0, ("enter", 0))),
        ]
        result = SimulationResult(
            n=4,
            decisions={},
            metrics=Metrics(4),
            trace=trace,
            undecided=frozenset(),
            crashed=frozenset({0}),
            start_times={},
        )
        intervals = critical_section_intervals(result)
        assert intervals == [(0, 0, 1, 2**63)]
