"""Tests for the PoisonPill technique (Figure 1, Claims 3.1-3.2)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import poison_pill_survivors
from repro.core import Outcome, PillState, make_poison_pill
from repro.core.poison_pill import default_bias
from repro.harness import run_sifting_phase
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestDefaultBias:
    def test_matches_paper(self):
        assert default_bias(16) == pytest.approx(0.25)
        assert default_bias(100) == pytest.approx(0.1)

    def test_degenerate_single(self):
        assert default_bias(1) == 1.0


class TestAtLeastOneSurvivor:
    """Claim 3.1: if all participants return, at least one survives."""

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_adversary(self, name, seed):
        run = run_sifting_phase(
            n=16, kind="poison_pill", adversary=fresh_adversary(name, seed), seed=seed
        )
        assert run.survivors >= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_many_seeds_random(self, seed):
        run = run_sifting_phase(n=12, kind="poison_pill", adversary="random", seed=seed)
        assert run.survivors >= 1

    def test_all_low_priority_all_survive(self):
        """The paper's corner case: if everyone flips 0, everyone survives."""
        run = run_sifting_phase(
            n=8, kind="poison_pill", adversary="random", seed=0, bias=0.0
        )
        assert run.survivors == run.k == 8

    def test_all_high_priority_all_survive(self):
        run = run_sifting_phase(
            n=8, kind="poison_pill", adversary="random", seed=0, bias=1.0
        )
        assert run.survivors == run.k == 8

    def test_solo_participant_survives(self):
        run = run_sifting_phase(n=5, k=1, kind="poison_pill", adversary="eager", seed=0)
        assert run.survivors == 1


class TestSurvivorBound:
    """Claim 3.2: expected survivors O(sqrt(n)) under any schedule."""

    @pytest.mark.parametrize("adversary", ["sequential", "random", "coin_aware"])
    def test_mean_under_bound(self, adversary):
        n, repeats = 36, 12
        total = 0
        for seed in range(repeats):
            total += run_sifting_phase(
                n=n, kind="poison_pill", adversary=adversary, seed=seed
            ).survivors
        mean = total / repeats
        assert mean <= 1.5 * poison_pill_survivors(n)

    def test_sequential_attack_forces_sqrt_many(self):
        """Section 3.2's lower bound: sequential scheduling keeps around
        sqrt(n) processors alive — the plain PoisonPill cannot do better."""
        n, repeats = 64, 10
        total = 0
        for seed in range(repeats):
            total += run_sifting_phase(
                n=n, kind="poison_pill", adversary="sequential", seed=seed
            ).survivors
        mean = total / repeats
        assert mean >= 0.5 * math.sqrt(n)


class TestSequentialSemantics:
    """The proof structure of Claim 3.2, observed directly: under the
    sequential schedule, any 0-flipper running after some 1-flipper dies."""

    @pytest.mark.parametrize("seed", range(6))
    def test_zero_after_one_dies(self, seed):
        n = 24
        sim = Simulation(
            n,
            {pid: make_poison_pill() for pid in range(n)},
            fresh_adversary("sequential"),
            seed=seed,
        )
        result = sim.run()
        seen_one = False
        for pid in range(n):  # sequential order is pid order
            coin = sim.processes[pid].coins.last_value("pp.coin")
            outcome = result.outcomes[pid]
            if seen_one and coin == 0:
                assert outcome is Outcome.DIE
            if coin == 1:
                seen_one = True
                assert outcome is Outcome.SURVIVE  # high priority always survives

    @pytest.mark.parametrize("seed", range(6))
    def test_zeros_before_first_one_survive(self, seed):
        n = 24
        sim = Simulation(
            n,
            {pid: make_poison_pill() for pid in range(n)},
            fresh_adversary("sequential"),
            seed=seed,
        )
        result = sim.run()
        for pid in range(n):
            coin = sim.processes[pid].coins.last_value("pp.coin")
            if coin == 1:
                break
            assert result.outcomes[pid] is Outcome.SURVIVE


class TestStatusProgression:
    def test_final_status_matches_coin(self):
        n = 10
        sim = Simulation(
            n,
            {pid: make_poison_pill() for pid in range(n)},
            fresh_adversary("random", seed=3),
            seed=3,
        )
        sim.run()
        for process in sim.processes:
            coin = process.coins.last_value("pp.coin")
            status = process.registers.get("pp.Status", process.pid)
            expected = PillState.HIGH if coin == 1 else PillState.LOW
            assert status is expected

    def test_namespace_isolation(self):
        """Two PoisonPill instances in different namespaces share nothing."""
        n = 6

        def both(api):
            from repro.core.poison_pill import poison_pill

            first = yield from poison_pill(api, namespace="phase0")
            second = yield from poison_pill(api, namespace="phase1")
            return (first, second)

        sim = Simulation(
            n, {pid: both for pid in range(n)}, fresh_adversary("random", 5), seed=5
        )
        result = sim.run()
        assert all(
            isinstance(outcome, tuple) and len(outcome) == 2
            for outcome in result.outcomes.values()
        )
        first_survivors = sum(
            1 for a, _ in result.outcomes.values() if a is Outcome.SURVIVE
        )
        second_survivors = sum(
            1 for _, b in result.outcomes.values() if b is Outcome.SURVIVE
        )
        assert first_survivors >= 1 and second_survivors >= 1
