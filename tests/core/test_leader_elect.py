"""Tests for the full leader-election algorithm (Figure 6, Theorem A.5)."""

from __future__ import annotations

import pytest

from repro.adversary import RandomAdversary, RandomCrashAdversary
from repro.analysis.checkers import check_leader_election
from repro.core import Outcome, make_leader_elect
from repro.harness import run_leader_election
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestUniqueWinner:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_adversary(self, name, seed):
        run = run_leader_election(
            n=10, adversary=fresh_adversary(name, seed), seed=seed
        )
        assert run.winner is not None
        losers = [
            pid for pid, o in run.result.outcomes.items() if o is Outcome.LOSE
        ]
        assert len(losers) == run.k - 1

    @pytest.mark.parametrize("seed", range(15))
    def test_many_random_schedules(self, seed):
        run = run_leader_election(n=8, adversary="random", seed=seed)
        assert run.winner is not None

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13, 16])
    def test_various_sizes(self, n):
        run = run_leader_election(n=n, adversary="random", seed=3)
        assert run.winner is not None


class TestAdaptivity:
    """Theorem A.5 is stated in k, the participants, not n."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_few_participants_among_many(self, k):
        run = run_leader_election(n=16, k=k, adversary="random", seed=1)
        assert run.winner is not None
        assert run.k == k

    def test_solo_participant_wins_fast(self):
        run = run_leader_election(n=16, k=1, adversary="eager", seed=0)
        assert run.winner == 0
        # doorway (2) + round 1 preround (2) + round 1 HPP (4) + round 2
        # preround (2, wins there) = 10 communicate calls.
        assert run.max_comm_calls == 10
        assert run.rounds == 1

    @pytest.mark.parametrize("pattern", ["first", "last", "spread", "random"])
    def test_participation_patterns(self, pattern):
        run = run_leader_election(
            n=12, k=4, pattern=pattern, adversary="random", seed=2
        )
        assert run.winner is not None


class TestLinearizability:
    def test_sequential_first_invoker_wins(self):
        """Under the sequential schedule the first participant finishes its
        whole protocol before anyone else starts, so it must win and all
        later arrivals must lose at the doorway."""
        for seed in range(5):
            run = run_leader_election(n=8, adversary="sequential", seed=seed)
            assert run.winner == 0

    def test_checker_accepts_all_adversaries(self, adversary_name):
        run = run_leader_election(
            n=9, adversary=fresh_adversary(adversary_name, 4), seed=4
        )
        report = check_leader_election(run.result)
        assert report.winner == run.winner

    def test_no_lose_before_winner_start(self):
        for seed in range(8):
            run = run_leader_election(n=7, adversary="random", seed=seed)
            winner_start = run.result.decisions[run.winner].start_time
            for pid, decision in run.result.decisions.items():
                if decision.result is Outcome.LOSE:
                    assert decision.decide_time >= winner_start


class TestCrashTolerance:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_crash_storm(self, seed):
        adversary = RandomCrashAdversary(
            RandomAdversary(seed=seed), rate=0.002, seed=seed
        )
        sim = Simulation(
            9,
            {pid: make_leader_elect() for pid in range(9)},
            adversary,
            seed=seed,
        )
        result = sim.run(require_termination=False)
        assert not result.undecided  # all alive participants decided
        check_leader_election(result)  # at most one winner, linearizable

    def test_winner_may_crash_leaving_losers(self):
        """If the in-flight winner crashes, survivors may all lose; that is
        linearizable (the crashed op is linearized as the winner)."""
        seeds_with_crash = 0
        for seed in range(12):
            adversary = RandomCrashAdversary(
                RandomAdversary(seed=seed), rate=0.004, seed=seed
            )
            sim = Simulation(
                7,
                {pid: make_leader_elect() for pid in range(7)},
                adversary,
                seed=seed,
            )
            result = sim.run(require_termination=False)
            check_leader_election(result)
            if result.crashed:
                seeds_with_crash += 1
        assert seeds_with_crash > 0  # the storm actually exercised crashes


class TestComplexitySanity:
    def test_rounds_grow_very_slowly(self):
        """log* growth: going from 8 to 64 participants should add at most
        a couple of sifting rounds on fair schedules."""
        small = run_leader_election(n=8, adversary="random", seed=5)
        large = run_leader_election(n=64, adversary="random", seed=5)
        assert large.rounds <= small.rounds + 6

    def test_message_complexity_scales_with_k_not_quadratic_in_k(self):
        """O(kn): with n fixed, halving k should not halve messages by much
        more than linearly (loose sanity bound)."""
        full = run_leader_election(n=32, k=32, adversary="random", seed=6)
        half = run_leader_election(n=32, k=16, adversary="random", seed=6)
        assert half.messages_total < full.messages_total

    def test_ablation_without_lists_still_elects(self):
        sim = Simulation(
            8,
            {pid: make_leader_elect(use_lists=False) for pid in range(8)},
            fresh_adversary("random", 7),
            seed=7,
        )
        result = sim.run()
        check_leader_election(result)
