"""Death-rule equivalence pins: single-pass bitset scan == Figure 1/2 text.

The optimized verdict functions (`poison_pill_death_verdict`,
`heterogeneous_death_verdict`) accumulate `strong_seen`/`low_seen`
pidsets in one pass instead of rescanning every view per learned pid.
These tests pin them against direct transcriptions of the paper's
pseudocode on handcrafted view sets (the corner cases) and on
exhaustively enumerated small view universes.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.heterogeneous import heterogeneous_death_verdict
from repro.core.poison_pill import poison_pill_death_verdict
from repro.core.protocol import HetStatus, Outcome, PillState
from repro.sim import pidset

LOW, HIGH, COMMIT = PillState.LOW, PillState.HIGH, PillState.COMMIT


def reference_pp_verdict(views):
    """Figure 1 lines 9-11, transcribed literally (the pre-PR scan)."""
    participants = {j for view in views for j in view}
    for j in participants:
        seen_strong = any(
            view.get(j) in (PillState.COMMIT, PillState.HIGH) for view in views
        )
        seen_low = any(view.get(j) is PillState.LOW for view in views)
        if seen_strong and not seen_low:
            return Outcome.DIE
    return Outcome.SURVIVE


def reference_hpp_verdict(views, use_lists=True):
    """Figure 2 lines 26-29, transcribed literally (the pre-PR scan)."""
    learned: set[int] = set()
    if use_lists:
        for view in views:
            for status in view.values():
                learned.update(pidset.to_frozenset(status.members))
    learned.update(j for view in views for j in view)
    for j in learned:
        if not any(
            j in view and view[j].state is PillState.LOW for view in views
        ):
            return frozenset(learned), Outcome.DIE
    return frozenset(learned), Outcome.SURVIVE


class TestPoisonPillVerdict:
    HANDCRAFTED = [
        [],                                        # no views at all
        [{}],                                      # one empty view
        [{0: LOW}],                                # only self, low
        [{0: COMMIT}],                             # a committed pid, never low
        [{0: COMMIT}, {0: LOW}],                   # strong in one, low in another
        [{0: HIGH, 1: LOW}, {2: COMMIT}],          # mixed
        [{0: LOW, 1: LOW}, {0: LOW}],              # all low everywhere
        [{5: HIGH}, {5: LOW}, {7: COMMIT}],        # sparse pids
        [{0: COMMIT, 1: HIGH, 2: LOW}] * 3,        # repeated identical views
    ]

    @pytest.mark.parametrize("views", HANDCRAFTED)
    def test_handcrafted(self, views):
        assert poison_pill_death_verdict(views) == reference_pp_verdict(views)

    def test_exhaustive_two_views_three_pids(self):
        """Every assignment of {absent, LOW, HIGH, COMMIT} to 3 pids in 2
        views agrees with the literal transcription (4^6 = 4096 cases)."""
        states = (None, LOW, HIGH, COMMIT)
        for combo in itertools.product(states, repeat=6):
            views = [
                {j: s for j, s in enumerate(combo[:3]) if s is not None},
                {j: s for j, s in enumerate(combo[3:]) if s is not None},
            ]
            assert poison_pill_death_verdict(views) == reference_pp_verdict(views)


def hs(state, members):
    return HetStatus(state, pidset.from_iterable(members))


class TestHeterogeneousVerdict:
    HANDCRAFTED = [
        [],
        [{}],
        [{0: hs(LOW, [0])}],
        # pid 1 appears in a members list but was never seen LOW -> DIE
        [{0: hs(LOW, [0, 1])}],
        # pid 1 in a members list and seen LOW in another view -> SURVIVE
        [{0: hs(LOW, [0, 1])}, {1: hs(LOW, [1])}],
        # a key that is HIGH and never LOW -> DIE even with empty lists
        [{0: hs(LOW, []), 1: hs(HIGH, [])}],
        # COMMIT counts as "not seen low" too
        [{0: hs(LOW, [0]), 2: hs(COMMIT, [])}],
        # deep list chain: 0 lists 3, 3 nowhere LOW
        [{0: hs(LOW, [0, 3])}, {1: hs(LOW, [1])}, {0: hs(LOW, [0, 3])}],
        # everyone LOW, lists closed -> SURVIVE
        [{0: hs(LOW, [0, 1]), 1: hs(LOW, [0, 1])}],
        # sparse pids well past 64 (multi-word bitmask)
        [{70: hs(LOW, [70, 130])}, {130: hs(LOW, [130])}],
    ]

    @pytest.mark.parametrize("views", HANDCRAFTED)
    @pytest.mark.parametrize("use_lists", [True, False])
    def test_handcrafted(self, views, use_lists):
        learned, outcome = heterogeneous_death_verdict(views, use_lists)
        ref_learned, ref_outcome = reference_hpp_verdict(views, use_lists)
        assert pidset.to_frozenset(learned) == ref_learned
        assert outcome == ref_outcome

    @pytest.mark.parametrize("use_lists", [True, False])
    def test_exhaustive_small_universe(self, use_lists):
        """Two views over 2 pids, each status LOW/HIGH with any members
        subset of {0,1,2}: every combination agrees with the reference."""
        options = [None] + [
            hs(state, members)
            for state in (LOW, HIGH)
            for members in itertools.chain.from_iterable(
                itertools.combinations(range(3), r) for r in range(4)
            )
        ]
        for a0, a1, b0, b1 in itertools.product(options, repeat=4):
            views = [
                {j: s for j, s in ((0, a0), (1, a1)) if s is not None},
                {j: s for j, s in ((0, b0), (1, b1)) if s is not None},
            ]
            learned, outcome = heterogeneous_death_verdict(views, use_lists)
            ref_learned, ref_outcome = reference_hpp_verdict(views, use_lists)
            assert pidset.to_frozenset(learned) == ref_learned
            assert outcome == ref_outcome
