"""Tests for the baseline algorithms: tournament, naive sifter, linear renaming."""

from __future__ import annotations

import pytest

from repro.analysis.checkers import check_leader_election
from repro.core import Outcome
from repro.core.baselines import (
    bracket_levels,
    make_linear_renaming,
    make_naive_sifter,
    make_tournament,
    make_two_processor_test_and_set,
)
from repro.harness import run_leader_election, run_renaming, run_sifting_phase
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestBracketLevels:
    def test_values(self):
        assert bracket_levels(1) == 0
        assert bracket_levels(2) == 1
        assert bracket_levels(4) == 2
        assert bracket_levels(5) == 3
        assert bracket_levels(8) == 3
        assert bracket_levels(9) == 4


class TestTwoProcessorTestAndSet:
    @pytest.mark.parametrize("seed", range(8))
    def test_pair_unique_winner(self, seed):
        sim = Simulation(
            5,
            {0: make_two_processor_test_and_set(), 1: make_two_processor_test_and_set()},
            fresh_adversary("random", seed),
            seed=seed,
        )
        outcomes = sim.run().outcomes
        wins = [pid for pid, o in outcomes.items() if o is Outcome.WIN]
        assert len(wins) == 1

    def test_solo_bye_wins(self):
        sim = Simulation(
            5, {2: make_two_processor_test_and_set()}, fresh_adversary("eager"), seed=0
        )
        assert sim.run().outcomes[2] is Outcome.WIN


class TestTournament:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_unique_winner_every_adversary(self, name):
        run = run_leader_election(
            n=8, algorithm="tournament", adversary=fresh_adversary(name, 2), seed=2
        )
        assert run.winner is not None

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 11, 16])
    def test_odd_and_even_sizes(self, n):
        run = run_leader_election(n=n, algorithm="tournament", adversary="random", seed=1)
        assert run.winner is not None

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_partial_participation_byes(self, k):
        run = run_leader_election(
            n=8, k=k, algorithm="tournament", adversary="random", seed=4
        )
        assert run.winner is not None

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds(self, seed):
        run = run_leader_election(n=8, algorithm="tournament", adversary="random", seed=seed)
        check_leader_election(run.result)

    def test_time_grows_with_bracket_depth(self):
        """The whole point of the paper: the tournament pays per level."""
        small = run_leader_election(n=4, algorithm="tournament", adversary="eager", seed=0)
        large = run_leader_election(n=32, algorithm="tournament", adversary="eager", seed=0)
        assert large.max_comm_calls > small.max_comm_calls


class TestNaiveSifter:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_at_least_one_survivor(self, name):
        run = run_sifting_phase(
            n=12, kind="naive", adversary=fresh_adversary(name, 3), seed=3, check=False
        )
        assert run.survivors >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_broken_by_coin_aware_adversary(self, seed):
        """The paper's motivating attack: the strong adversary sees the
        flips and keeps *everyone* alive."""
        run = run_sifting_phase(
            n=16, kind="naive", adversary="coin_aware", seed=seed, check=False
        )
        assert run.survivors == run.k

    def test_sifts_against_oblivious_adversary(self):
        """Against a state-blind scheduler the strawman does sift."""
        total = 0
        repeats = 10
        for seed in range(repeats):
            total += run_sifting_phase(
                n=16, kind="naive", adversary="oblivious", seed=seed, check=False
            ).survivors
        assert total / repeats <= 12  # clearly below everyone-survives

    def test_poison_pill_resists_same_attack(self):
        """Contrast: PoisonPill under the identical adversary still sifts
        hard — the commit state kills late low-priority processors."""
        total = 0
        repeats = 8
        for seed in range(repeats):
            total += run_sifting_phase(
                n=16, kind="poison_pill", adversary="coin_aware", seed=seed
            ).survivors
        assert total / repeats <= 8


class TestLinearRenaming:
    @pytest.mark.parametrize("seed", range(5))
    def test_unique_names(self, seed):
        run = run_renaming(n=6, algorithm="linear", adversary="random", seed=seed)
        assert sorted(run.names.values()) == list(range(6))

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_every_adversary(self, name):
        run = run_renaming(
            n=6, algorithm="linear", adversary=fresh_adversary(name, 5), seed=5
        )
        assert len(set(run.names.values())) == 6

    def test_blind_trials_waste_more_than_paper_algorithm(self):
        """Without shared contention info, collisions multiply: summed over
        seeds, the baseline needs at least as many trials as Figure 3."""
        baseline_trials = 0
        paper_trials = 0
        for seed in range(6):
            baseline_trials += run_renaming(
                n=8, algorithm="linear", adversary="random", seed=seed
            ).max_trials
            paper_trials += run_renaming(
                n=8, algorithm="paper", adversary="random", seed=seed
            ).max_trials
        assert baseline_trials >= paper_trials

    def test_factory_smoke(self):
        sim = Simulation(
            4,
            {pid: make_linear_renaming() for pid in range(4)},
            fresh_adversary("eager"),
            seed=0,
        )
        result = sim.run()
        assert sorted(result.outcomes.values()) == [0, 1, 2, 3]


class TestFactoriesSmoke:
    def test_naive_sifter_factory(self):
        sim = Simulation(
            4, {pid: make_naive_sifter() for pid in range(4)}, fresh_adversary("eager"), seed=0
        )
        outcomes = sim.run().outcomes
        assert all(o in (Outcome.SURVIVE, Outcome.DIE) for o in outcomes.values())

    def test_tournament_factory(self):
        sim = Simulation(
            4, {pid: make_tournament() for pid in range(4)}, fresh_adversary("eager"), seed=0
        )
        outcomes = sim.run().outcomes
        assert sum(1 for o in outcomes.values() if o is Outcome.WIN) == 1
