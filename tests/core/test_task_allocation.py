"""Tests for the task-allocation (do-all) extension."""

from __future__ import annotations

import pytest

from repro.adversary import RandomAdversary, RandomCrashAdversary
from repro.core.extensions import make_do_all, make_replicated_do_all
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


def run_do_all(n, adversary, seed, k=None, tasks=None, factory_maker=make_do_all):
    k = k if k is not None else n
    sim = Simulation(
        n,
        {pid: factory_maker(tasks=tasks) for pid in range(k)},
        adversary,
        seed=seed,
    )
    result = sim.run()
    return result, sim


def all_executed(result, tasks):
    performed = set()
    for executed in result.outcomes.values():
        performed.update(executed)
    return performed == set(range(tasks))


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_every_task_done_every_adversary(self, name):
        n = 8
        result, _ = run_do_all(n, fresh_adversary(name, 2), seed=2)
        assert all_executed(result, n)

    @pytest.mark.parametrize("seed", range(10))
    def test_many_schedules(self, seed):
        n = 6
        result, _ = run_do_all(n, fresh_adversary("random", seed), seed=seed)
        assert all_executed(result, n)

    def test_fewer_workers_than_tasks(self):
        result, _ = run_do_all(
            8, fresh_adversary("random", 1), seed=1, k=3, tasks=8
        )
        assert all_executed(result, 8)

    def test_single_worker_does_everything(self):
        result, _ = run_do_all(5, fresh_adversary("eager"), seed=0, k=1)
        assert result.outcomes[0] is not None
        assert set(result.outcomes[0]) == set(range(5))

    def test_done_implies_executed(self):
        """Safety: a task marked done in any view was performed by someone."""
        n = 8
        result, sim = run_do_all(n, fresh_adversary("random", 3), seed=3)
        performed = set()
        for executed in result.outcomes.values():
            performed.update(executed)
        for process in sim.processes:
            for task, done in process.registers.view("da.Done").items():
                if done:
                    assert task in performed

    def test_crash_tolerant(self):
        """Tasks finish as long as some worker survives the storm."""
        for seed in range(5):
            adversary = RandomCrashAdversary(
                RandomAdversary(seed=seed), rate=0.001, seed=seed, max_crashes=2
            )
            n = 7
            sim = Simulation(
                n, {pid: make_do_all() for pid in range(n)}, adversary, seed=seed
            )
            result = sim.run(require_termination=False)
            assert not result.undecided
            # Every task was performed by someone — counting the partial
            # progress of crashed workers (read from their local logs).
            if result.decisions:
                performed = set()
                for process in sim.processes:
                    executed = process.registers.get("da.executed", process.pid)
                    if executed:
                        performed.update(executed)
                assert performed == set(range(n))


class TestWorkBounds:
    def test_sequential_schedule_no_duplicates(self):
        """Fully serialized workers see all prior completions: total work
        is exactly n."""
        n = 10
        result, _ = run_do_all(n, fresh_adversary("sequential"), seed=4)
        total_work = sum(len(executed) for executed in result.outcomes.values())
        assert total_work == n

    def test_coordination_beats_replication(self):
        n = 10
        coordinated, _ = run_do_all(n, fresh_adversary("random", 5), seed=5)
        replicated, _ = run_do_all(
            n,
            fresh_adversary("random", 5),
            seed=5,
            factory_maker=make_replicated_do_all,
        )
        coordinated_work = sum(len(x) for x in coordinated.outcomes.values())
        replicated_work = sum(len(x) for x in replicated.outcomes.values())
        assert replicated_work == n * n
        assert coordinated_work < replicated_work

    def test_random_schedule_work_moderate(self):
        """Random selection keeps duplicate executions in check."""
        n, repeats = 12, 5
        total = 0
        for seed in range(repeats):
            result, _ = run_do_all(n, fresh_adversary("random", seed), seed=seed)
            total += sum(len(x) for x in result.outcomes.values())
        mean_work = total / repeats
        assert mean_work <= 4 * n  # far below the k*n replication cost


class TestReplicatedBaseline:
    @pytest.mark.parametrize("name", ["random", "eager", "sequential"])
    def test_everyone_does_everything(self, name):
        n = 6
        result, _ = run_do_all(
            n, fresh_adversary(name, 6), seed=6, factory_maker=make_replicated_do_all
        )
        for executed in result.outcomes.values():
            assert tuple(executed) == tuple(range(n))
