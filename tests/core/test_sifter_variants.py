"""Tests for the sifting-phase variants inside the round loop.

The paper's final construction uses Heterogeneous PoisonPill per round;
the end of Section 3.1 notes that plain PoisonPill applied recursively
already yields an O(log log n)-style algorithm.  Both variants must be
correct; the heterogeneous one should never need more rounds by more
than a constant.
"""

from __future__ import annotations

import pytest

from repro.analysis.checkers import check_leader_election
from repro.core import make_leader_elect
from repro.harness import run_leader_election
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestBasicSifterLeaderElection:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_unique_winner_every_adversary(self, name):
        run = run_leader_election(
            n=9,
            algorithm="poison_pill_basic",
            adversary=fresh_adversary(name, 6),
            seed=6,
        )
        assert run.winner is not None

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds(self, seed):
        run = run_leader_election(
            n=8, algorithm="poison_pill_basic", adversary="random", seed=seed
        )
        check_leader_election(run.result)

    def test_solo_wins(self):
        run = run_leader_election(
            n=8, k=1, algorithm="poison_pill_basic", adversary="eager", seed=0
        )
        assert run.winner == 0

    def test_rounds_counted(self):
        run = run_leader_election(
            n=8, algorithm="poison_pill_basic", adversary="random", seed=1
        )
        assert run.rounds >= 1

    def test_unknown_sifter_rejected(self):
        factory = make_leader_elect(sifter="bogus")
        sim = Simulation(4, {0: factory}, fresh_adversary("eager"), seed=0)
        with pytest.raises(ValueError, match="unknown sifter"):
            sim.run()


class TestVariantComparison:
    def test_both_variants_terminate_at_scale(self):
        basic = run_leader_election(
            n=32, algorithm="poison_pill_basic", adversary="random", seed=2
        )
        het = run_leader_election(
            n=32, algorithm="poison_pill", adversary="random", seed=2
        )
        assert basic.winner is not None
        assert het.winner is not None

    def test_basic_sifter_kills_harder_per_round_sequentially(self):
        """Under a sequential schedule at small n, sqrt(n) < log^2(n), so
        plain PoisonPill rounds tend to shed more processors per round —
        the crossover the paper's asymptotics eventually reverse."""
        totals = {"poison_pill": 0, "poison_pill_basic": 0}
        for algorithm in totals:
            for seed in range(4):
                run = run_leader_election(
                    n=24, algorithm=algorithm, adversary="random", seed=seed
                )
                totals[algorithm] += run.rounds
        # Loose: both finish within a handful of rounds overall.
        assert totals["poison_pill"] <= 4 * 8
        assert totals["poison_pill_basic"] <= 4 * 8
