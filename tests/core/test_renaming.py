"""Tests for the renaming algorithm (Figure 3, Section 4)."""

from __future__ import annotations

import pytest

from repro.adversary import RandomAdversary, RandomCrashAdversary
from repro.analysis.checkers import check_renaming
from repro.core import make_get_name
from repro.harness import run_renaming
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestUniqueNames:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_every_adversary(self, name):
        run = run_renaming(n=8, adversary=fresh_adversary(name, 1), seed=1)
        names = sorted(run.names.values())
        assert names == list(range(8))  # tight: all of 0..n-1 used

    @pytest.mark.parametrize("seed", range(10))
    def test_many_random_schedules(self, seed):
        run = run_renaming(n=6, adversary="random", seed=seed)
        assert sorted(run.names.values()) == list(range(6))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_various_sizes(self, n):
        run = run_renaming(n=n, adversary="random", seed=2)
        assert len(set(run.names.values())) == n

    def test_partial_participation(self):
        """k < n participants must get k distinct names out of 0..n-1."""
        run = run_renaming(n=12, k=5, adversary="random", seed=3)
        values = list(run.names.values())
        assert len(values) == 5
        assert len(set(values)) == 5
        assert all(0 <= name < 12 for name in values)


class TestTrials:
    def test_max_trials_bounded_by_names(self):
        """No processor contends for the same name twice, so trials <= n."""
        for seed in range(6):
            run = run_renaming(n=8, adversary="random", seed=seed)
            assert 1 <= run.max_trials <= 8

    def test_sequential_schedule_one_trial_each(self):
        """Serialized processors see all prior contention, so each picks a
        fresh name and wins it immediately."""
        run = run_renaming(n=8, adversary="sequential", seed=0)
        assert run.max_trials == 1

    def test_solo_participant_single_trial(self):
        run = run_renaming(n=6, k=1, adversary="eager", seed=0)
        assert run.max_trials == 1


class TestContentionBookkeeping:
    def test_contended_entries_sticky(self):
        """After the run, every assigned name is marked contended in the
        winner's local view."""
        n = 6
        sim = Simulation(
            n,
            {pid: make_get_name() for pid in range(n)},
            fresh_adversary("random", 4),
            seed=4,
        )
        result = sim.run()
        names = check_renaming(result)
        for pid, name in names.items():
            assert sim.processes[pid].registers.get("rn.Contended", name) is True

    def test_lemma_a7_temporal_order_weak_form(self):
        """A processor never picks a spot it already marked contended."""
        n = 8
        sim = Simulation(
            n,
            {pid: make_get_name() for pid in range(n)},
            fresh_adversary("random", 5),
            seed=5,
        )
        result = sim.run()
        check_renaming(result)
        for process in sim.processes:
            picks = [
                value for label, value in process.coins.all() if label == "rn.spot"
            ]
            # choice() logs indices into the free list, so just assert the
            # number of leader elections joined matches the picks.
            le_doors = sum(
                1
                for var in process.registers.variables()
                if var.startswith("rn.le") and var.endswith(".door")
                and process.registers.get(var, 0)
            )
            assert le_doors >= min(1, len(picks))


class TestCrashTolerance:
    @pytest.mark.parametrize("seed", range(6))
    def test_alive_processors_get_unique_names(self, seed):
        adversary = RandomCrashAdversary(
            RandomAdversary(seed=seed), rate=0.0015, seed=seed, max_crashes=2
        )
        n = 7
        sim = Simulation(
            n,
            {pid: make_get_name() for pid in range(n)},
            adversary,
            seed=seed,
        )
        result = sim.run(require_termination=False)
        assert not result.undecided  # all alive participants decided
        names = check_renaming(result)
        assert len(set(names.values())) == len(names)
