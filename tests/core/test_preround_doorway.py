"""Tests for the PreRound round race (Fig. 4) and the doorway (Fig. 5)."""

from __future__ import annotations

from repro.core import Outcome
from repro.core.doorway import doorway
from repro.core.preround import preround
from repro.sim import Simulation

from ..conftest import fresh_adversary


def preround_once(r):
    def factory(api):
        outcome = yield from preround(api, r)
        return outcome

    return factory


def doorway_once(api):
    outcome = yield from doorway(api)
    return outcome


class TestPreRound:
    def test_solo_round_one_proceeds(self):
        sim = Simulation(5, {0: preround_once(1)}, fresh_adversary("eager"), seed=0)
        assert sim.run().outcomes[0] is Outcome.PROCEED

    def test_solo_round_two_wins(self):
        """R = 0 < r - 1 = 1: nobody else ever advanced, so WIN."""
        sim = Simulation(5, {0: preround_once(2)}, fresh_adversary("eager"), seed=0)
        assert sim.run().outcomes[0] is Outcome.WIN

    def test_same_round_proceeds(self):
        sim = Simulation(
            5,
            {0: preround_once(1), 1: preround_once(1)},
            fresh_adversary("sequential"),
            seed=0,
        )
        outcomes = sim.run().outcomes
        assert outcomes[0] is Outcome.PROCEED
        assert outcomes[1] is Outcome.PROCEED

    def test_behind_by_two_loses(self):
        """A processor that observes someone two rounds ahead loses."""
        sim = Simulation(
            5,
            {0: preround_once(3), 1: preround_once(1)},
            fresh_adversary("sequential", 0),
            seed=0,
        )
        outcomes = sim.run().outcomes
        assert outcomes[0] is Outcome.WIN  # sees only round 1 < 3 - 1
        assert outcomes[1] is Outcome.LOSE  # sees round 3 > 1

    def test_one_round_ahead_is_inconclusive(self):
        from repro.adversary import SequentialAdversary

        sim = Simulation(
            5,
            {0: preround_once(2), 1: preround_once(1)},
            SequentialAdversary(order=[1, 0]),
            seed=0,
        )
        outcomes = sim.run().outcomes
        assert outcomes[1] is Outcome.PROCEED  # runs first, sees nobody ahead
        assert outcomes[0] is Outcome.PROCEED  # sees round 1 = r - 1: inconclusive

    def test_win_and_lose_exclusive_same_round_pair(self):
        """Two processors in the same round can never both win (Lemma A.2's
        quorum-intersection core), under any scheduling seed."""
        for seed in range(10):
            sim = Simulation(
                5,
                {0: preround_once(2), 1: preround_once(2)},
                fresh_adversary("random", seed),
                seed=seed,
            )
            outcomes = sim.run().outcomes
            wins = [pid for pid, o in outcomes.items() if o is Outcome.WIN]
            assert len(wins) <= 1


class TestDoorway:
    def test_solo_proceeds(self):
        sim = Simulation(5, {0: doorway_once}, fresh_adversary("eager"), seed=0)
        assert sim.run().outcomes[0] is Outcome.PROCEED

    def test_late_arrival_loses(self):
        """Sequential order: the first participant closes the door, every
        later one observes it closed and loses."""
        sim = Simulation(
            5,
            {pid: doorway_once for pid in range(3)},
            fresh_adversary("sequential"),
            seed=0,
        )
        outcomes = sim.run().outcomes
        assert outcomes[0] is Outcome.PROCEED
        assert outcomes[1] is Outcome.LOSE
        assert outcomes[2] is Outcome.LOSE

    def test_not_everyone_can_lose(self):
        """Lemma A.1's doorway argument: if nobody proceeded, nobody closed
        the door, so nobody can have seen it closed."""
        for seed in range(10):
            sim = Simulation(
                6,
                {pid: doorway_once for pid in range(4)},
                fresh_adversary("random", seed),
                seed=seed,
            )
            outcomes = sim.run().outcomes
            assert any(o is Outcome.PROCEED for o in outcomes.values())

    def test_concurrent_arrivals_may_all_proceed(self):
        """The doorway is not an election: simultaneous arrivals can all
        pass (they race in the rounds instead)."""
        sim = Simulation(
            6,
            {pid: doorway_once for pid in range(4)},
            fresh_adversary("round_robin"),
            seed=0,
        )
        outcomes = sim.run().outcomes
        proceeders = [pid for pid, o in outcomes.items() if o is Outcome.PROCEED]
        assert len(proceeders) >= 1
