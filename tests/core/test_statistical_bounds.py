"""Statistical validation of the paper's probabilistic bounds.

These tests run many seeded executions and compare empirical frequencies
against the analytic envelopes.  Sample sizes and slack factors are
chosen so the tests are deterministic-in-practice (fixed seeds) and
extremely unlikely to flag a correct implementation, while still
catching, e.g., a broken bias or death rule.
"""

from __future__ import annotations

import math

from repro.core import Outcome, make_heterogeneous_poison_pill, make_poison_pill
from repro.analysis.theory import hpp_high_survivors
from repro.sim import Simulation

from ..conftest import fresh_adversary


def _hpp_run(n, seed, adversary="random"):
    sim = Simulation(
        n,
        {pid: make_heterogeneous_poison_pill() for pid in range(n)},
        fresh_adversary(adversary, seed),
        seed=seed,
    )
    result = sim.run()
    low_survivors = sum(
        1
        for pid, outcome in result.outcomes.items()
        if outcome is Outcome.SURVIVE
        and sim.processes[pid].coins.last_value("hpp.coin") == 0
    )
    one_flippers = sum(
        1
        for process in sim.processes
        if process.coins.last_value("hpp.coin") == 1
    )
    return low_survivors, one_flippers


class TestClaim35Tail:
    """Pr[at least z processors flip 0 and survive] = O(1/z)."""

    def test_tail_frequencies_bounded(self):
        n, runs = 16, 120
        counts = [_hpp_run(n, seed)[0] for seed in range(runs)]
        for z in (2, 4, 8):
            frequency = sum(1 for c in counts if c >= z) / runs
            # Claim 3.5 gives c/z for a universal constant; c = 4 is a
            # generous envelope that a broken closure rule blows through.
            assert frequency <= 4.0 / z, (
                f"Pr[low-survivors >= {z}] = {frequency} exceeds envelope"
            )

    def test_tail_decreasing_in_z(self):
        n, runs = 16, 120
        counts = [_hpp_run(n, seed)[0] for seed in range(runs)]
        freqs = [sum(1 for c in counts if c >= z) / runs for z in (1, 2, 4, 8)]
        assert freqs == sorted(freqs, reverse=True)


class TestLemma37OneFlippers:
    """E[number of 1-flippers] <= 1 + sum log2(l)/l, maximized by the
    sequential schedule (each processor sees exactly its predecessors)."""

    def test_sequential_mean_under_bound(self):
        n, runs = 32, 25
        total = sum(
            _hpp_run(n, seed, adversary="sequential")[1] for seed in range(runs)
        )
        mean = total / runs
        assert mean <= 1.5 * hpp_high_survivors(n)

    def test_sequential_matches_exact_expectation(self):
        """Under the sequential schedule the i-th processor flips 1 with
        probability exactly log2(i+1)/(i+1) (probability 1 for the
        first), so the expectation is computable exactly."""
        n, runs = 32, 40
        exact = 1.0 + sum(math.log2(i) / i for i in range(2, n + 1))
        total = sum(
            _hpp_run(n, seed, adversary="sequential")[1] for seed in range(runs)
        )
        mean = total / runs
        # Mean of 40 runs: allow 3-sigma-ish slack around the exact value.
        assert abs(mean - exact) <= 0.45 * exact


class TestClaim32BiasShape:
    """PoisonPill's 1-flippers are Binomial(k, 1/sqrt(n))."""

    def test_one_flipper_count_concentrates(self):
        n, runs = 25, 60  # bias 1/5, expectation 5
        totals = []
        for seed in range(runs):
            sim = Simulation(
                n,
                {pid: make_poison_pill() for pid in range(n)},
                fresh_adversary("random", seed),
                seed=seed,
            )
            sim.run()
            totals.append(
                sum(
                    1
                    for process in sim.processes
                    if process.coins.last_value("pp.coin") == 1
                )
            )
        mean = sum(totals) / runs
        expected = n / math.sqrt(n)
        assert abs(mean - expected) <= 0.35 * expected
